#!/usr/bin/env python
"""Partially qualified identifiers under reconfiguration (§6 Ex. 1).

A two-network system exchanges process identifiers, then a machine and
a whole network are renumbered mid-run.  The demo contrasts:

  * partially qualified pids + the R(sender) mapping (the paper's
    solution): every exchange coherent, internal connections survive;
  * fully qualified pids: fine until the renumbering, then broken;
  * unmapped pids resolved by the receiver: wrong from the start.

Run:  python examples/pid_relocation.py
"""

import random

from repro.coherence import format_table
from repro.pqid import (
    PidPolicy,
    ReferenceTable,
    exchange_outcome,
    fully_qualify,
    qualify,
    send_pid,
)
from repro.sim import FailureInjector
from repro.workloads import build_pqid_population


def exchange_phase(population, rng, exchanges=60):
    rows = []
    for policy in (PidPolicy.MAPPED, PidPolicy.RAW, PidPolicy.FULL):
        done = []
        for _ in range(exchanges):
            sender, receiver = population.random_pair(rng)
            target = rng.choice(population.processes)
            done.append(send_pid(sender, receiver, target, policy))
        population.simulator.run()
        outcomes = [exchange_outcome(exchange) for exchange in done]
        rows.append([str(policy),
                     outcomes.count("coherent"),
                     outcomes.count("incoherent"),
                     outcomes.count("unresolved"),
                     outcomes.count("coherent") / len(outcomes)])
    return rows


def main() -> None:
    population = build_pqid_population(seed=2026, n_networks=2,
                                       machines_per_network=3,
                                       processes_per_machine=3)
    rng = random.Random(2026)

    print(format_table(
        ["policy", "coherent", "incoherent", "unresolved", "rate"],
        exchange_phase(population, rng),
        title="Phase 1 — pid exchange (stable addresses)"))

    # Long-lived references inside network 0 (a subsystem's internal
    # connections), held both ways.
    net = population.networks[0]
    inside = [p for m in net.machines() for p in m.processes()]
    partially = ReferenceTable()
    fully = ReferenceTable()
    for holder in inside:
        for target in inside:
            if holder is not target:
                partially.add(holder, qualify(target, holder), target)
                fully.add(holder, fully_qualify(target), target)

    injector = FailureInjector(population.simulator)
    injector.renumber_machine(net.machines()[0], 90)
    injector.renumber_network(net, 95)

    print()
    print(format_table(
        ["pid kind", "valid", "dangling", "misdirected", "survival"],
        [["partially qualified", *partially.counts().values(),
          partially.survival()],
         ["fully qualified", *fully.counts().values(),
          fully.survival()]],
        title="Phase 2 — internal connections after machine + network "
              "renumbering"))

    print("\nThe renamed subsystem 'maintains its internal connections "
          "and does not have\nto be shut down' — exactly when its pids "
          "are only qualified as far as necessary.")

    rows = exchange_phase(population, rng)
    print()
    print(format_table(
        ["policy", "coherent", "incoherent", "unresolved", "rate"],
        rows,
        title="Phase 3 — pid exchange again (post-renumbering; mapping "
              "still perfect)"))


if __name__ == "__main__":
    main()
