#!/usr/bin/env python
"""Cached name bindings: staleness is incoherence (extension demo).

A service registry (a context object hosted on one machine) maps
service names to endpoints.  Client machines cache the bindings.  When
a service is re-deployed (its name rebound), a stale cache entry makes
the same name denote *different* entities on different machines — the
paper's incoherence, produced by an everyday mechanism.

The demo contrasts the three policies of `repro.nameservice.cache`:
no caching, TTL expiry, and server-driven invalidation.

Run:  python examples/service_registry_caching.py
"""

from repro.coherence import format_table
from repro.model import ObjectEntity, context_object
from repro.nameservice import (
    CachePolicy,
    CachingDirectoryService,
    DirectoryPlacement,
)
from repro.sim import Simulator


def scenario(policy: CachePolicy):
    simulator = Simulator(seed=0)
    network = simulator.network("dc")
    registry_machine = simulator.machine(network, "registry")
    app_machine = simulator.machine(network, "app")
    registry = context_object("services")
    simulator.sigma.add(registry)
    v1 = ObjectEntity("db-v1")
    simulator.sigma.add(v1)
    registry.state.bind("db", v1)
    placement = DirectoryPlacement()
    placement.place(registry, registry_machine)
    service = CachingDirectoryService(simulator, placement,
                                      policy=policy, ttl=50.0)

    # The app resolves 'db' (filling its cache), the operator
    # re-deploys, and the app resolves again.
    first = service.lookup(app_machine, registry, "db")
    v2 = ObjectEntity("db-v2")
    simulator.sigma.add(v2)
    service.rebind(registry, "db", v2)
    second = service.lookup(app_machine, registry, "db")
    stats = service.stats()
    return [str(policy), first.label, second.label,
            "STALE" if second is not v2 else "fresh",
            stats["remote_reads"], stats["invalidation_messages"]]


def main() -> None:
    rows = [scenario(policy) for policy in CachePolicy]
    print(format_table(
        ["policy", "before redeploy", "after redeploy", "coherence",
         "remote reads", "invalidations"],
        rows,
        title="Service registry: what the app sees across a redeploy"))
    print(
        "\nA stale cached binding is the paper's incoherence produced "
        "by a modern\nmechanism: the name 'db' denotes db-v2 at the "
        "registry but still db-v1 at the\napp.  Invalidation restores "
        "coherence by construction; TTL merely bounds the\nwindow.  "
        "Run `python -m repro.bench A5` for the full measured "
        "trade-off.")


if __name__ == "__main__":
    main()
