#!/usr/bin/env python
"""Quickstart: the naming model, contexts, and coherence in 60 lines.

Builds a small Unix-style machine, shows how names resolve in
per-process contexts, and measures coherence the way the paper's
section 5 does.

Run:  python examples/quickstart.py
"""

from repro import (
    CoherenceAuditor,
    NameSource,
    RSender,
    ResolutionEvent,
    coherent,
    is_global_name,
)
from repro.coherence import format_degree
from repro.namespaces import UnixSystem


def main() -> None:
    # 1. A machine with a naming tree (a tree of context objects).
    unix = UnixSystem("demo")
    unix.tree.mkfile("etc/passwd")
    unix.tree.mkfile("home/alice/notes")
    unix.tree.mkfile("home/bob/todo")

    # 2. Processes have two-binding contexts: root + working dir.
    init = unix.spawn("init")
    shell = unix.fork(init, "shell")          # child inherits context
    unix.chdir(shell, "/home/alice")

    print("shell resolves 'notes'      →",
          unix.resolve_for(shell, "notes"))
    print("shell resolves '/etc/passwd' →",
          unix.resolve_for(shell, "/etc/passwd"))

    # 3. Coherence: does a name denote the same entity for everyone?
    everyone = unix.activities()
    print("\n'/etc/passwd' coherent for all:",
          coherent("/etc/passwd", everyone, unix.registry))
    print("'notes' coherent for all:      ",
          coherent("notes", everyone, unix.registry))
    print("'/etc/passwd' is a global name:",
          is_global_name("/etc/passwd", everyone, unix.registry))

    # 4. chroot gives one process a different root binding — §5.1's
    #    "coherence only among processes that have the same binding
    #    for the root directory".
    jailed = unix.spawn("jailed")
    unix.chroot(jailed, "/home")
    print("\nafter a chroot, '/etc/passwd' coherent for all:",
          coherent("/etc/passwd", unix.activities(), unix.registry))

    # 5. The scheme-level degree-of-coherence report.
    print()
    print(format_degree("demo unix machine", unix.measure()))

    # 6. Dynamic auditing: a name sent in a message, resolved under
    #    the R(sender) closure rule (§6 solution I).
    event = ResolutionEvent(
        name="notes", source=NameSource.MESSAGE,
        resolver=jailed, sender=shell,
        intended=unix.resolve_for(shell, "notes"))
    auditor = CoherenceAuditor(RSender(unix.registry))
    record = auditor.observe(event)
    print(f"\nR(sender) on a sent relative name: {record.verdict}")


if __name__ == "__main__":
    main()
