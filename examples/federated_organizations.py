#!/usr/bin/env python
"""Two organizations federate their name spaces (§7, the overall
architecture).

org1 and org2 each share /users and /services inside their own scope.
When org1's people start referring to org2's home directories, the
name spaces are attached under /org2 and humans map names by adding
the prefix — the paper's "closure mechanism used by humans".  The demo
measures the mapping burden, then shows the §6 solutions picking up
the two sources humans cannot map: names in messages and names
embedded in files.

Run:  python examples/federated_organizations.py
"""

import random

from repro.closure import RActivity, RReceiver, RSender
from repro.coherence import CoherenceAuditor, format_table
from repro.embedded import StructuredContent, flatten, scope_rule, \
    structured_object
from repro.federation import PrefixMapping, mapping_burden
from repro.workloads import OrgSpec, build_federation, exchange_events


def main() -> None:
    env, (org1, org2) = build_federation(
        [OrgSpec("org1", divisions=2, users_per_division=3, services=2),
         OrgSpec("org2", divisions=2, users_per_division=3, services=2)],
        seed=1)

    alice = org1.activities[0]
    print("Within org1, /users names are shared under a common name:")
    print("  ", org1.user_names[0], "→",
          env.resolve_for(alice, org1.user_names[0]))

    # Cross the boundary: attach org2's spaces under /org2.
    env.import_foreign(org1.scope, org2.scope, "org2")
    mapping = PrefixMapping("org2", "org1", alias="org2")
    foreign = org2.user_names[0]
    print("\nCrossing the boundary needs the human prefix mapping:")
    print("  ", foreign, "→", mapping.apply(foreign), "→",
          env.resolve_for(alice, mapping.apply(foreign)))

    # How often does a mixed workload cross the boundary?
    rng = random.Random(1)
    everyone = org1.activities + org2.activities
    events = exchange_events(env.registry, everyone,
                             org1.user_names + org2.user_names, rng, 300)
    crossing = [e for e in events
                if env.scope_of(e.sender).chain()[-1]
                is not env.scope_of(e.resolver).chain()[-1]]
    burden = mapping_burden(crossing, len(events))
    print(f"\nMapping burden: {int(burden['crossing'])} of "
          f"{int(burden['total'])} uses cross the boundary "
          f"({burden['burden']:.0%}) — 'if the interaction across "
          f"scope boundaries is high,\nmapping names can become a "
          f"hindrance and enlarging the scope may be necessary'.")

    # Exchanged names: humans don't generate them; R(sender) does the
    # mapping automatically.
    rows = []
    for label, rule in (("R(receiver)", RReceiver(env.registry)),
                        ("R(sender)", RSender(env.registry))):
        auditor = CoherenceAuditor(rule)
        auditor.observe_all(events)
        rows.append([label, auditor.summary.coherence_rate()])
    print()
    print(format_table(["rule for exchanged names", "coherence rate"],
                       rows,
                       title="Names in messages across scopes"))

    # Embedded names: the Figure-6 R(file) rule restores coherence.
    users2 = org2.scope.space("users")
    notes = users2.mkfile("visitor-notes")
    notes.state = "WELCOME"
    report = users2.add("visitor-report", structured_object(
        "report", StructuredContent().text("<").include("visitor-notes")
        .text(">"), sigma=env.sigma))
    print("\nA structured file in org2 read from org1:")
    print("   under R(activity):",
          flatten(report, alice, RActivity(env.registry)))
    print("   under R(file):    ",
          flatten(report, alice, scope_rule(env.sigma)))


if __name__ == "__main__":
    main()
