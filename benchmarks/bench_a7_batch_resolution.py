"""Bench a7_batch_resolution: amortized resolution on a hot directory
— the seed sequential/uncached path vs prefix-cached and batched
resolution, with semantics checked in every style × policy cell
(including a mid-workload rebind).

Prints the reproduced table and asserts the qualitative claims.
"""

from repro.bench.experiments_batch import run_a7_batch_resolution

from conftest import run_and_report


def test_a7_batch_resolution(benchmark):
    run_and_report(benchmark, run_a7_batch_resolution, seed=0)
