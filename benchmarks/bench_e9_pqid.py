"""Bench e9_pqid: Section 6 Example 1: partially qualified identifiers.

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_solutions import run_e9_pqid

from conftest import run_and_report


def test_e9_pqid(benchmark):
    run_and_report(benchmark, run_e9_pqid, seed=0)
