"""Bench a8_availability: name-service availability under a scripted
fault schedule (primary crash + restart, flaky-link window, full
partition) — fail-fast baseline vs replicated failover with
retry/backoff vs degraded weak-coherence stale reads.

Prints the reproduced table and asserts the qualitative claims.
"""

from repro.bench.experiments_availability import run_a8_availability

from conftest import run_and_report


def test_a8_availability(benchmark):
    run_and_report(benchmark, run_a8_availability, seed=0)
