"""Bench e4_unix: Section 5.1: Unix file names (roots, forks, cwd, chroot).

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_schemes import run_e4_unix

from conftest import run_and_report


def test_e4_unix(benchmark):
    run_and_report(benchmark, run_e4_unix, seed=0)
