"""Bench a9_leases: lease-based cache coherence under partitions —
TTL expiry vs invalidation callbacks vs leases with grace mode, on a
surgical partition blip (lost coherence message) and the full A8
fault schedule with a mid-partition rebind.

Prints the reproduced table and asserts the qualitative claims.
"""

from repro.bench.experiments_leases import run_a9_leases

from conftest import run_and_report


def test_a9_leases(benchmark):
    run_and_report(benchmark, run_a9_leases, seed=0)
