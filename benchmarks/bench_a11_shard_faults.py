"""Bench a11_shard_faults: replicated shards vs single-owner shards
under a scripted crash/restart timeline — the availability contrast
the per-shard replica sets exist to create, with failover, stale
marks, and anti-entropy riding the same fault clock and the
coherence auditor scoring every read.

Runs at a reduced size (the contrast is scale-invariant as long as
each outage window spans many arrivals; the full default scale is the
perf harness's ``a11_shard_faults`` scenario at scale 1.0).  Prints
the reproduced table and asserts the qualitative claims.
"""

from repro.bench.experiments_shard_faults import run_a11_shard_faults

from conftest import run_and_report


def test_a11_shard_faults(benchmark):
    run_and_report(benchmark, run_a11_shard_faults, seed=0,
                   names=100_000, resolutions=10_000)
