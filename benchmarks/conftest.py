"""Shared helpers for the benchmark suite.

Each bench runs one experiment from the DESIGN.md index under
pytest-benchmark, prints the experiment's table (the figure/section
reproduction), and asserts every shape check — so `pytest benchmarks/
--benchmark-only` both times the experiments and regenerates the
paper's qualitative results.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult


def run_and_report(benchmark, runner, **kwargs) -> ExperimentResult:
    """Benchmark *runner*, print its table, assert its shape checks."""
    result: ExperimentResult = benchmark(runner, **kwargs)
    print()
    print(result.render())
    assert result.all_checks_pass(), result.failed_checks()
    return result
