"""Bench e11_perprocess: Section 6-II: per-process naming and remote execution.

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_solutions import run_e11_perprocess

from conftest import run_and_report


def test_e11_perprocess(benchmark):
    run_and_report(benchmark, run_e11_perprocess, seed=0)
