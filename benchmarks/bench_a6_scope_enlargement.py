"""Bench a6_scope_enlargement: §7's closing advice quantified —
federated scopes vs one enlarged scope under an identical workload.

Prints the reproduced table and asserts the qualitative claims.
"""

from repro.bench.experiments_scope_size import run_a6_scope_enlargement

from conftest import run_and_report


def test_a6_scope_enlargement(benchmark):
    run_and_report(benchmark, run_a6_scope_enlargement, seed=0)
