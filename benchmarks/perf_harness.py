"""Wall-clock performance harness for the simulator hot path.

Unlike the pytest-benchmark micro benches (``bench_micro_core.py``),
which measure *relative* per-call cost inside one pytest run, this
harness produces a **persistent perf trajectory**: named scenarios are
timed under ``time.perf_counter`` and written to ``BENCH_<pr>.json``
at the repo root (schema: bench name -> ``{wall_s, events_per_s,
messages_per_s, peak_heap_depth}``), so speedups and regressions are
visible *across* PRs, not just within one.

Scenarios come in two flavours:

* **kernel scenarios** drive the :class:`~repro.sim.kernel.Simulator`
  directly and report exact event/message counts and the peak event
  heap depth;
* **experiment scenarios** wrap the A7/A8/A9 reproduction experiments
  and report wall time only (their kernels are internal), with the
  rate fields null.

Every scenario is deterministic (fixed seeds); wall time is the only
non-deterministic output.  Use ``tools/bench_perf.py`` to run the
suite from the command line and manage baselines/regression gates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.kernel import Simulator

__all__ = ["ScenarioStats", "SCENARIOS", "SMOKE_SCENARIOS",
           "run_scenario", "run_suite", "calibrate"]


@dataclass
class ScenarioStats:
    """Counts one scenario run reports back to the timer."""

    events: Optional[int] = None
    messages: Optional[int] = None
    peak_heap_depth: Optional[int] = None


#: name -> scenario callable ``(scale: float) -> ScenarioStats``.
SCENARIOS: dict[str, Callable[[float], ScenarioStats]] = {}

#: The cheap subset CI smoke runs (kernel paths + one experiment).
SMOKE_SCENARIOS = ("kernel_message_throughput", "kernel_same_instant_fanout",
                   "kernel_timers_with_cancellation", "obs_overhead_no_obs",
                   "obs_overhead_sampled", "obs_overhead_full",
                   "a7_batch_resolution", "a10_sharding",
                   "a11_shard_faults")


def scenario(name: str):
    def register(fn: Callable[[float], ScenarioStats]):
        SCENARIOS[name] = fn
        return fn
    return register


def _scaled(base: int, scale: float, floor: int = 10) -> int:
    return max(floor, int(base * scale))


# -- kernel scenarios ------------------------------------------------------

def _message_workload(count: int, obs=None) -> ScenarioStats:
    """The message-throughput loop: 8 processes round-robining *count*
    messages, drained in one :meth:`Simulator.run` — shared by the
    throughput scenario and the ``obs_overhead_*`` family so the
    instrumentation comparison times byte-identical workloads."""
    simulator = Simulator(seed=1, obs=obs)
    network = simulator.network("lan")
    processes = [simulator.spawn(simulator.machine(network), f"p{i}")
                 for i in range(8)]
    for index in range(count):
        sender = processes[index % 8]
        receiver = processes[(index + 3) % 8]
        sender.send(receiver, payload=index)
    peak = simulator.queue.approx_len()
    processed = simulator.run(max_events=count + 1)
    assert simulator.messages_delivered == count
    return ScenarioStats(events=processed,
                         messages=simulator.messages_delivered,
                         peak_heap_depth=peak)


@scenario("kernel_message_throughput")
def kernel_message_throughput(scale: float = 1.0) -> ScenarioStats:
    """The ``bench_micro_core.test_kernel_message_throughput`` loop at
    harness scale."""
    return _message_workload(_scaled(20_000, scale))


@scenario("obs_overhead_no_obs")
def obs_overhead_no_obs(scale: float = 1.0) -> ScenarioStats:
    """Instrumentation overhead baseline: the throughput workload on
    the NO_OBS singleton (same numbers as
    ``kernel_message_throughput``, recorded separately so the
    ``obs_overhead_*`` triple is self-contained in the JSON)."""
    return _message_workload(_scaled(20_000, scale))


@scenario("obs_overhead_sampled")
def obs_overhead_sampled(scale: float = 1.0) -> ScenarioStats:
    """The throughput workload under *sampled* instrumentation: a
    :class:`~repro.obs.trace.SpanSampler` keeps ~5% of traces, and the
    kernel defers per-message counter emission to an end-of-run flush
    (``_flush_message_counters``) — the configuration the 1.15×
    overhead bound is asserted against."""
    from repro.obs.instrument import Instrumentation
    from repro.obs.trace import SpanSampler

    obs = Instrumentation(max_spans=4096,
                          sampler=SpanSampler(rate=0.05, seed=1))
    stats = _message_workload(_scaled(20_000, scale), obs=obs)
    sent = obs.metrics.counter("sim_messages_sent_total")
    assert sent.value == stats.messages, (sent.value, stats.messages)
    return stats


@scenario("obs_overhead_full")
def obs_overhead_full(scale: float = 1.0) -> ScenarioStats:
    """The throughput workload under full (unsampled) instrumentation
    — every message increments its counters inline; the historical
    ~1.5× configuration the sampling seam exists to avoid."""
    from repro.obs.instrument import Instrumentation

    obs = Instrumentation(max_spans=4096)
    return _message_workload(_scaled(20_000, scale), obs=obs)


@scenario("kernel_same_instant_fanout")
def kernel_same_instant_fanout(scale: float = 1.0) -> ScenarioStats:
    """A broadcast burst: every message lands at the same instant, so
    the whole run is one giant same-time dispatch batch."""
    fanout = _scaled(64, scale, floor=8)
    rounds = _scaled(200, scale)
    simulator = Simulator(seed=2)
    network = simulator.network("lan")
    machine = simulator.machine(network)
    root = simulator.spawn(machine, "root")
    sinks = [simulator.spawn(machine, f"sink{i}") for i in range(fanout)]
    peak = 0
    for _ in range(rounds):
        for sink in sinks:
            root.send(sink, payload="tick", latency=1.0)
        peak = max(peak, simulator.queue.approx_len())
        simulator.run()
    expected = fanout * rounds
    assert simulator.messages_delivered == expected
    return ScenarioStats(events=expected, messages=expected,
                         peak_heap_depth=peak)


@scenario("kernel_timers_with_cancellation")
def kernel_timers_with_cancellation(scale: float = 1.0) -> ScenarioStats:
    """Schedule a dense timer wheel and cancel half of it, exercising
    the cancelled-event bookkeeping (and, post-optimization, heap
    compaction) rather than message delivery."""
    count = _scaled(20_000, scale)
    simulator = Simulator(seed=3)
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    events = [simulator.schedule(1.0 + (index % 97) * 0.25, tick)
              for index in range(count)]
    peak = simulator.queue.approx_len()
    for index, event in enumerate(events):
        if index % 2:
            event.cancel()
    processed = simulator.run()
    live = count - count // 2
    assert fired[0] == live, (fired[0], live)
    return ScenarioStats(events=processed, messages=0,
                         peak_heap_depth=peak)


@scenario("kernel_request_reply")
def kernel_request_reply(scale: float = 1.0) -> ScenarioStats:
    """A synchronous request/reply protocol over
    :meth:`Simulator.run_until_settled` — the resolver-style bounded
    pump, one round trip at a time."""
    rounds = _scaled(4_000, scale)
    simulator = Simulator(seed=4)
    network = simulator.network("lan")
    client = simulator.spawn(simulator.machine(network), "client")
    server = simulator.spawn(simulator.machine(network), "server")

    def reply(process, message) -> None:
        process.send(message.sender, payload=("re", message.payload))

    server.on_message(reply)
    processed = 0
    peak = 0
    for index in range(rounds):
        request = client.send(server, payload=index)
        processed += simulator.run_until_settled(request)
        peak = max(peak, simulator.queue.approx_len())
    simulator.run()  # drain replies still in flight
    assert simulator.messages_delivered == 2 * rounds
    return ScenarioStats(events=2 * rounds, messages=2 * rounds,
                         peak_heap_depth=peak)


# -- transport scenarios (real seconds, localhost sockets) -----------------

def _transport_lookup_workload(lookups: int, *, replicas: int = 1,
                               closed_loop: bool = True) -> ScenarioStats:
    """Lookups/s over real localhost TCP through ``NamingService`` /
    ``RemoteNameClient`` — the same protocol code the simulator
    drives, measured in wall seconds.

    *closed_loop* issues one lookup at a time per client (latency
    bound); open loop launches the whole batch concurrently
    (pipelining bound).  *replicas* > 1 starts that many identical
    services and splits the stream across one client per replica —
    aggregate throughput at replication degree *replicas*.  Unlike the
    kernel scenarios these numbers include real syscalls and scheduler
    jitter; they are trajectory data, not a regression gate.
    """
    import asyncio

    from repro.model.context import context_object
    from repro.model.entities import ObjectEntity
    from repro.transport.service import NamingService, RemoteNameClient

    leaves = 64

    def build_tree():
        root = context_object("root")
        svc = context_object("svc")
        root.state.bind("svc", svc)
        for index in range(leaves):
            svc.state.bind(f"name-{index}", ObjectEntity(f"object-{index}"))
        return root

    names = [f"/svc/name-{index % leaves}" for index in range(lookups)]
    shards = [names[start::replicas] for start in range(replicas)]

    async def scenario() -> None:
        services, clients = [], []
        try:
            for index in range(replicas):
                service = NamingService(build_tree(), seed=index,
                                        label=f"lookupd{index}")
                address = await service.start()
                services.append(service)
                client = RemoteNameClient(
                    [(address.host, address.port)], seed=index,
                    timeout=30.0, label=f"bench-client-{index}")
                await client.connect()
                clients.append(client)

            async def drive(client, todo):
                if closed_loop:
                    for name in todo:
                        outcome = await client.resolve(name)
                        assert outcome.ok, name
                else:
                    outcomes = await asyncio.gather(
                        *(client.resolve(name) for name in todo))
                    assert all(o.ok for o in outcomes)

            await asyncio.gather(*(drive(client, shard)
                                   for client, shard in
                                   zip(clients, shards)))
        finally:
            for client in clients:
                await client.aclose()
            for service in services:
                await service.aclose()

    asyncio.run(scenario())
    return ScenarioStats(events=lookups, messages=lookups)


@scenario("transport_closed_loop_degree1")
def transport_closed_loop_degree1(scale: float = 1.0) -> ScenarioStats:
    """Serial lookups over one localhost service: ``events_per_s`` is
    closed-loop lookups/s (per-lookup latency inverse)."""
    return _transport_lookup_workload(_scaled(400, scale, floor=50))


@scenario("transport_open_loop_degree1")
def transport_open_loop_degree1(scale: float = 1.0) -> ScenarioStats:
    """The whole lookup batch in flight at once against one service:
    pipelined lookups/s."""
    return _transport_lookup_workload(_scaled(1_000, scale, floor=100),
                                      closed_loop=False)


@scenario("transport_closed_loop_replicated")
def transport_closed_loop_replicated(scale: float = 1.0) -> ScenarioStats:
    """Closed-loop lookups split across two replicas (one client
    each, running concurrently): aggregate lookups/s at degree 2."""
    return _transport_lookup_workload(_scaled(400, scale, floor=50),
                                      replicas=2)


@scenario("transport_open_loop_replicated")
def transport_open_loop_replicated(scale: float = 1.0) -> ScenarioStats:
    """Open-loop batch split across two replicas: aggregate pipelined
    lookups/s at degree 2."""
    return _transport_lookup_workload(_scaled(1_000, scale, floor=100),
                                      replicas=2, closed_loop=False)


# -- experiment scenarios --------------------------------------------------

@scenario("a7_batch_resolution")
def a7_batch_resolution(scale: float = 1.0) -> ScenarioStats:
    from repro.bench.experiments_batch import run_a7_batch_resolution
    result = run_a7_batch_resolution(seed=0)
    assert result.all_checks_pass(), result.failed_checks()
    return ScenarioStats()


@scenario("a8_availability")
def a8_availability(scale: float = 1.0) -> ScenarioStats:
    from repro.bench.experiments_availability import run_a8_availability
    result = run_a8_availability(seed=0)
    assert result.all_checks_pass(), result.failed_checks()
    return ScenarioStats()


@scenario("a9_leases")
def a9_leases(scale: float = 1.0) -> ScenarioStats:
    from repro.bench.experiments_leases import run_a9_leases
    result = run_a9_leases(seed=0)
    assert result.all_checks_pass(), result.failed_checks()
    return ScenarioStats()


@scenario("a10_sharding")
def a10_sharding(scale: float = 1.0) -> ScenarioStats:
    """The million-name sharding run: scale 1.0 is the full ROADMAP
    floor (10^6 names, 10^5 open-loop resolutions); smoke scales it
    down — the saturation-vs-flat comparison is scale-invariant."""
    from repro.bench.experiments_sharding import run_a10_sharding
    result = run_a10_sharding(
        seed=0,
        names=_scaled(1_000_000, scale, floor=20_000),
        resolutions=_scaled(100_000, scale, floor=2_000))
    assert result.all_checks_pass(), result.failed_checks()
    return ScenarioStats()


@scenario("a11_shard_faults")
def a11_shard_faults(scale: float = 1.0) -> ScenarioStats:
    """Replicated shards under the scripted crash/restart timeline:
    scale 1.0 is the experiment's full default (2·10^5 names, 2·10^4
    resolutions); smoke scales it down — the availability contrast is
    scale-invariant while the outage windows span many arrivals."""
    from repro.bench.experiments_shard_faults import run_a11_shard_faults
    result = run_a11_shard_faults(
        seed=0,
        names=_scaled(200_000, scale, floor=20_000),
        resolutions=_scaled(20_000, scale, floor=2_000))
    assert result.all_checks_pass(), result.failed_checks()
    return ScenarioStats()


# -- timing ----------------------------------------------------------------

def calibrate(loops: int = 5) -> float:
    """A machine-speed yardstick: iterations/s of a fixed pure-python
    loop.  Recording it beside every bench lets the regression gate
    normalise rates measured on different machines (laptop vs CI
    runner) to first order."""
    best = float("inf")
    for _ in range(loops):
        start = time.perf_counter()
        total = 0
        for index in range(200_000):
            total += index % 7
        best = min(best, time.perf_counter() - start)
    assert total >= 0
    return 200_000 / best


def run_scenario(name: str, scale: float = 1.0,
                 repeats: int = 3) -> dict:
    """Time one scenario; the *best* of *repeats* runs is reported
    (least-noise estimator for a deterministic workload).

    Each repeat runs from a collected heap with the cyclic GC frozen:
    earlier scenarios leave megabytes of dead Messages and trace
    entries behind, and whether a gen-2 collection lands inside *this*
    scenario's timed region otherwise depends on suite order — a ~1.5×
    cross-contamination that used to be indistinguishable from real
    overhead (refcounting still frees the workload's garbage; only
    cycle detection is deferred to the inter-repeat collect).
    """
    import gc

    fn = SCENARIOS[name]
    best_wall = float("inf")
    stats = ScenarioStats()
    for _ in range(max(1, repeats)):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            stats = fn(scale)
            wall = time.perf_counter() - start
        finally:
            gc.enable()
        best_wall = min(best_wall, wall)
    record = {
        "wall_s": round(best_wall, 6),
        "events_per_s": (round(stats.events / best_wall, 1)
                         if stats.events else None),
        "messages_per_s": (round(stats.messages / best_wall, 1)
                           if stats.messages else None),
        "peak_heap_depth": stats.peak_heap_depth,
    }
    return record


def run_suite(names=None, scale: float = 1.0, repeats: int = 3,
              verbose: bool = False) -> dict:
    """Run scenarios (all by default) and return name -> record."""
    results: dict[str, dict] = {}
    for name in (names or SCENARIOS):
        if name not in SCENARIOS:
            raise KeyError(f"unknown scenario {name!r}; "
                           f"known: {', '.join(SCENARIOS)}")
        results[name] = run_scenario(name, scale=scale, repeats=repeats)
        if verbose:
            record = results[name]
            rate = record["events_per_s"]
            rate_text = f"{rate:,.0f} events/s" if rate else "wall only"
            print(f"  {name:34} {record['wall_s']*1e3:9.2f} ms  {rate_text}")
    return results
