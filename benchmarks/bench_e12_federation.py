"""Bench e12_federation: Section 7: shared name spaces in limited scopes.

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_federation import run_e12_federation

from conftest import run_and_report


def test_e12_federation(benchmark):
    run_and_report(benchmark, run_e12_federation, seed=0)
