"""Bench a10_sharding: live hot-shard splitting vs single placement
under an open-loop Zipf workload — the saturation curve the sharded
placement layer exists to flatten, with migration as simulated
messages and the exactly-one-owner invariant checked at the end.

Runs at a reduced size (the comparison's shape is scale-invariant;
the full 10^6-name / 10^5-resolution run is the perf harness's
``a10_sharding`` scenario at scale 1.0).  Prints the reproduced table
and asserts the qualitative claims.
"""

from repro.bench.experiments_sharding import run_a10_sharding

from conftest import run_and_report


def test_a10_sharding(benchmark):
    run_and_report(benchmark, run_a10_sharding, seed=0,
                   names=100_000, resolutions=10_000)
