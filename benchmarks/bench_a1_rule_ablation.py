"""Bench a1_rule_ablation: Ablation A1: the full rule x source grid of section 4.

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_rules import run_a1_rule_ablation

from conftest import run_and_report


def test_a1_rule_ablation(benchmark):
    run_and_report(benchmark, run_a1_rule_ablation, seed=0)
