"""Micro-benchmarks for the core primitives.

Not tied to a paper figure — these time the substrate operations every
experiment is built from, so regressions in the hot paths (compound
resolution, coherence measurement, pid mapping, kernel message
throughput) are visible independently of the scenario benches.
"""

from __future__ import annotations

import random

from repro.coherence.metrics import measure_degree
from repro.model.names import CompoundName
from repro.model.resolution import resolve
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.namespaces.unix import UnixSystem
from repro.pqid.mapping import map_pid, qualify
from repro.sim.kernel import Simulator
from repro.workloads.scenarios import build_pqid_population

DEPTH = 32
WIDTH = 256


def test_resolve_deep_path(benchmark):
    tree = NamingTree("root", parent_links=True)
    path = CompoundName([f"d{i}" for i in range(DEPTH)])
    tree.mkfile(path)
    context = ProcessContext(tree.root)
    rooted = path.as_rooted()

    result = benchmark(resolve, context, rooted)
    assert result.is_defined()


def test_resolve_wide_directory(benchmark):
    tree = NamingTree("root", parent_links=True)
    for index in range(WIDTH):
        tree.mkfile(f"dir/f{index}")
    context = ProcessContext(tree.root)

    result = benchmark(resolve, context, "/dir/f200")
    assert result.is_defined()


def test_measure_degree_scaling(benchmark):
    unix = UnixSystem("big")
    for index in range(40):
        unix.tree.mkfile(f"home/u{index}/file")
    for index in range(20):
        unix.spawn(f"p{index}")
    probes = unix.probe_names()

    degree = benchmark(measure_degree, unix.activities(), probes,
                       unix.registry)
    assert degree.coherent_fraction == 1.0


def test_pid_mapping_throughput(benchmark):
    population = build_pqid_population(seed=0, n_networks=3,
                                       machines_per_network=3,
                                       processes_per_machine=3)
    rng = random.Random(0)
    triples = [(rng.choice(population.processes),
                rng.choice(population.processes),
                rng.choice(population.processes))
               for _ in range(200)]

    def run():
        ok = 0
        for sender, receiver, target in triples:
            pid = qualify(target, sender)
            if map_pid(pid, sender, receiver) is not None:
                ok += 1
        return ok

    assert benchmark(run) == 200


def test_kernel_message_throughput(benchmark):
    def run():
        simulator = Simulator(seed=1)
        network = simulator.network("lan")
        processes = [simulator.spawn(simulator.machine(network), f"p{i}")
                     for i in range(8)]
        for index in range(500):
            sender = processes[index % 8]
            receiver = processes[(index + 3) % 8]
            sender.send(receiver, payload=index)
        simulator.run()
        return simulator.messages_delivered

    assert benchmark(run) == 500


def test_large_tree_walk(benchmark):
    tree = NamingTree("big", parent_links=True)
    for top in range(20):
        for mid in range(10):
            for leaf in range(5):
                tree.mkfile(f"d{top}/s{mid}/f{leaf}")

    paths = benchmark(tree.all_paths)
    assert len(paths) == 20 + 20 * 10 + 20 * 10 * 5


def test_naming_graph_edges_scaling(benchmark):
    from repro.model.graph import NamingGraph
    from repro.model.state import GlobalState

    sigma = GlobalState()
    tree = NamingTree("big", sigma=sigma, parent_links=True)
    for top in range(30):
        for leaf in range(20):
            tree.mkfile(f"d{top}/f{leaf}")
    graph = NamingGraph(sigma)

    edges = benchmark(lambda: sum(1 for _ in graph.edges()))
    # 30 top dirs + 600 leaves + 31 parent links (root self + 30 dirs).
    assert edges == 30 + 600 + 31
