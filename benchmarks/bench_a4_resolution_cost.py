"""Bench a4_resolution_cost: the section-5 coherence/coupling
trade-off — resolution messages, latency and central-server load for
the single tree vs the shared graph vs per-process namespaces.

Prints the reproduced table and asserts the qualitative claims.
"""

from repro.bench.experiments_cost import run_a4_resolution_cost

from conftest import run_and_report


def test_a4_resolution_cost(benchmark):
    run_and_report(benchmark, run_a4_resolution_cost, seed=0)
