"""Bench e6_shared_graph: Figure 4: the shared naming graph approach (Andrew).

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_schemes import run_e6_shared_graph

from conftest import run_and_report


def test_e6_shared_graph(benchmark):
    run_and_report(benchmark, run_e6_shared_graph, seed=0)
