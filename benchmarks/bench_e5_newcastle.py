"""Bench e5_newcastle: Figure 3: the Newcastle Connection.

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_schemes import run_e5_newcastle

from conftest import run_and_report


def test_e5_newcastle(benchmark):
    run_and_report(benchmark, run_e5_newcastle, seed=0)
