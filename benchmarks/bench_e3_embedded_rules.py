"""Bench e3_embedded_rules: Figure 2b: embedded names under R(object) vs R(activity).

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_rules import run_e3_embedded_rules

from conftest import run_and_report


def test_e3_embedded_rules(benchmark):
    run_and_report(benchmark, run_e3_embedded_rules, seed=0)
