"""Bench a2_scheme_grid: Ablation A2: all schemes on one comparable workload.

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_schemes import run_a2_scheme_grid

from conftest import run_and_report


def test_a2_scheme_grid(benchmark):
    run_and_report(benchmark, run_a2_scheme_grid, seed=0)
