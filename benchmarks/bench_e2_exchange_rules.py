"""Bench e2_exchange_rules: Figure 2a: exchanged names under R(sender) vs R(receiver).

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_rules import run_e2_exchange_rules

from conftest import run_and_report


def test_e2_exchange_rules(benchmark):
    run_and_report(benchmark, run_e2_exchange_rules, seed=0)
