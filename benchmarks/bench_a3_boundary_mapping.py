"""Bench a3_boundary_mapping: the §6 'implemented by mapping' device
measured with gateways on and off over Newcastle and a federation.

Prints the reproduced table and asserts the qualitative claims;
timings measure the full scenario build + two-substrate sweep.
"""

from repro.bench.experiments_boundary import run_a3_boundary_mapping

from conftest import run_and_report


def test_a3_boundary_mapping(benchmark):
    run_and_report(benchmark, run_a3_boundary_mapping, seed=0)
