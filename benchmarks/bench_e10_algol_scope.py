"""Bench e10_algol_scope: Figure 6: embedded names under Algol scope rules.

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_solutions import run_e10_algol_scope

from conftest import run_and_report


def test_e10_algol_scope(benchmark):
    run_and_report(benchmark, run_e10_algol_scope, seed=0)
