"""Bench e7_dce: Section 5.2: OSF DCE cells (/... and /.:).

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_schemes import run_e7_dce

from conftest import run_and_report


def test_e7_dce(benchmark):
    run_and_report(benchmark, run_e7_dce, seed=0)
