"""Bench e1_sources: Figure 1: the three sources of names under a per-source rule table.

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_rules import run_e1_sources

from conftest import run_and_report


def test_e1_sources(benchmark):
    run_and_report(benchmark, run_e1_sources, seed=0)
