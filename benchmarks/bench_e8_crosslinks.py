"""Bench e8_crosslinks: Figure 5: cross-links between autonomous systems.

Prints the reproduced table and asserts the paper's qualitative
claims; timings measure the full scenario build + measurement.
"""

from repro.bench.experiments_schemes import run_e8_crosslinks

from conftest import run_and_report


def test_e8_crosslinks(benchmark):
    run_and_report(benchmark, run_e8_crosslinks, seed=0)
