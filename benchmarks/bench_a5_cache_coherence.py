"""Bench a5_cache_coherence: cached bindings as an incoherence source —
no-cache vs TTL vs invalidation over a service-registry workload.

Prints the reproduced table and asserts the qualitative claims.
"""

from repro.bench.experiments_cache import run_a5_cache_coherence

from conftest import run_and_report


def test_a5_cache_coherence(benchmark):
    run_and_report(benchmark, run_a5_cache_coherence, seed=0)
