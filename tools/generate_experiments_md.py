#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from a live run of the experiment suite.

Usage:  python tools/generate_experiments_md.py > EXPERIMENTS.md
"""

from __future__ import annotations

import sys

from repro.bench import ALL_EXPERIMENTS

PAPER_ANCHORS = {
    "E1": ("Figure 1 + §3", "The three sources of names — internal, "
           "message, object — all occur and are handled by a "
           "per-source rule table."),
    "E2": ("Figure 2a + §4", "Exchanged names: R(sender) gives "
           "coherence for all names sent; R(receiver) only for global "
           "names."),
    "E3": ("Figure 2b + §4", "Embedded names: R(object) gives "
           "coherence among all activities; R(activity) only for "
           "global names."),
    "E4": ("§5.1 Unix", "Coherence for '/' names among same-root "
           "processes; fork children coherent for all names until a "
           "context change; chroot breaks coherence."),
    "E5": ("Figure 3 + §5.1", "Newcastle: same-machine coherence only; "
           "a shared tree does not imply global names; the ../machine "
           "mapping rule; the two remote-exec root policies."),
    "E6": ("Figure 4 + §5.2", "Andrew: /vice names coherent "
           "everywhere, local names per client, /bin weakly coherent, "
           "only shared-graph entities passable as arguments."),
    "E7": ("§5.2 DCE", "/... names global; /.: cell-relative names "
           "coherent only within a cell."),
    "E8": ("Figure 5 + §5.3", "Cross-links give access, not "
           "coherence; global names only by prefix coincidence."),
    "E9": ("§6-I Ex.1", "Partially qualified pids with R(sender) "
           "mapping: coherent exchange; internal connections survive "
           "machine/network renumbering; fully qualified pids break."),
    "E10": ("Figure 6 + §6-I Ex.2", "Algol-scoped embedded names: "
            "same meaning for every reader; invariant under "
            "relocation, copying, simultaneous attachment, and "
            "combination."),
    "E11": ("§6-II", "Per-process namespaces: remote children import "
            "the parent's context — parameter coherence without "
            "global names, plus local access."),
    "E12": ("§7", "Shared name spaces in limited scopes; human prefix "
            "mapping at boundaries; §6 solutions cover exchanged and "
            "embedded names across scopes."),
    "A1": ("§4 (ablation)", "The full rule × source grid matches each "
           "rule's predicted coherence class."),
    "A2": ("§5 (ablation)", "Scheme ordering by degree of coherence: "
           "single tree ≥ shared graph ≥ per-machine-root designs."),
    "A3": ("§6 (ablation)", "R(sender) 'implemented by mapping': "
           "boundary gateways turn incoherent cross-boundary exchange "
           "into fully coherent exchange."),
    "A4": ("§5 (ablation, extension)", "The coherence/coupling "
           "trade-off: the single tree pays remote traffic and "
           "central load for its coherence; loosely-coupled designs "
           "serve local names for free."),
    "A5": ("extension (modern relevance)", "Cached bindings: "
           "staleness IS incoherence; no-cache never stale but "
           "expensive, TTL cheap but stale in windows, invalidation "
           "cheap and never stale at the cost of protocol messages."),
    "A6": ("§7 (ablation)", "'Enlarging the scope may be necessary': "
           "one merged scope removes both the mapping burden and the "
           "R(receiver) incoherence the federated configuration "
           "suffers."),
    "A7": ("extension (modern relevance)", "Amortized resolution: "
           "prefix caching and batched resolution pay the shared walk "
           "once, preserving semantics in every style × policy cell "
           "(rebinds included)."),
    "A8": ("§3 weak coherence (extension)", "Availability under "
           "faults: replicated directories with retry/backoff and "
           "failover keep names resolving through crashes and flaky "
           "links, and policy-gated stale reads answer through "
           "partitions — always tagged weakly coherent, never "
           "silently passed off as coherent."),
    "A9": ("§3 coherence (extension)", "Leases bound staleness: a "
           "lost invalidation callback leaves a stale copy forever, "
           "but a lease is a promise with an expiry — even when the "
           "break callback is lost in a partition the holder is stale "
           "for at most one lease term plus one delivery delay, and "
           "grace-mode answers from expired leases are always tagged "
           "weakly coherent."),
    "A10": ("§5 resolution cost (extension)", "Sharding keeps the hot "
            "directory's p99 flat: a Zipf workload over a sharded "
            "namespace saturates a single placement (p99 grows "
            "superlinearly across run quarters) while live "
            "load-driven shard splits hold steady-state p99 near the "
            "idle baseline, migrating bindings as simulated messages "
            "with exactly-one-owner preserved across every split."),
    "A11": ("§3 weak coherence (extension)", "Replicated shards keep "
            "every hash range available through shard-server crashes: "
            "under an identical scripted crash/restart timeline, "
            "degree-2 shards hold availability ≈ 1.0 via per-shard "
            "failover and heal missed writes by anti-entropy on "
            "restart, while single-owner shards lose the dead range's "
            "lookups for the length of each crash window and are left "
            "with a permanently dark (stale, sourceless) range — all "
            "without a single coherence violation in either run."),
}


def main() -> None:
    out = sys.stdout
    out.write(
        "# EXPERIMENTS — paper claims vs. measured outcomes\n\n"
        "Regenerate this file with "
        "`python tools/generate_experiments_md.py > EXPERIMENTS.md`.\n"
        "Each experiment is also a benchmark "
        "(`pytest benchmarks/bench_<id>_*.py --benchmark-only`) and a "
        "test\n(`pytest tests/bench/test_experiments.py`).  The paper "
        "reports no absolute numbers —\nits evaluation is the "
        "qualitative analysis of sections 4–7 — so \"reproduced\" "
        "means the\nmeasured table satisfies every claim-derived "
        "shape check.\n\n"
        "Seed: 0 (all experiments are deterministic given the seed; "
        "the claim checks also pass\nfor seeds 1, 7 and 42 — see "
        "`tests/bench/test_experiments.py`).\n\n")
    summary_rows = []
    sections = []
    for exp_id, runner in ALL_EXPERIMENTS.items():
        result = runner(seed=0)
        anchor, claim = PAPER_ANCHORS[exp_id]
        status = "reproduced" if result.all_checks_pass() else "MISMATCH"
        summary_rows.append((exp_id, anchor, status,
                             f"{sum(result.checks.values())}/"
                             f"{len(result.checks)}"))
        lines = [f"## {exp_id} — {result.title}", "",
                 f"*Paper anchor*: {anchor}", "",
                 f"*Paper claim*: {claim}", "", "```text",
                 result.render(), "```", ""]
        sections.append("\n".join(lines))

    out.write("| id | paper anchor | status | checks |\n")
    out.write("|----|--------------|--------|--------|\n")
    for exp_id, anchor, status, checks in summary_rows:
        out.write(f"| {exp_id} | {anchor} | {status} | {checks} |\n")
    out.write("\n")
    out.write("\n".join(sections))


if __name__ == "__main__":
    main()
