#!/usr/bin/env python
"""Render a built-in scenario's naming graph as Graphviz DOT.

Usage::

    python tools/render_graph.py newcastle > newcastle.dot
    python tools/render_graph.py andrew | dot -Tsvg > andrew.svg

Scenarios: unix, newcastle, andrew, dce, perprocess.
"""

from __future__ import annotations

import argparse
import sys

from repro.model.graph import NamingGraph


def build_unix():
    from repro.namespaces.unix import UnixSystem

    unix = UnixSystem("demo")
    unix.tree.mkfile("etc/passwd")
    unix.tree.mkfile("home/alice/notes")
    unix.spawn("init")
    return unix.sigma


def build_newcastle():
    from repro.namespaces.newcastle import NewcastleSystem

    nc = NewcastleSystem()
    for machine in ("unix1", "unix2", "unix3"):
        nc.add_machine(machine).mkfile("usr/data")
    return nc.sigma


def build_andrew():
    from repro.namespaces.shared_graph import SharedGraphSystem

    campus = SharedGraphSystem()
    campus.shared.mkfile("usr/alice/thesis")
    for label in ("ws1", "ws2"):
        campus.add_client(label).tree.mkfile("tmp/scratch")
    return campus.sigma


def build_dce():
    from repro.namespaces.dce import DCESystem

    dce = DCESystem()
    dce.add_cell("research").mkfile("services/db")
    dce.add_machine("ws1", "research")
    return dce.sigma


def build_perprocess():
    from repro.namespaces.perprocess import PerProcessSystem

    port = PerProcessSystem()
    port.add_machine("m1").mkfile("src/prog.c")
    port.add_machine("fs").mkfile("lib/libc")
    port.spawn("m1", "dev", mounts=[("home", "m1"), ("lib", "fs")])
    return port.sigma


SCENARIOS = {
    "unix": build_unix,
    "newcastle": build_newcastle,
    "andrew": build_andrew,
    "dce": build_dce,
    "perprocess": build_perprocess,
}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("scenario", choices=sorted(SCENARIOS))
    args = parser.parse_args()
    sigma = SCENARIOS[args.scenario]()
    sys.stdout.write(NamingGraph(sigma).to_dot())
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)  # output piped into head/less and closed

