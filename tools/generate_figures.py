#!/usr/bin/env python
"""Regenerate docs/figures.md: the paper's six figures, reproduced.

Each section describes the figure, builds the corresponding structure
with this library, and embeds the naming graph in Graphviz DOT (pipe
any block through ``dot -Tsvg`` to draw it).

Usage:  python tools/generate_figures.py > docs/figures.md
"""

from __future__ import annotations

import sys

from repro.model.graph import NamingGraph
from repro.model.state import GlobalState


def figure1() -> tuple[str, str]:
    """Three sources of names — shown as a tiny system where one
    activity holds a generated name, receives one, and reads one."""
    from repro.embedded.objects import StructuredContent, structured_object
    from repro.model.context import context_object
    from repro.model.entities import Activity

    sigma = GlobalState()
    activity = sigma.add(Activity("activity"))
    peer = sigma.add(Activity("peer"))
    container = structured_object(
        "object-with-name", StructuredContent().include("embedded"),
        sigma=sigma)
    home = sigma.add(context_object("context"))
    home.state.bind("generated", sigma.add(context_object("target")))
    description = (
        "An activity obtains names three ways: generating them "
        "internally (or from a user), receiving them in messages from "
        "other activities, and reading them out of objects.  In the "
        "library these are `NameSource.INTERNAL`, `.MESSAGE` and "
        "`.OBJECT` on every `ResolutionEvent`.")
    return description, NamingGraph(sigma).to_dot()


def figure2() -> tuple[str, str]:
    """Context selection for exchanged / embedded names."""
    from repro.model.context import context_object
    from repro.model.entities import Activity, ObjectEntity

    sigma = GlobalState()
    sender_ctx = sigma.add(context_object("ctxOf(sender)"))
    receiver_ctx = sigma.add(context_object("ctxOf(receiver)"))
    object_ctx = sigma.add(context_object("ctxOf(object)"))
    sigma.add(Activity("sender"))
    sigma.add(Activity("receiver"))
    sigma.add(ObjectEntity("object"))
    meaning = sigma.add(ObjectEntity("entity"))
    for ctx in (sender_ctx, receiver_ctx, object_ctx):
        ctx.state.bind("n", meaning)
    description = (
        "A name exchanged in a message can be resolved in the "
        "receiver's context (`RReceiver`) or the sender's "
        "(`RSender`); a name obtained from an object in the reader's "
        "context (`RActivity`) or the object's (`RObject`).  "
        "Experiments E2/E3 measure all four cells.")
    return description, NamingGraph(sigma).to_dot()


def figure3() -> tuple[str, str]:
    from repro.namespaces.newcastle import NewcastleSystem

    nc = NewcastleSystem()
    for machine in ("unix1", "unix2", "unix3"):
        nc.add_machine(machine).mkfile("usr/f")
    description = (
        "Three machines' trees joined under a created super-root; "
        "each machine root's `..` leads up, so `/../unix2/usr/f` "
        "reaches another machine.  Built by `NewcastleSystem`; "
        "experiment E5.")
    return description, NamingGraph(nc.sigma).to_dot()


def figure4() -> tuple[str, str]:
    from repro.namespaces.shared_graph import SharedGraphSystem

    campus = SharedGraphSystem()
    campus.shared.mkfile("usr/shared-file")
    for label in ("c1", "c2", "c3"):
        campus.add_client(label).tree.mkfile("local-file")
    description = (
        "Client subsystems keep private naming graphs and all mount "
        "one shared naming graph (at `/vice`).  Built by "
        "`SharedGraphSystem`; experiment E6.")
    return description, NamingGraph(campus.sigma).to_dot()


def figure5() -> tuple[str, str]:
    from repro.namespaces.crosslink import FederatedSystems

    fed = FederatedSystems()
    fed.add_system("system1").mkfile("users/amy/f")
    fed.add_system("system2").mkfile("projects/p")
    fed.add_link("system1", "org2", "system2")
    fed.add_link("system2", "org1", "system1", "users")
    description = (
        "Two autonomous systems extended with cross-links into each "
        "other's naming graphs — access without coherence.  Built by "
        "`FederatedSystems.add_link`; experiment E8.")
    return description, NamingGraph(fed.sigma).to_dot()


def figure6() -> tuple[str, str]:
    from repro.embedded.objects import StructuredContent, structured_object
    from repro.namespaces.tree import NamingTree

    sigma = GlobalState()
    tree = NamingTree("root", sigma=sigma, parent_links=True)
    tree.mkfile("n-prime/a/p")          # n'' under the binding at n'
    tree.add("n-prime/src/n", structured_object(
        "n-embeds-a-slash-p", StructuredContent().include("a/p"),
        sigma=sigma))
    description = (
        "A name `a/p` embedded in node *n* is resolved by searching "
        "up the tree for the closest ancestor (*n'*) with a binding "
        "for `a`, denoting *n''* — Algol scope rules over nested "
        "subtrees.  Implemented by `UpwardScopeContext`/`scope_rule`; "
        "experiment E10.")
    return description, NamingGraph(sigma).to_dot()


FIGURES = [
    ("Figure 1 — Three Sources of Names", figure1),
    ("Figure 2 — Coherence and Resolution Rules", figure2),
    ("Figure 3 — A Newcastle System with Three Machines", figure3),
    ("Figure 4 — A Naming Graph Shared among Clients", figure4),
    ("Figure 5 — Cross Links between Autonomous Systems", figure5),
    ("Figure 6 — Examples of Embedded Names", figure6),
]


def main() -> int:
    out = sys.stdout
    out.write("# The paper's figures, reproduced\n\n")
    out.write("Regenerate with `python tools/generate_figures.py > "
              "docs/figures.md`.\nEach DOT block renders with "
              "`dot -Tsvg` (dashed edges are `..` parent links).\n\n")
    for title, builder in FIGURES:
        description, dot = builder()
        out.write(f"## {title}\n\n{description}\n\n")
        out.write(f"```dot\n{dot}\n```\n\n")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
