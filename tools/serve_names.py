#!/usr/bin/env python3
"""Serve (and exercise) the naming protocol over real localhost sockets.

The multi-process demo for the transport subsystem: the *unchanged*
resolver/retry/lease protocol code (``repro.nameservice.protocol``)
runs over ``repro.transport.aio`` TCP instead of the simulator.

Subcommands:

* ``serve`` — host a namespace on a real socket::

      PYTHONPATH=src python tools/serve_names.py serve --port 4640

* ``session`` — run the scripted client session against a running
  server (lookups, a lease grant, a rebind that breaks the lease over
  the socket) and assert every step::

      PYTHONPATH=src python tools/serve_names.py session --port 4640

* ``demo`` — the two in one: fork a server subprocess, run the
  session against it over localhost, tear down.  Exits nonzero if any
  assertion fails (this is the CI ``transport-smoke`` entry point)::

      PYTHONPATH=src python tools/serve_names.py demo --trace artifacts/transport_trace.json

``--trace FILE`` dumps the client's spans, metrics and frame counters
as JSON — the flight-recorder artifact CI uploads.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.model.context import context_object  # noqa: E402
from repro.model.entities import Entity, ObjectEntity  # noqa: E402
from repro.nameservice.retry import RetryPolicy  # noqa: E402
from repro.obs.instrument import Instrumentation  # noqa: E402
from repro.transport.service import (NamingService,  # noqa: E402
                                     RemoteNameClient)

#: The demo namespace always contains these fixed paths.
FIXED_PATHS = ["/usr/bin/python", "/usr/bin/ls", "/etc/passwd"]


def build_namespace(names: int = 50) -> Entity:
    """The served tree: a small unix-flavoured skeleton plus *names*
    synthetic leaves under ``/svc``."""
    root = context_object("root")
    usr = context_object("usr")
    bin_ = context_object("bin")
    etc = context_object("etc")
    svc = context_object("svc")
    root.state.bind("usr", usr)
    root.state.bind("etc", etc)
    root.state.bind("svc", svc)
    usr.state.bind("bin", bin_)
    bin_.state.bind("python", ObjectEntity("python3"))
    bin_.state.bind("ls", ObjectEntity("ls"))
    etc.state.bind("passwd", ObjectEntity("passwd"))
    for index in range(names):
        svc.state.bind(f"name-{index}", ObjectEntity(f"object-{index}"))
    return root


# -- serve ----------------------------------------------------------------


async def run_server(args: argparse.Namespace) -> None:
    service = NamingService(
        build_namespace(args.names), seed=args.seed,
        lease_term=args.lease_term,
        retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.05,
                                 max_backoff=0.5))
    address = await service.start(args.host, args.port)
    # Machine-readable hello for the demo driver; flush so a piping
    # parent sees it immediately.
    print(f"LISTENING {address.host} {address.port} {address.label}",
          flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        await service.aclose()


# -- session --------------------------------------------------------------


class SessionError(AssertionError):
    pass


def check(condition: bool, what: str) -> None:
    if not condition:
        raise SessionError(what)


async def run_session(args: argparse.Namespace) -> dict:
    """The scripted smoke session; returns the result summary."""
    obs = Instrumentation()
    client = RemoteNameClient(
        [(args.host, args.port)], seed=args.seed, obs=obs,
        timeout=args.timeout, max_retries=2,
        retry_policy=RetryPolicy(max_attempts=3, base_backoff=0.05,
                                 max_backoff=0.5))
    results: dict = {"lookups": [], "ok": False}
    started = time.monotonic()
    try:
        root = await client.connect()
        check(root is not None and root.is_defined(), "no root proxy")

        # 1. Plain lookups over the socket.
        for path in FIXED_PATHS:
            outcome = await client.resolve(path)
            results["lookups"].append(
                {"name": path, "ok": outcome.ok,
                 "entity": outcome.entity.label, "steps": outcome.steps})
            check(outcome.ok, f"lookup failed: {path}: {outcome.reason}")
        sample = await client.resolve("/svc/name-0")
        check(sample.ok, "synthetic lookup failed")
        missing = await client.resolve("/usr/bin/does-not-exist")
        check(not missing.ok and not missing.failed,
              "missing name must resolve undefined, not error")

        # 2. Lease the /usr binding, then rebind it server-side: the
        #    break callback must arrive over the socket and revoke the
        #    client's grant before the rebound reply lands.
        dep = client.dep_for(root, "usr")
        await client.lease(dep)
        check(client.lease_table.fresh(dep, client.transport.now()),
              "lease not fresh after grant")
        report = await client.rebind(["usr"], label="usr-v2",
                                     directory=True)
        check(report.get("notified") == 1,
              f"expected 1 notified holder, got {report}")
        check(client.client.lease_callbacks == 1,
              "client never saw the break callback")
        check(not client.lease_table.fresh(dep, client.transport.now()),
              "lease still fresh after break")

        # 3. Rebind-triggered invalidation is visible: the old subtree
        #    is gone, the new directory resolves.
        stale = await client.resolve("/usr/bin/python")
        check(not stale.ok, "old subtree still resolves after rebind")
        fresh = await client.resolve("/usr")
        check(fresh.ok and fresh.entity.label == "usr-v2",
              f"rebound directory wrong: {fresh.entity!r}")

        stats = await client.stats()
        check(stats["requests_served"] >= 5, "server served too little")
        check(stats["leases"]["acks"] == 1, "server missed the ack")
        results.update(
            ok=True, seconds=round(time.monotonic() - started, 3),
            lease_callbacks=client.client.lease_callbacks,
            server=stats,
            frames={"sent": client.transport.frames_sent,
                    "delivered": client.transport.frames_delivered,
                    "dropped": client.transport.frames_dropped})
        return results
    finally:
        if args.trace:
            dump_trace(args.trace, obs, client, results)
        await client.aclose()


def dump_trace(path: str, obs: Instrumentation,
               client: RemoteNameClient, results: dict) -> None:
    spans = [{"trace_id": span.trace_id, "span_id": span.span_id,
              "kind": span.kind, "name": span.name,
              "start": span.start, "end": span.end,
              "status": span.status, "reason": span.reason,
              "attrs": dict(span.attrs)}
             for span in obs.tracer.spans]
    artifact = {"schema": "repro-transport-trace/1",
                "results": results, "spans": spans,
                "metrics": obs.metrics.snapshot(),
                "frames": {"sent": client.transport.frames_sent,
                           "delivered": client.transport.frames_delivered,
                           "dropped": client.transport.frames_dropped}}
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(artifact, indent=2, sort_keys=True,
                                 default=str))
    print(f"trace artifact: {target} ({len(spans)} spans)")


# -- demo -----------------------------------------------------------------


def run_demo(args: argparse.Namespace) -> int:
    """Fork a server, run the session against it, tear down."""
    server = subprocess.Popen(
        [sys.executable, __file__, "serve", "--host", args.host,
         "--port", str(args.port), "--names", str(args.names),
         "--seed", str(args.seed)],
        stdout=subprocess.PIPE, text=True,
        env={**os.environ,
             "PYTHONPATH": str(Path(__file__).resolve().parent.parent
                               / "src")})
    try:
        hello = server.stdout.readline().split()
        if not hello or hello[0] != "LISTENING":
            raise SessionError(f"server never came up: {hello}")
        args.host, args.port = hello[1], int(hello[2])
        print(f"server pid {server.pid} on {args.host}:{args.port}")
        results = asyncio.run(run_session(args))
        print(json.dumps(results, indent=2, sort_keys=True))
        print("transport demo: PASS")
        return 0
    except SessionError as exc:
        print(f"transport demo: FAIL — {exc}", file=sys.stderr)
        return 1
    finally:
        server.terminate()
        try:
            server.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover
            server.kill()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0,
                       help="0 picks a free port (printed on stdout)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--names", type=int, default=50,
                       help="synthetic leaves under /svc")

    serve = sub.add_parser("serve", help="host a namespace on a socket")
    common(serve)
    serve.add_argument("--lease-term", type=float, default=30.0)

    session = sub.add_parser("session",
                             help="scripted client session + assertions")
    common(session)
    session.add_argument("--timeout", type=float, default=2.0)
    session.add_argument("--trace", default="",
                         help="write the client trace artifact here")

    demo = sub.add_parser("demo", help="serve + session, two processes")
    common(demo)
    demo.add_argument("--timeout", type=float, default=2.0)
    demo.add_argument("--trace", default="")

    args = parser.parse_args(argv)
    if args.command == "serve":
        asyncio.run(run_server(args))
        return 0
    if args.command == "session":
        results = asyncio.run(run_session(args))
        print(json.dumps(results, indent=2, sort_keys=True))
        return 0 if results["ok"] else 1
    return run_demo(args)


if __name__ == "__main__":
    sys.exit(main())
