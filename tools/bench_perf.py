#!/usr/bin/env python
"""Run the perf harness and maintain the ``BENCH_<pr>.json`` trajectory.

Usage::

    # Full run, writing the committed trajectory file (keeps whatever
    # baseline the file already carries):
    PYTHONPATH=src python tools/bench_perf.py --out BENCH_6.json

    # Record the current tree as the *baseline* (run before an
    # optimization lands, then pass the file to --baseline):
    PYTHONPATH=src python tools/bench_perf.py --out /tmp/pre.json \
        --label pre-optimization

    # Full run embedding an explicit baseline:
    PYTHONPATH=src python tools/bench_perf.py --out BENCH_6.json \
        --baseline /tmp/pre.json

    # CI smoke: cheap subset, compared against the committed file,
    # nonzero exit on >25%% normalised regression:
    PYTHONPATH=src python tools/bench_perf.py --smoke \
        --against BENCH_6.json --out artifacts/BENCH_6.smoke.json

The JSON schema (``repro-perf/1``)::

    {
      "schema": "repro-perf/1",
      "pr": 6,
      "label": "...",
      "python": "3.11.7",
      "scale": 1.0,
      "calibration_ops_per_s": 31400000.0,
      "benches": {
        "<scenario>": {"wall_s": ..., "events_per_s": ...,
                        "messages_per_s": ..., "peak_heap_depth": ...},
        ...
      },
      "baseline": { ... same shape, pre-optimization ... },
      "speedup_vs_baseline": {"<scenario>": 3.4, ...}
    }

Regression checks normalise ``events_per_s`` by each file's
``calibration_ops_per_s`` (a fixed pure-python loop timed on the same
machine), so a slower CI runner does not read as a kernel regression.
Wall-only scenarios (the A7/A8/A9 experiments) are compared on
normalised wall time.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from perf_harness import (SCENARIOS, SMOKE_SCENARIOS, calibrate,  # noqa: E402
                          run_suite)


def _normalised_rates(doc: dict) -> dict[str, float]:
    """scenario -> machine-normalised throughput figure (higher is
    better).  Rate scenarios use events/s; wall-only scenarios use
    1/wall_s.  Everything is divided by the doc's calibration."""
    cal = doc.get("calibration_ops_per_s") or 1.0
    rates: dict[str, float] = {}
    for name, record in doc.get("benches", {}).items():
        rate = record.get("events_per_s")
        if rate is None:
            wall = record.get("wall_s")
            if not wall:
                continue
            rate = 1.0 / wall
        rates[name] = rate / cal
    return rates


def check_regression(current: dict, committed: dict,
                     max_regression: float) -> list[str]:
    """Names of scenarios whose normalised rate dropped more than
    *max_regression* (fraction) below the committed trajectory."""
    current_rates = _normalised_rates(current)
    committed_rates = _normalised_rates(committed)
    failures = []
    for name, committed_rate in committed_rates.items():
        rate = current_rates.get(name)
        if rate is None:
            continue  # scenario not in this (smoke) run
        if rate < committed_rate * (1.0 - max_regression):
            failures.append(
                f"{name}: normalised rate {rate:.3g} is "
                f"{(1 - rate / committed_rate) * 100:.1f}% below the "
                f"committed {committed_rate:.3g} "
                f"(gate {max_regression * 100:.0f}%)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Kernel perf harness / BENCH_*.json trajectory")
    parser.add_argument("--out", help="write the result JSON here")
    parser.add_argument("--baseline",
                        help="JSON file recorded pre-optimization; "
                             "embedded as the 'baseline' block")
    parser.add_argument("--against",
                        help="committed BENCH_*.json to gate regressions "
                             "against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop in normalised "
                             "throughput (default 0.25)")
    parser.add_argument("--smoke", action="store_true",
                        help="cheap subset at reduced scale (CI)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default 1.0, "
                             "smoke default 0.25)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats, best-of (default 3, "
                             "smoke default 5 — smoke scenarios are "
                             "tiny, so best-of-few is pure noise on a "
                             "shared runner)")
    parser.add_argument("--scenario", action="append", default=None,
                        help="run only this scenario (repeatable)")
    parser.add_argument("--pr", type=int, default=10,
                        help="PR number stamped into the file")
    parser.add_argument("--label", default="current",
                        help="free-form label for this measurement")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in SCENARIOS:
            print(name)
        return 0

    names = args.scenario or (list(SMOKE_SCENARIOS) if args.smoke
                              else list(SCENARIOS))
    scale = args.scale if args.scale is not None else (
        0.25 if args.smoke else 1.0)
    repeats = args.repeats if args.repeats is not None else (
        5 if args.smoke else 3)

    print("calibrating machine speed ...", flush=True)
    calibration = calibrate()
    print(f"calibration: {calibration:,.0f} ops/s")
    print(f"running {len(names)} scenario(s) at scale {scale:g}, "
          f"best of {repeats}:")
    benches = run_suite(names, scale=scale, repeats=repeats, verbose=True)

    doc = {
        "schema": "repro-perf/1",
        "pr": args.pr,
        "label": args.label,
        "python": platform.python_version(),
        "scale": scale,
        "calibration_ops_per_s": round(calibration, 1),
        "benches": benches,
    }

    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        baseline.pop("baseline", None)
        baseline.pop("speedup_vs_baseline", None)
        doc["baseline"] = baseline
    elif args.out and os.path.exists(args.out):
        with open(args.out) as handle:
            previous = json.load(handle)
        if "baseline" in previous:
            doc["baseline"] = previous["baseline"]

    if "baseline" in doc:
        base_rates = _normalised_rates(doc["baseline"])
        rates = _normalised_rates(doc)
        speedups = {name: round(rates[name] / base_rates[name], 3)
                    for name in rates if base_rates.get(name)}
        doc["speedup_vs_baseline"] = speedups
        for name, speedup in speedups.items():
            print(f"  speedup vs baseline  {name:34} {speedup:6.2f}x")

    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.out}")

    if args.against:
        with open(args.against) as handle:
            committed = json.load(handle)
        failures = check_regression(doc, committed, args.max_regression)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("no regression beyond "
              f"{args.max_regression * 100:.0f}% vs {args.against}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
