#!/usr/bin/env python
"""Replay an instrumented scenario and inspect what it did.

Usage::

    python tools/inspect_run.py                         # hop trees
    python tools/inspect_run.py --scenario hot --policy invalidate
    python tools/inspect_run.py --format chrome-trace --out trace.json
    python tools/inspect_run.py --format prometheus
    python tools/inspect_run.py --format summary --out summary.json
    python tools/inspect_run.py --scenario failure --style recursive

Each scenario builds a small multi-server deployment, runs a batch of
resolutions through :class:`~repro.nameservice.resolver.
DistributedResolver` with `repro.obs` instrumentation enabled, and
emits one of:

* ``tree`` (default) — per-resolution hop trees plus the top-N
  hottest servers/directories and a metrics headline;
* ``chrome-trace`` — Chrome ``trace_event`` JSON for Perfetto /
  ``chrome://tracing``;
* ``prometheus`` — the metrics registry as Prometheus text;
* ``summary`` — the full JSON run summary (spans + metrics + kernel
  trace tail).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.model.resolution import resolve as local_resolve
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.cache import CachePolicy
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import (
    DistributedResolver,
    ResolutionCost,
    ResolutionStyle,
)
from repro.nameservice.retry import RetryPolicy
from repro.obs import (
    Instrumentation,
    format_hop_tree,
    hottest_directories,
    hottest_servers,
    run_summary,
    to_chrome_trace,
    to_prometheus_text,
)
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator

SCENARIOS = {}


def scenario(name):
    def install(fn):
        SCENARIOS[name] = fn
        return fn
    return install


def _deployment(seed: int, policy: CachePolicy, obs: Instrumentation,
                depth: int = 3, fanout: int = 4):
    """One client machine + one server machine per directory level."""
    simulator = Simulator(seed=seed, obs=obs)
    network = simulator.network("lan")
    client_machine = simulator.machine(network, "client-m")
    levels = [f"lvl{i}" for i in range(depth)]
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("/".join(levels))
    names = []
    for index in range(fanout):
        tree.mkfile("/".join(levels) + f"/f{index}")
        names.append("/" + "/".join(levels) + f"/f{index}")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    machines = []
    for level in range(depth):
        machine = simulator.machine(network, f"server{level}")
        machines.append(machine)
        placement.place(tree.directory("/".join(levels[:level + 1])),
                        machine)
    client = simulator.spawn(client_machine, "client")
    context = ProcessContext(tree.root)
    resolver = DistributedResolver(simulator, placement,
                                   cache_policy=policy, cache_ttl=50.0)
    return {"simulator": simulator, "resolver": resolver,
            "client": client, "context": context, "names": names,
            "tree": tree, "levels": levels, "machines": machines,
            "network": network}


@scenario("basic")
def run_basic(seed: int, style: ResolutionStyle, policy: CachePolicy,
              obs: Instrumentation) -> dict:
    """One batched resolution over a 3-server placement."""
    world = _deployment(seed, policy, obs)
    results = world["resolver"].resolve_many(
        world["client"], world["context"], world["names"], style)
    cost = ResolutionCost.merge(c for _entity, c in results)
    ok = all(entity is local_resolve(world["context"], name_)
             for name_, (entity, _c) in zip(world["names"], results))
    return {"simulator": world["simulator"],
            "notes": {"scenario": "basic", "names": len(world["names"]),
                      "messages": cost.messages, "coherent": ok}}


@scenario("hot")
def run_hot(seed: int, style: ResolutionStyle, policy: CachePolicy,
            obs: Instrumentation) -> dict:
    """Three rounds over a hot directory, with a rebind in between."""
    world = _deployment(seed, policy, obs, depth=3, fanout=6)
    resolver = world["resolver"]
    costs = []
    for _round in range(2):
        costs.extend(c for _e, c in resolver.resolve_many(
            world["client"], world["context"], world["names"], style))
    # Rebind one leaf so INVALIDATE traces show the fan-out.
    hot_dir = world["tree"].directory("/".join(world["levels"]))
    target = world["context"](world["levels"][0])
    resolver.rebind(hot_dir, "f0", target)
    costs.extend(c for _e, c in resolver.resolve_many(
        world["client"], world["context"], world["names"], style))
    cost = ResolutionCost.merge(costs)
    return {"simulator": world["simulator"],
            "notes": {"scenario": "hot", "rounds": 3,
                      "messages": cost.messages,
                      "cached_steps": cost.cached_steps,
                      "cache": resolver.cache_stats()}}


@scenario("failure")
def run_failure(seed: int, style: ResolutionStyle, policy: CachePolicy,
                obs: Instrumentation) -> dict:
    """A walk that crosses a crashed server: failed spans on display."""
    world = _deployment(seed, policy, obs)
    injector = FailureInjector(world["simulator"])
    resolver = world["resolver"]
    resolver.resolve(world["client"], world["context"],
                     world["names"][0], style)
    injector.crash_machine(world["machines"][-1])
    _entity, cost = resolver.resolve(world["client"], world["context"],
                                     world["names"][1], style)
    return {"simulator": world["simulator"],
            "notes": {"scenario": "failure",
                      "crashed": world["machines"][-1].label,
                      "messages": cost.messages}}


@scenario("chaos")
def run_chaos(seed: int, style: ResolutionStyle, policy: CachePolicy,
              obs: Instrumentation) -> dict:
    """A scripted fault schedule against a replicated directory: crash
    + restart with anti-entropy, a flaky-link window, and a partition
    answered by weak-coherence stale reads.  The trace shows retry /
    failover / circuit / stale spans; the metrics show their counters.
    """
    simulator = Simulator(seed=seed, obs=obs)
    lan = simulator.network("lan")
    srv = simulator.network("srv")
    client_machine = simulator.machine(lan, "client-m")
    primary = simulator.machine(srv, "m1")
    secondary = simulator.machine(srv, "m2")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("svc")
    names = []
    for index in range(4):
        tree.mkfile(f"svc/f{index}")
        names.append(f"/svc/f{index}")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    placement.place_replicated(tree.directory("svc"), primary, secondary)
    client = simulator.spawn(client_machine, "client")
    context = ProcessContext(tree.root)
    resolver = DistributedResolver(
        simulator, placement, cache_policy=policy, cache_ttl=50.0,
        retry_policy=RetryPolicy(max_attempts=3, base_backoff=0.3,
                                 max_backoff=2.0),
        serve_stale=True, breaker_threshold=3, breaker_cooldown=10.0)
    injector = FailureInjector(simulator)
    injector.on_restart(resolver.handle_restart)
    injector.schedule_timeline([
        (10.0, "crash", primary),
        (30.0, "restart", primary),
        (40.0, "flaky_link", lan, srv, 0.3, 1.5),
        (55.0, "steady_link", lan, srv),
        (60.0, "partition", lan, srv),
        (80.0, "heal", lan, srv),
    ])
    outcomes = {"ok": 0, "weak": 0, "failed": 0}
    costs = []
    for start in range(2, 100, 7):
        simulator.run(until=float(start))
        for name_ in names[:2]:
            entity, cost = resolver.resolve(client, context, name_,
                                            style)
            costs.append(cost)
            if entity.is_defined() and not cost.failed:
                outcomes["weak" if cost.weak else "ok"] += 1
            else:
                outcomes["failed"] += 1
    simulator.run()
    cost = ResolutionCost.merge(costs)
    return {"simulator": simulator,
            "notes": {"scenario": "chaos", "outcomes": outcomes,
                      "retries": cost.retries,
                      "failovers": cost.failovers,
                      "stale_steps": cost.stale_steps,
                      "messages": cost.messages}}


@scenario("leases")
def run_leases(seed: int, style: ResolutionStyle, policy: CachePolicy,
               obs: Instrumentation) -> dict:
    """The lease coherence protocol end to end (always LEASE policy,
    whatever ``--policy`` says): a binding is rebound while the only
    caching client is partitioned away — the break callback is lost
    and the lease is broken server-side — then the partition outlives
    the lease term, so the client serves grace-mode answers from its
    expired leases until the heal lets it revalidate.  The trace shows
    grant / renew / callback / break / expire / grace spans; the
    metrics show the ``lease_*`` counters.
    """
    simulator = Simulator(seed=seed, obs=obs)
    lan = simulator.network("lan")
    srv = simulator.network("srv")
    client_machine = simulator.machine(lan, "client-m")
    primary = simulator.machine(srv, "m1")
    secondary = simulator.machine(srv, "m2")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("svc")
    old_dir = tree.mkdir("svc/app")
    tree.mkfile("svc/app/cfg")
    new_dir = tree.mkdir("spare")
    tree.mkfile("spare/cfg")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    svc = tree.directory("svc")
    for directory in (svc, old_dir, new_dir):
        placement.place_replicated(directory, primary, secondary)
    client = simulator.spawn(client_machine, "client")
    context = ProcessContext(tree.root)
    resolver = DistributedResolver(
        simulator, placement, cache_policy=CachePolicy.LEASE,
        cache_ttl=10_000.0,
        retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.5,
                                 max_backoff=1.0),
        breaker_threshold=5, breaker_cooldown=5.0, lease_term=12.0)
    injector = FailureInjector(simulator)
    injector.on_restart(resolver.handle_restart)
    injector.schedule_timeline([
        (10.0, "partition", lan, srv),
        (40.0, "heal", lan, srv),
    ])
    outcomes = {"ok": 0, "weak": 0, "failed": 0}
    costs = []

    def probe(start):
        simulator.run(until=float(start))
        entity, cost = resolver.resolve(client, context,
                                        "/svc/app/cfg", style)
        costs.append(cost)
        if entity.is_defined() and not cost.failed:
            outcomes["weak" if cost.weak else "ok"] += 1
        else:
            outcomes["failed"] += 1

    for start in (2, 6):
        probe(start)
    simulator.run(until=11.0)
    resolver.rebind(svc, "app", new_dir)   # callback lost → break
    for start in range(12, 62, 6):
        probe(start)
    simulator.run()
    cost = ResolutionCost.merge(costs)
    return {"simulator": simulator,
            "notes": {"scenario": "leases", "outcomes": outcomes,
                      "messages": cost.messages,
                      "losses": resolver.invalidation_losses,
                      "lease_stats": resolver.lease_stats()}}


@scenario("audit")
def run_audit(seed: int, style: ResolutionStyle, policy: CachePolicy,
              obs: Instrumentation) -> dict:
    """The coherence auditor catching a lost INVALIDATE (always
    INVALIDATE policy, whatever ``--policy`` says): a binding is
    rebound while the only caching client is partitioned away, so the
    invalidation callback is provably lost and the client keeps
    serving the stale binding as *claimed-coherent* — past the
    contract's delivery slack, which the auditor flags as violations,
    burns the declared staleness SLO, and hands each event window to
    the flight recorder.  ``--flight-out`` writes the recorder's
    replayable JSON artifact.
    """
    from repro.obs.audit import (CoherenceAuditor, CoherenceContract,
                                 FlightRecorder)
    from repro.obs.slo import SLObjective, SLOTracker

    recorder = FlightRecorder(window=25.0)
    auditor = CoherenceAuditor(
        contract=CoherenceContract(slack=6.0),
        slo=SLOTracker([
            SLObjective("fresh-reads", max_staleness=6.0),
            SLObjective("violation-free", violation_free=True),
        ], metrics=obs.metrics),
        recorder=recorder)
    obs.auditor = auditor
    auditor.bind_obs(obs)
    simulator = Simulator(seed=seed, obs=obs)
    recorder.wire(trace_log=simulator.trace, tracer=obs.tracer)
    lan = simulator.network("lan")
    srv = simulator.network("srv")
    client_machine = simulator.machine(lan, "client-m")
    primary = simulator.machine(srv, "m1")
    secondary = simulator.machine(srv, "m2")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("svc")
    old_dir = tree.mkdir("svc/app")
    tree.mkfile("svc/app/cfg")
    new_dir = tree.mkdir("spare")
    tree.mkfile("spare/cfg")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    svc = tree.directory("svc")
    for directory in (svc, old_dir, new_dir):
        placement.place_replicated(directory, primary, secondary)
    client = simulator.spawn(client_machine, "client")
    context = ProcessContext(tree.root)
    resolver = DistributedResolver(
        simulator, placement, cache_policy=CachePolicy.INVALIDATE,
        cache_ttl=10_000.0,
        retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.5,
                                 max_backoff=1.0),
        serve_stale=True, breaker_threshold=5, breaker_cooldown=5.0)
    injector = FailureInjector(simulator)
    injector.on_restart(resolver.handle_restart)
    injector.schedule_timeline([
        (10.0, "partition", lan, srv),
        (40.0, "heal", lan, srv),
    ])
    outcomes = {"ok": 0, "weak": 0, "failed": 0}
    costs = []

    def probe(start):
        simulator.run(until=float(start))
        entity, cost = resolver.resolve(client, context,
                                        "/svc/app/cfg", style)
        costs.append(cost)
        if entity.is_defined() and not cost.failed:
            outcomes["weak" if cost.weak else "ok"] += 1
        else:
            outcomes["failed"] += 1

    for start in (2, 6):
        probe(start)
    simulator.run(until=11.0)
    resolver.rebind(svc, "app", new_dir)   # invalidation lost
    for start in range(12, 62, 6):
        probe(start)
    simulator.run()
    cost = ResolutionCost.merge(costs)
    return {"simulator": simulator,
            "recorder": recorder,
            "notes": {"scenario": "audit", "outcomes": outcomes,
                      "messages": cost.messages,
                      "losses": resolver.invalidation_losses,
                      "audit": auditor.summary(),
                      "violations": auditor.violation_count,
                      "flight_dumps": recorder.captured}}


@scenario("shard")
def run_shard(seed: int, style: ResolutionStyle, policy: CachePolicy,
              obs: Instrumentation) -> dict:
    """Live hot-shard splitting on display: a Zipf run over a sharded
    directory triggers load-driven splits, each migrating bindings as
    simulated messages.  The trace shows ``shard`` spans (source,
    target, split point, bindings moved, committed/aborted — the last
    split is aborted against a crashed target); the metrics show the
    ``resolver_shard_splits_total`` / ``resolver_migration_messages_
    total`` counters.
    """
    import random as _random

    from repro.nameservice.sharding import ShardManager
    from repro.workloads.zipf import ZipfSampler, build_zipf_namespace

    simulator = Simulator(seed=seed, obs=obs)
    network = simulator.network("lan")
    pool = [simulator.machine(network, f"shard{i}") for i in range(4)]
    client_machine = simulator.machine(network, "client-m")
    tree = NamingTree("root", sigma=simulator.sigma)
    namespace = build_zipf_namespace(tree, "hot", count=3000,
                                     distinct=64)
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    shard_map = placement.place_sharded(namespace.directory, pool[0])
    client = simulator.spawn(client_machine, "client")
    resolver = DistributedResolver(simulator, placement,
                                   cache_policy=policy, cache_ttl=50.0)
    resolver.shard_manager = ShardManager(
        resolver, pool=pool, split_fraction=0.3,
        check_every=100, min_window=50)
    context = ProcessContext(tree.root)
    sampler = ZipfSampler(3000, rng=_random.Random(seed))
    costs = []
    for rank in sampler.sample_many(800):
        _entity, cost = resolver.resolve(
            client, context, "/hot/" + namespace.names[rank], style)
        costs.append(cost)
    # One deliberately-aborted split: crash the target first so the
    # commit-last discipline shows up as a failed shard span.
    victim = pool[3]
    FailureInjector(simulator).crash_machine(victim)
    widest = max(shard_map.shards, key=lambda s: (s.span, -s.lo))
    resolver.split_shard(namespace.directory, widest, victim)
    cost = ResolutionCost.merge(costs)
    return {"simulator": simulator,
            "notes": {"scenario": "shard",
                      "messages": cost.messages,
                      "splits": resolver.shard_splits,
                      "split_aborts": resolver.shard_split_aborts,
                      "migration_messages": resolver.migration_messages,
                      "shards": len(shard_map),
                      "machines": len(shard_map.machines()),
                      "partition_ok": shard_map.is_partition()}}


@scenario("shard-faults")
def run_shard_faults(seed: int, style: ResolutionStyle,
                     policy: CachePolicy, obs: Instrumentation) -> dict:
    """Replicated shards riding out a shard-server crash: a Zipf run
    over a 4-shard directory with two-deep replica sets crosses a
    scripted crash/restart of one shard machine.  Lookups into the
    dead range fail over to the surviving replica (``failover``
    trace events, ``resolver_failovers_total``), a rebind during the
    outage marks the dead copy stale, and the restart hook's
    anti-entropy resyncs it — while the coherence auditor scores
    every read (``audit_violations_total`` stays absent/zero) and the
    flight recorder captures a replayable window around the outage
    for ``--flight-out``.
    """
    import random as _random

    from repro.obs.audit import (CoherenceAuditor, CoherenceContract,
                                 FlightRecorder)
    from repro.obs.slo import SLObjective, SLOTracker
    from repro.workloads.zipf import ZipfSampler, build_zipf_namespace

    recorder = FlightRecorder(window=50.0)
    auditor = CoherenceAuditor(
        contract=CoherenceContract(slack=6.0),
        slo=SLOTracker([
            SLObjective("violation-free", violation_free=True),
        ], metrics=obs.metrics),
        recorder=recorder)
    obs.auditor = auditor
    auditor.bind_obs(obs)
    simulator = Simulator(seed=seed, obs=obs)
    recorder.wire(trace_log=simulator.trace, tracer=obs.tracer)
    network = simulator.network("lan")
    pool = [simulator.machine(network, f"shard{i}") for i in range(4)]
    client_machine = simulator.machine(network, "client-m")
    tree = NamingTree("root", sigma=simulator.sigma)
    namespace = build_zipf_namespace(tree, "hot", count=3000,
                                     distinct=64)
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    shard_map = placement.place_sharded(namespace.directory, *pool,
                                        replicas=2)
    client = simulator.spawn(client_machine, "client")
    resolver = DistributedResolver(
        simulator, placement,
        retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.1,
                                 jitter=0.0))
    injector = FailureInjector(simulator)
    injector.on_restart(resolver.handle_restart)
    victim = pool[0]
    injector.schedule_timeline([
        (300.0, "crash", victim),
        (900.0, "restart", victim),
    ])
    context = ProcessContext(tree.root)
    sampler = ZipfSampler(3000, rng=_random.Random(seed))
    outcomes = {"ok": 0, "failed": 0}
    failovers = 0
    rebound = False
    costs = []
    for rank in sampler.sample_many(800):
        simulator.run(until=simulator.clock.now)  # due faults land
        if not victim.alive and not rebound:
            # The outage write: fans out to the owning shard's
            # replicas, marking the dead copy stale for anti-entropy.
            resolver.rebind(namespace.directory, "spare0",
                            namespace.shared_leaf)
            rebound = True
        _entity, cost = resolver.resolve(
            client, context, "/hot/" + namespace.names[rank], style)
        costs.append(cost)
        failovers += cost.failovers
        outcomes["failed" if cost.failed else "ok"] += 1
    simulator.run()
    recorder.capture(kind="final", time=simulator.clock.now,
                     detail={"scenario": "shard-faults",
                             "failovers": failovers})
    cost = ResolutionCost.merge(costs)
    return {"simulator": simulator,
            "recorder": recorder,
            "notes": {"scenario": "shard-faults",
                      "outcomes": outcomes,
                      "messages": cost.messages,
                      "failovers": failovers,
                      "anti_entropy": resolver.anti_entropy_messages,
                      "stale_remaining": placement.stale_count(),
                      "audit": auditor.summary(),
                      "violations": auditor.violation_count,
                      "partition_ok": shard_map.is_partition(),
                      "flight_dumps": recorder.captured}}


def render_tree(obs: Instrumentation, notes: dict, top: int) -> str:
    lines = [format_hop_tree(obs.tracer.spans), ""]
    lines.append(f"hottest servers (top {top}):")
    for label, count in hottest_servers(obs.tracer.spans, top):
        lines.append(f"  {count:6d} steps  {label}")
    lines.append(f"hottest directories (top {top}):")
    for label, count in hottest_directories(obs.tracer.spans, top):
        lines.append(f"  {count:6d} reads  {label}")
    snapshot = obs.metrics.snapshot()
    lines.append("metrics headline:")
    for key in sorted(snapshot["counters"]):
        lines.append(f"  {key} = {snapshot['counters'][key]:g}")
    lines.append(f"scenario notes: {json.dumps(notes, default=repr)}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/inspect_run.py",
        description="Replay an instrumented scenario and inspect it.")
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        default="basic")
    parser.add_argument("--style", choices=[s.value for s in
                                            ResolutionStyle],
                        default="iterative")
    parser.add_argument("--policy", choices=[p.value for p in CachePolicy],
                        default="ttl")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--format", dest="fmt", default="tree",
                        choices=["tree", "chrome-trace", "prometheus",
                                 "summary"])
    parser.add_argument("--top", type=int, default=5,
                        help="rows in the hot-spot rankings")
    parser.add_argument("--max-spans", type=int, default=None,
                        help="ring-buffer bound on stored spans")
    parser.add_argument("--out", default=None,
                        help="write to this file instead of stdout")
    parser.add_argument("--flight-out", default=None,
                        help="write the flight recorder's replayable "
                             "JSON artifact here (scenarios that carry "
                             "one, e.g. `audit`)")
    args = parser.parse_args(argv)

    obs = Instrumentation(max_spans=args.max_spans)
    outcome = SCENARIOS[args.scenario](
        args.seed, ResolutionStyle(args.style), CachePolicy(args.policy),
        obs)
    simulator = outcome["simulator"]
    notes = outcome["notes"]

    if args.flight_out:
        recorder = outcome.get("recorder")
        if recorder is None:
            print(f"scenario {args.scenario!r} has no flight recorder",
                  file=sys.stderr)
            return 2
        recorder.dump_json(args.flight_out)
        print(f"wrote flight recorder ({recorder.captured} dumps) "
              f"to {args.flight_out}", file=sys.stderr)

    if args.fmt == "tree":
        text = render_tree(obs, notes, args.top)
    elif args.fmt == "chrome-trace":
        text = json.dumps(
            to_chrome_trace(obs.tracer.spans,
                            label=f"repro · {args.scenario}"),
            indent=2)
    elif args.fmt == "prometheus":
        text = to_prometheus_text(obs.metrics)
    else:
        text = json.dumps(
            run_summary(obs.tracer.spans, obs.metrics,
                        trace_log=simulator.trace.tail(200),
                        clock=simulator.clock.now, notes=notes),
            indent=2)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.fmt} to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
