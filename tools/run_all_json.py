#!/usr/bin/env python
"""Run the whole experiment suite and emit one JSON document.

Usage:  python tools/run_all_json.py [--seed N] > results.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench import run_all


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    results = run_all(seed=args.seed)
    document = {
        "paper": "Radia & Pachl, Coherence in Naming in Distributed "
                 "Computing Environments, ICDCS 1993",
        "seed": args.seed,
        "all_reproduced": all(r.all_checks_pass()
                              for r in results.values()),
        "experiments": {exp_id: result.to_dict()
                        for exp_id, result in results.items()},
    }
    json.dump(document, sys.stdout, indent=2, ensure_ascii=False)
    sys.stdout.write("\n")
    return 0 if document["all_reproduced"] else 1


if __name__ == "__main__":
    sys.exit(main())
