"""Tests for Algol-scope resolution of embedded names (Figure 6)."""

from __future__ import annotations

import pytest

from repro.embedded.objects import StructuredContent, structured_object
from repro.embedded.scoping import (
    UpwardScopeContext,
    parent_directory_of,
    scope_context_for,
    scope_rule,
)
from repro.errors import SchemeError
from repro.model.entities import Activity, ObjectEntity
from repro.model.names import PARENT
from repro.model.resolution import resolve
from repro.model.state import GlobalState
from repro.namespaces.tree import NamingTree


@pytest.fixture
def figure6():
    """The Figure-6 shape:

    root ── proj(n-prime has binding a) ── a ── p(n'')
                                        └─ src ── n (embeds a/p)
    """
    sigma = GlobalState()
    tree = NamingTree("root", sigma=sigma, parent_links=True)
    target = tree.mkfile("proj/a/p")
    node = tree.add("proj/src/n", structured_object(
        "n", StructuredContent().include("a/p"), sigma=sigma))
    return sigma, tree, node, target


class TestUpwardScopeContext:
    def test_finds_binding_at_closest_ancestor(self, figure6):
        sigma, tree, node, target = figure6
        context = UpwardScopeContext(tree.directory("proj/src"))
        assert resolve(context, "a/p") is target

    def test_closest_ancestor_wins(self, figure6):
        sigma, tree, node, target = figure6
        # A nearer `a` shadows the farther one.
        nearer = tree.mkfile("proj/src/a/p2")
        context = UpwardScopeContext(tree.directory("proj/src"))
        assert resolve(context, "a/p2") is nearer
        assert not resolve(context, "a/p").is_defined()

    def test_unbound_name_is_undefined(self, figure6):
        sigma, tree, *_ = figure6
        context = UpwardScopeContext(tree.directory("proj/src"))
        assert not resolve(context, "zzz").is_defined()

    def test_search_stops_at_self_parented_root(self, figure6):
        sigma, tree, *_ = figure6
        context = UpwardScopeContext(tree.directory("proj/src"))
        assert not context("unbound-anywhere").is_defined()

    def test_dotdot_resolves_at_start_only(self, figure6):
        sigma, tree, *_ = figure6
        start = tree.directory("proj/src")
        context = UpwardScopeContext(start)
        assert context(PARENT) is tree.directory("proj")

    def test_requires_directory(self):
        with pytest.raises(SchemeError):
            UpwardScopeContext(ObjectEntity("file"))

    def test_equality_by_start(self, figure6):
        sigma, tree, *_ = figure6
        start = tree.directory("proj/src")
        assert UpwardScopeContext(start) == UpwardScopeContext(start)
        assert UpwardScopeContext(start) != UpwardScopeContext(tree.root)

    def test_detached_chain_terminates(self):
        # A directory with no `..` at all: search just stops.
        from repro.model.context import context_object

        orphan = context_object("orphan")
        context = UpwardScopeContext(orphan)
        assert not context("x").is_defined()


class TestParentDirectoryOf:
    def test_leaf_parent_found_via_sigma(self, figure6):
        sigma, tree, node, target = figure6
        assert parent_directory_of(target, sigma) is \
            tree.directory("proj/a")

    def test_directory_parent_from_dotdot(self, figure6):
        sigma, tree, *_ = figure6
        assert parent_directory_of(tree.directory("proj/src"), sigma) is \
            tree.directory("proj")

    def test_unbound_object_has_no_parent(self, figure6):
        sigma, *_ = figure6
        stray = ObjectEntity("stray")
        sigma.add(stray)
        assert parent_directory_of(stray, sigma) is None


class TestScopeContextAndRule:
    def test_context_for_leaf_starts_at_container(self, figure6):
        sigma, tree, node, target = figure6
        context = scope_context_for(node, sigma)
        assert resolve(context, "a/p") is target

    def test_context_for_unbound_leaf_rejected(self, figure6):
        sigma, *_ = figure6
        stray = ObjectEntity("stray")
        sigma.add(stray)
        with pytest.raises(SchemeError):
            scope_context_for(stray, sigma)

    def test_context_for_directory_starts_at_itself(self, figure6):
        sigma, tree, *_ = figure6
        context = scope_context_for(tree.directory("proj"), sigma)
        assert resolve(context, "a/p").is_defined()

    def test_rule_resolves_embedded_names(self, figure6):
        sigma, tree, node, target = figure6
        from repro.closure.meta import NameSource, ResolutionEvent
        from repro.closure.rules import rule_resolve

        reader = Activity("reader")
        sigma.add(reader)
        event = ResolutionEvent(name="a/p", source=NameSource.OBJECT,
                                resolver=reader, source_object=node)
        assert rule_resolve(scope_rule(sigma), event) is target

    def test_meaning_independent_of_reader(self, figure6):
        sigma, tree, node, target = figure6
        rule = scope_rule(sigma)
        from repro.embedded.documents import resolve_embedded

        for label in ("r1", "r2", "r3"):
            reader = Activity(label)
            sigma.add(reader)
            assert resolve_embedded(node, reader, rule) == [("a/p", target)]


class TestScopeContextCopy:
    def test_copy_keeps_upward_search(self, figure6):
        sigma, tree, node, target = figure6
        context = UpwardScopeContext(tree.directory("proj/src"))
        clone = context.copy()
        assert clone == context
        assert resolve(clone, "a/p") is target
