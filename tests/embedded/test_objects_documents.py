"""Tests for structured objects and document assembly (§6 Ex. 2)."""

from __future__ import annotations

import pytest

from repro.closure.meta import ContextRegistry
from repro.closure.rules import RObject
from repro.embedded.documents import (
    assembly_equal,
    flatten,
    resolve_embedded,
)
from repro.embedded.objects import (
    EmbeddedName,
    StructuredContent,
    embedded_names,
    structured_object,
)
from repro.errors import SchemeError
from repro.model.context import Context
from repro.model.entities import Activity, ObjectEntity
from repro.model.names import CompoundName
from repro.model.state import GlobalState


class TestStructuredContent:
    def test_builder_chaining(self):
        content = StructuredContent().text("a ").include("x/y").text(" b")
        assert len(content.segments) == 3
        assert content.embedded() == [CompoundName.parse("x/y")]

    def test_equality(self):
        first = StructuredContent().text("a").include("x")
        second = StructuredContent().text("a").include("x")
        assert first == second
        assert first != StructuredContent().text("a").include("y")

    def test_embedded_name_str(self):
        assert str(EmbeddedName(CompoundName.parse("a/b"))) == "⟨a/b⟩"

    def test_structured_object_helper(self):
        sigma = GlobalState()
        obj = structured_object("doc", StructuredContent().text("x"),
                                sigma=sigma)
        assert obj in sigma
        assert isinstance(obj.state, StructuredContent)

    def test_embedded_names_of_plain_object(self):
        plain = ObjectEntity("f")
        plain.state = "just text"
        assert embedded_names(plain) == []


@pytest.fixture
def publishing():
    """An author's context binding 'chapter' to a chapter file; a
    document including it; an R(object) registry for the document."""
    chapter = ObjectEntity("chapter")
    chapter.state = "CHAPTER-TEXT"
    author_context = Context({"chapter": chapter})
    document = structured_object(
        "book", StructuredContent().text("<").include("chapter").text(">"))
    registry = ContextRegistry()
    registry.register(document, author_context)
    reader = Activity("reader")
    return document, chapter, registry, reader


class TestResolveEmbedded:
    def test_resolution_under_robject(self, publishing):
        document, chapter, registry, reader = publishing
        resolved = resolve_embedded(document, reader, RObject(registry))
        assert resolved == [("chapter", chapter)]

    def test_unresolved_shows_undefined(self, publishing):
        document, _, registry, reader = publishing
        document.state.include("missing")
        resolved = resolve_embedded(document, reader, RObject(registry))
        assert not resolved[1][1].is_defined()


class TestFlatten:
    def test_assembles_text(self, publishing):
        document, _, registry, reader = publishing
        assert flatten(document, reader, RObject(registry)) == \
            "<CHAPTER-TEXT>"

    def test_unresolved_include_is_visible(self, publishing):
        document, _, registry, reader = publishing
        document.state.include("missing")
        text = flatten(document, reader, RObject(registry))
        assert "⟨missing:⊥⟩" in text

    def test_nested_includes(self, publishing):
        document, chapter, registry, reader = publishing
        # Make the chapter itself structured, including a section.
        section = ObjectEntity("section")
        section.state = "SECTION"
        chapter.state = StructuredContent().text("[").include(
            "section").text("]")
        registry.register(chapter, Context({"section": section}))
        assert flatten(document, reader, RObject(registry)) == \
            "<[SECTION]>"

    def test_include_of_activity_renders_label(self, publishing):
        document, _, registry, reader = publishing
        server = Activity("print-server")
        registry.context_of(document).bind("server", server)
        document.state.include("server")
        text = flatten(document, reader, RObject(registry))
        assert "print-server" in text

    def test_cycle_detection(self, publishing):
        document, chapter, registry, reader = publishing
        chapter.state = StructuredContent().include("book")
        registry.register(chapter, Context({"book": document}))
        with pytest.raises(SchemeError):
            flatten(document, reader, RObject(registry))

    def test_flatten_plain_object(self, publishing):
        _, chapter, registry, reader = publishing
        chapter.state = 42
        assert flatten(chapter, reader, RObject(registry)) == "42"
        chapter.state = None
        assert flatten(chapter, reader, RObject(registry)) == ""


class TestAssemblyEqual:
    def test_equal_for_all_readers_under_robject(self, publishing):
        document, _, registry, _ = publishing
        readers = [Activity(f"r{i}") for i in range(3)]
        assert assembly_equal(document, readers, RObject(registry))

    def test_reference_text(self, publishing):
        document, _, registry, reader = publishing
        assert assembly_equal(document, [reader], RObject(registry),
                              reference="<CHAPTER-TEXT>")
        assert not assembly_equal(document, [reader], RObject(registry),
                                  reference="something else")

    def test_empty_reader_list(self, publishing):
        document, _, registry, _ = publishing
        assert assembly_equal(document, [], RObject(registry))
