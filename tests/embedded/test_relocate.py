"""Tests for relocation/copy/multi-attach invariance (§6 Ex. 2)."""

from __future__ import annotations

import pytest

from repro.embedded.documents import flatten
from repro.embedded.objects import StructuredContent, structured_object
from repro.embedded.relocate import (
    copy_structured_subtree,
    move_subtree,
    multi_attach,
)
from repro.embedded.scoping import scope_rule
from repro.errors import SchemeError
from repro.model.entities import Activity
from repro.model.state import GlobalState
from repro.namespaces.tree import NamingTree


@pytest.fixture
def world():
    sigma = GlobalState()
    tree = NamingTree("root", sigma=sigma, parent_links=True)
    part = tree.mkfile("proj/a/p")
    part.state = "PART"
    doc = tree.add("proj/src/n", structured_object(
        "n", StructuredContent().include("a/p"), sigma=sigma))
    reader = Activity("reader")
    sigma.add(reader)
    rule = scope_rule(sigma)
    return sigma, tree, doc, part, reader, rule


class TestMove:
    def test_move_preserves_meaning(self, world):
        sigma, tree, doc, part, reader, rule = world
        move_subtree(tree, "proj", "archive/proj")
        assert flatten(doc, reader, rule) == "PART"
        assert tree.lookup("archive/proj/src/n") is doc
        assert not tree.exists("proj")

    def test_repeated_moves(self, world):
        sigma, tree, doc, part, reader, rule = world
        move_subtree(tree, "proj", "a1/proj")
        move_subtree(tree, "a1/proj", "b2/deep/proj")
        assert flatten(doc, reader, rule) == "PART"

    def test_move_of_file_rejected(self, world):
        sigma, tree, *_ = world
        tree.mkfile("loose")
        with pytest.raises(SchemeError):
            move_subtree(tree, "loose", "elsewhere/loose")


class TestCopy:
    def test_copy_clones_structured_leaves(self, world):
        sigma, tree, doc, part, reader, rule = world
        copy_structured_subtree(tree, "proj", "copies/proj")
        clone = tree.lookup("copies/proj/src/n")
        assert clone is not doc
        assert flatten(clone, reader, rule) == "PART"

    def test_copy_shares_unstructured_leaves(self, world):
        sigma, tree, doc, part, reader, rule = world
        copy_structured_subtree(tree, "proj", "copies/proj")
        assert tree.lookup("copies/proj/a/p") is part

    def test_copies_diverge_independently(self, world):
        sigma, tree, doc, part, reader, rule = world
        copy_structured_subtree(tree, "proj", "copies/proj")
        clone = tree.lookup("copies/proj/src/n")
        clone.state.text("!extra")
        assert flatten(doc, reader, rule) == "PART"
        assert flatten(clone, reader, rule) == "PART!extra"

    def test_copy_of_missing_source_rejected(self, world):
        sigma, tree, *_ = world
        with pytest.raises(SchemeError):
            copy_structured_subtree(tree, "no/such", "x")


class TestMultiAttach:
    def test_same_meaning_through_every_attachment(self, world):
        sigma, tree, doc, part, reader, rule = world
        proj = tree.directory("proj")
        site1 = NamingTree("site1", sigma=sigma, parent_links=True)
        site2 = NamingTree("site2", sigma=sigma, parent_links=True)
        multi_attach(proj, [(site1, "mnt/proj"), (site2, "import/proj")])
        assert site1.lookup("mnt/proj/src/n") is doc
        assert site2.lookup("import/proj/src/n") is doc
        assert flatten(doc, reader, rule) == "PART"

    def test_attachment_does_not_disturb_original(self, world):
        sigma, tree, doc, part, reader, rule = world
        proj = tree.directory("proj")
        original_parent = proj.state("..")
        other = NamingTree("other", sigma=sigma, parent_links=True)
        multi_attach(proj, [(other, "m/p")])
        assert proj.state("..") is original_parent

    def test_multi_attach_of_file_rejected(self, world):
        sigma, tree, *_ = world
        leaf = tree.mkfile("plain")
        other = NamingTree("other", sigma=sigma)
        with pytest.raises(SchemeError):
            multi_attach(leaf, [(other, "x")])
