"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.model.state import GlobalState
from repro.namespaces.tree import NamingTree
from repro.namespaces.unix import UnixSystem
from repro.workloads.scenarios import (
    build_pqid_population,
    build_rule_scenario,
)


@pytest.fixture
def sigma() -> GlobalState:
    return GlobalState()


@pytest.fixture
def small_tree(sigma: GlobalState) -> NamingTree:
    """A small naming tree:

    root ── etc ── passwd
         ├─ usr ── bin ── cc
         └─ home ── alice ── notes
    """
    tree = NamingTree("root", sigma=sigma, parent_links=True)
    tree.mkfile("etc/passwd")
    tree.mkfile("usr/bin/cc")
    tree.mkfile("home/alice/notes")
    return tree


@pytest.fixture
def unix_system() -> UnixSystem:
    unix = UnixSystem("testbox")
    unix.tree.mkfile("etc/passwd")
    unix.tree.mkfile("usr/bin/cc")
    unix.tree.mkfile("home/alice/notes")
    unix.tree.mkfile("home/bob/todo")
    return unix


@pytest.fixture
def rule_scenario():
    return build_rule_scenario(seed=7)


@pytest.fixture
def pqid_population():
    return build_pqid_population(seed=7)
