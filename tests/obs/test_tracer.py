"""Unit tests for the `repro.obs` tracer and span model."""

from __future__ import annotations

from repro.obs import Instrumentation, NO_OBS, Tracer


class TestSpans:
    def test_nested_spans_share_a_trace(self):
        tracer = Tracer()
        outer = tracer.begin("resolution", "/a/b", 0.0, parent=None)
        inner = tracer.begin("hop", "query", 1.0)
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        tracer.end(inner, 2.0)
        tracer.end(outer, 3.0)
        assert outer.duration == 3.0
        assert inner.duration == 1.0
        assert tracer.current is None

    def test_parent_none_roots_a_new_trace(self):
        tracer = Tracer()
        first = tracer.begin("resolution", "one", 0.0, parent=None)
        tracer.end(first, 1.0)
        second = tracer.begin("resolution", "two", 1.0, parent=None)
        assert second.trace_id != first.trace_id
        assert second.parent_id is None

    def test_ids_are_deterministic(self):
        spans = []
        for _run in range(2):
            tracer = Tracer()
            root = tracer.begin("batch", "b", 0.0, parent=None)
            tracer.begin("resolution", "r", 0.0)
            spans.append((root.trace_id, root.span_id))
        assert spans[0] == spans[1] == ("t1", "s1")

    def test_non_activated_span_is_not_a_parent(self):
        tracer = Tracer()
        lookup = tracer.begin("lookup", "/a", 0.0, parent=None,
                              activate=False)
        other = tracer.begin("resolution", "/b", 0.0, parent=None)
        assert tracer.current is other
        assert other.trace_id != lookup.trace_id

    def test_end_pops_through_abandoned_children(self):
        tracer = Tracer()
        outer = tracer.begin("resolution", "r", 0.0, parent=None)
        tracer.begin("hop", "query", 0.0)  # never ended
        tracer.end(outer, 2.0)
        assert tracer.current is None

    def test_fail_records_status_and_reason(self):
        tracer = Tracer()
        span = tracer.begin("hop", "query", 0.0, parent=None)
        span.fail("receiver machine down")
        assert span.status == "failed"
        assert "down" in span.reason

    def test_event_inherits_active_context(self):
        tracer = Tracer()
        root = tracer.begin("resolution", "r", 0.0, parent=None)
        instant = tracer.event("step", "a", 1.0)
        assert instant.trace_id == root.trace_id
        assert instant.parent_id == root.span_id
        assert instant.start == instant.end == 1.0

    def test_event_accepts_raw_message_context(self):
        # Kernel messages carry trace context as plain strings.
        tracer = Tracer()
        instant = tracer.event("deliver", "msg#1", 2.0,
                               trace_id="t9", parent_span_id="s42")
        assert instant.trace_id == "t9"
        assert instant.parent_id == "s42"

    def test_queries(self):
        tracer = Tracer()
        root = tracer.begin("resolution", "r", 0.0, parent=None)
        tracer.event("step", "a", 0.0)
        tracer.end(root, 1.0)
        lone = tracer.begin("rebind", "w", 1.0, parent=None)
        tracer.end(lone, 2.0)
        assert [s.kind for s in tracer.of_kind("step")] == ["step"]
        assert len(tracer.of_trace(root.trace_id)) == 2
        assert tracer.trace_ids() == [root.trace_id, lone.trace_id]
        assert len(tracer) == 3


class TestRingBuffer:
    def test_oldest_spans_evicted(self):
        tracer = Tracer(max_spans=3)
        for index in range(5):
            span = tracer.begin("hop", f"h{index}", float(index),
                                parent=None)
            tracer.end(span, float(index))
        assert len(tracer) == 3
        assert tracer.dropped_spans == 2
        assert [s.name for s in tracer.spans] == ["h2", "h3", "h4"]

    def test_unbounded_by_default(self):
        tracer = Tracer()
        for index in range(100):
            tracer.event("step", str(index), 0.0, trace_id="t1")
        assert len(tracer) == 100
        assert tracer.dropped_spans == 0


class TestInstrumentation:
    def test_enabled_bundle(self):
        obs = Instrumentation()
        assert obs.enabled
        obs.metrics.counter("c").inc()
        assert obs.metrics.value_of("c") == 1.0

    def test_no_obs_is_shared_and_inert(self):
        assert not NO_OBS.enabled
        assert len(NO_OBS.tracer) == 0
        assert len(NO_OBS.metrics) == 0

    def test_max_spans_passes_through(self):
        obs = Instrumentation(max_spans=2)
        for index in range(4):
            obs.tracer.event("step", str(index), 0.0, trace_id="t1")
        assert len(obs.tracer) == 2
        assert obs.tracer.dropped_spans == 2
