"""Hop-tree reconstruction, hot-spot rankings, and the CLI."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import (
    Tracer,
    format_hop_tree,
    hop_tree,
    hottest_directories,
    hottest_servers,
    trace_roots,
)

REPO = Path(__file__).resolve().parents[2]
CLI = REPO / "tools" / "inspect_run.py"


def walk_trace() -> Tracer:
    tracer = Tracer()
    root = tracer.begin("resolution", "/a/b", 0.0, parent=None)
    tracer.event("step", "/", 0.0,
                 attrs={"server": "s-client", "directory": "root"})
    hop = tracer.begin("hop", "query", 0.0)
    tracer.event("deliver", "msg#1", 1.0)
    tracer.end(hop, 1.0)
    tracer.event("step", "a", 1.0,
                 attrs={"server": "s-b", "directory": "root"})
    tracer.event("step", "b", 1.0,
                 attrs={"server": "s-b", "directory": "a"})
    tracer.end(root, 2.0)
    return tracer


class TestHopTree:
    def test_tree_structure(self):
        roots = hop_tree(walk_trace().spans)
        assert len(roots) == 1
        root = roots[0]
        assert root["span"].kind == "resolution"
        kinds = [child["span"].kind for child in root["children"]]
        assert kinds == ["step", "hop", "step", "step"]
        hop_node = root["children"][1]
        assert [c["span"].kind for c in hop_node["children"]] == \
            ["deliver"]

    def test_trace_roots(self):
        tracer = walk_trace()
        assert [s.kind for s in trace_roots(tracer.spans)] == \
            ["resolution"]

    def test_orphan_spans_become_roots(self):
        # A ring-buffered tracer can evict a parent; children must
        # still render rather than vanish.
        tracer = walk_trace()
        spans = [s for s in tracer.spans if s.kind != "resolution"]
        assert len(trace_roots(spans)) == len(
            [s for s in spans if s.kind in ("step", "hop")])

    def test_format_renders_every_span_once(self):
        tracer = walk_trace()
        text = format_hop_tree(tracer.spans)
        assert text.startswith("trace t1")
        assert text.count("step:") == 3
        assert "hop:query" in text
        assert "deliver:msg#1" in text

    def test_format_filters_by_trace(self):
        tracer = walk_trace()
        other = tracer.begin("rebind", "w", 5.0, parent=None)
        tracer.end(other, 6.0)
        text = format_hop_tree(tracer.spans, trace_id=other.trace_id)
        assert "rebind:w" in text
        assert "resolution" not in text

    def test_failed_span_is_flagged(self):
        tracer = Tracer()
        span = tracer.begin("hop", "query", 0.0, parent=None)
        span.fail("receiver machine down")
        tracer.end(span, 1.0)
        assert "FAILED(receiver machine down)" in \
            format_hop_tree(tracer.spans)


class TestHotSpots:
    def test_hottest_servers(self):
        tracer = walk_trace()
        assert hottest_servers(tracer.spans) == [("s-b", 2),
                                                 ("s-client", 1)]

    def test_hottest_directories(self):
        tracer = walk_trace()
        assert hottest_directories(tracer.spans) == [("root", 2),
                                                     ("a", 1)]

    def test_top_bound(self):
        tracer = walk_trace()
        assert len(hottest_servers(tracer.spans, top=1)) == 1


def run_cli(*argv: str) -> str:
    result = subprocess.run(
        [sys.executable, str(CLI), *argv],
        capture_output=True, text=True, timeout=120,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        cwd=str(REPO))
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestInspectCli:
    def test_tree_output(self):
        out = run_cli("--scenario", "basic")
        assert "trace t1" in out
        assert "batch:resolve_many" in out
        assert "hop:query" in out
        assert "hottest servers" in out
        assert "resolver_messages_total" in out

    def test_chrome_trace_validates(self, tmp_path):
        target = tmp_path / "trace.json"
        run_cli("--format", "chrome-trace", "--out", str(target))
        document = json.loads(target.read_text())
        events = document["traceEvents"]
        assert any(e.get("ph") == "X" and e.get("cat") == "resolution"
                   for e in events)
        # At least one complete resolution tree is loadable: a
        # resolution X event plus children referencing its span id.
        resolution = next(e for e in events
                          if e.get("cat") == "resolution")
        span_id = resolution["args"]["span_id"]
        assert any(e["args"].get("parent_span_id") == span_id
                   for e in events if e.get("ph") in ("X", "i"))

    def test_summary_reconciles(self, tmp_path):
        target = tmp_path / "summary.json"
        run_cli("--format", "summary", "--out", str(target))
        document = json.loads(target.read_text())
        assert document["span_count"] > 0
        assert document["failed_span_count"] == 0
        [spans] = document["traces"].values()
        hop_messages = sum(s["attrs"].get("messages", 0)
                           for s in spans if s["kind"] == "hop")
        counters = document["metrics"]["counters"]
        assert counters["resolver_messages_total"] == hop_messages

    def test_prometheus_output(self):
        out = run_cli("--format", "prometheus")
        assert "# TYPE sim_messages_sent_total counter" in out
        assert "resolver_resolution_latency_bucket" in out

    @pytest.mark.parametrize("scenario", ["hot", "failure"])
    def test_other_scenarios_run(self, scenario):
        out = run_cli("--scenario", scenario, "--style", "recursive")
        assert "trace t1" in out

    def test_failure_scenario_shows_failed_spans(self):
        out = run_cli("--scenario", "failure")
        assert "FAILED(" in out
