"""Exporter label coverage on sharded and leased runs (PR 8).

The Prometheus text and Chrome-trace exporters must carry the
auditor's per-shard and per-policy labels consistently: every audited
series names the policy the resolver actually ran, shard labels use
the ``machine@0xlo`` routing format everywhere they appear, and span
attributes agree with the metric labels.
"""

from __future__ import annotations

import json
import random
import re

from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.cache import CachePolicy
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver
from repro.nameservice.retry import RetryPolicy
from repro.nameservice.sharding import ShardManager
from repro.obs import (
    CoherenceAuditor,
    Instrumentation,
    to_chrome_trace,
    to_prometheus_text,
)
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.workloads.zipf import ZipfSampler, build_zipf_namespace

SHARD_LABEL = re.compile(r'shard="([^"]+)@0x([0-9a-f]{8})"')
POLICY_LABEL = re.compile(r'policy="([^"]+)"')


def _sharded_run(seed: int = 0):
    """A small Zipf run over a sharded directory with live splits,
    audited and instrumented."""
    obs = Instrumentation(max_spans=4096, auditor=CoherenceAuditor())
    simulator = Simulator(seed=seed, obs=obs)
    network = simulator.network("lan")
    pool = [simulator.machine(network, f"shard{i}") for i in range(4)]
    client_machine = simulator.machine(network, "client-m")
    tree = NamingTree("root", sigma=simulator.sigma)
    namespace = build_zipf_namespace(tree, "hot", count=2_000,
                                     distinct=64)
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    placement.place_sharded(namespace.directory, pool[0])
    client = simulator.spawn(client_machine, "client")
    resolver = DistributedResolver(simulator, placement)
    resolver.shard_manager = ShardManager(
        resolver, pool=pool, split_fraction=0.3,
        check_every=100, min_window=50)
    context = ProcessContext(tree.root)
    sampler = ZipfSampler(2_000, rng=random.Random(seed))
    for rank in sampler.sample_many(600):
        resolver.resolve(client, context,
                         "/hot/" + namespace.names[rank])
    assert resolver.shard_splits > 0, "workload must trigger a split"
    return obs, resolver, placement.shard_map_of(namespace.directory)


def _leased_run(seed: int = 0):
    """The lost-lease-callback scenario, audited and instrumented."""
    obs = Instrumentation(max_spans=4096, auditor=CoherenceAuditor())
    simulator = Simulator(seed=seed, obs=obs)
    lan = simulator.network("lan")
    srv = simulator.network("srv")
    client_machine = simulator.machine(lan, "client-m")
    primary = simulator.machine(srv, "m1")
    secondary = simulator.machine(srv, "m2")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("svc")
    old_dir = tree.mkdir("svc/app")
    tree.mkfile("svc/app/cfg")
    new_dir = tree.mkdir("spare")
    tree.mkfile("spare/cfg")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    svc = tree.directory("svc")
    for directory in (svc, old_dir, new_dir):
        placement.place_replicated(directory, primary, secondary)
    client = simulator.spawn(client_machine, "client")
    context = ProcessContext(tree.root)
    resolver = DistributedResolver(
        simulator, placement, cache_policy=CachePolicy.LEASE,
        cache_ttl=10_000.0,
        retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.5,
                                 max_backoff=1.0),
        breaker_threshold=5, breaker_cooldown=5.0, lease_term=12.0)
    injector = FailureInjector(simulator)
    injector.on_restart(resolver.handle_restart)
    injector.schedule_timeline([
        (10.0, "partition", lan, srv),
        (40.0, "heal", lan, srv),
    ])

    def probe(start):
        simulator.run(until=float(start))
        resolver.resolve(client, context, "/svc/app/cfg")

    for start in (2, 6):
        probe(start)
    simulator.run(until=11.0)
    resolver.rebind(svc, "app", new_dir)
    for start in range(12, 62, 6):
        probe(start)
    simulator.run()
    return obs, resolver


class TestShardedRunLabels:
    def test_prometheus_staleness_series_span_multiple_shards(self):
        obs, _resolver, _shard_map = _sharded_run()
        text = to_prometheus_text(obs.metrics)
        staleness_lines = [line for line in text.splitlines()
                           if line.startswith("audit_staleness_bucket")]
        assert staleness_lines
        shards = {m.group(0) for line in staleness_lines
                  for m in [SHARD_LABEL.search(line)] if m}
        # The live splits spread the audit across several shards, and
        # every shard label carries the machine@0xlo routing format.
        assert len(shards) >= 3
        for line in staleness_lines:
            assert SHARD_LABEL.search(line), line

    def test_prometheus_policy_label_matches_the_resolver(self):
        obs, resolver, _shard_map = _sharded_run()
        text = to_prometheus_text(obs.metrics)
        audited = [line for line in text.splitlines()
                   if line.startswith("audit_")
                   and POLICY_LABEL.search(line)]
        assert audited
        policies = {POLICY_LABEL.search(line).group(1)
                    for line in audited}
        assert policies == {resolver.cache_policy.value}

    def test_chrome_trace_shard_spans_name_pool_machines(self):
        obs, _resolver, _shard_map = _sharded_run()
        doc = to_chrome_trace(obs.tracer.spans)
        json.dumps(doc)  # must be serialisable as-is
        shard_events = [event for event in doc["traceEvents"]
                        if event.get("args", {}).get("split_at")
                        is not None]
        assert shard_events
        for event in shard_events:
            assert event["args"]["source"].startswith("shard")
            assert event["args"]["target"].startswith("shard")

    def test_metric_shards_agree_with_the_shard_map(self):
        obs, _resolver, shard_map = _sharded_run()
        snapshot = obs.metrics.snapshot()
        metric_shards = set()
        for key in snapshot["histograms"]:
            match = SHARD_LABEL.search(key)
            if match:
                metric_shards.add(
                    f"{match.group(1)}@0x{match.group(2)}")
        assert metric_shards, "no audited shard series found"
        # Audited labels name real pool machines: shards split away
        # mid-run keep their old lo-boundary in old series, but the
        # machine half always belongs to the final map's pool.
        machines = {s.machine.label for s in shard_map.shards}
        for label in metric_shards:
            assert label.split("@")[0] in machines
        live = {f"{s.machine.label}@0x{s.lo:08x}"
                for s in shard_map.shards}
        assert metric_shards & live, "no live shard was ever audited"


class TestLeasedRunLabels:
    def test_prometheus_series_carry_the_lease_policy(self):
        obs, _resolver = _leased_run()
        text = to_prometheus_text(obs.metrics)
        audit_lines = [line for line in text.splitlines()
                       if line.startswith("audit_resolutions_total")]
        assert audit_lines
        for line in audit_lines:
            assert 'policy="lease"' in line, line
        # Lease protocol counters sit beside the audit series in the
        # same exposition.
        assert "lease_" in text

    def test_chrome_trace_resolution_spans_carry_the_policy(self):
        obs, _resolver = _leased_run()
        doc = to_chrome_trace(obs.tracer.spans)
        resolution_args = [event["args"] for event in
                           doc["traceEvents"]
                           if event.get("args", {}).get("policy")]
        assert resolution_args
        assert {args["policy"] for args in resolution_args} \
            == {"lease"}

    def test_audit_summary_is_json_safe_beside_the_exports(self):
        obs, _resolver = _leased_run()
        summary = obs.auditor.summary()
        assert summary["observed"] > 0 and summary["writes"] == 1
        json.dumps(summary)
