"""End-to-end acceptance tests for the observability layer.

The load-bearing property (ISSUE 3): a single ``resolve_many`` over a
three-server placement yields ONE trace whose spans reconstruct the
exact hop sequence, and the trace reconciles with the reported
:class:`ResolutionCost` — summed hop-span message counts equal
``cost.messages`` and summed ``prefix.hit`` consumptions equal
``cost.cached_steps`` — for both resolution styles and all three
cache policies.  Under failure injection (a crashed machine, a
partition) the affected spans are marked failed and the message
counters still reconcile.
"""

from __future__ import annotations

import pytest

from repro.model.context import context_object
from repro.model.entities import ObjectEntity
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.cache import CachePolicy
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import (
    DistributedResolver,
    ResolutionCost,
    ResolutionStyle,
)
from repro.obs import Instrumentation
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator

TTL = 30.0
STYLES = list(ResolutionStyle)
POLICIES = list(CachePolicy)

NAMES = ["/a/b/c/leaf", "/a/b/c/leaf", "/a/b/f2", "/a/f1",
         "/a/b/c", "/x/y/g", "/a/zzz", "a/b/c/leaf"]


def make_world(policy=CachePolicy.NONE, ttl=TTL, split_c=False):
    """The three-server placement of test_resolver_batch, instrumented.

    root and /a live on the client's machine, /a/b (and /x, /x/y) on
    b-m, /a/b/c on c-m.  With ``split_c`` the c machine sits on its
    own network so a partition can sever it.
    """
    obs = Instrumentation()
    simulator = Simulator(seed=0, obs=obs)
    network = simulator.network("lan")
    c_net = simulator.network("c-net") if split_c else network
    m_client = simulator.machine(network, "client-m")
    m_b = simulator.machine(network, "b-m")
    m_c = simulator.machine(c_net, "c-m")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("a/b/c")
    tree.mkdir("x/y")
    tree.mkfile("a/b/c/leaf")
    tree.mkfile("a/f1")
    tree.mkfile("a/b/f2")
    tree.mkfile("x/y/g")
    placement = DirectoryPlacement()
    placement.place(tree.root, m_client)
    placement.place(tree.directory("a"), m_client)
    placement.place(tree.directory("a/b"), m_b)
    placement.place(tree.directory("a/b/c"), m_c)
    placement.place(tree.directory("x"), m_b)
    placement.place(tree.directory("x/y"), m_b)
    c_v2 = context_object("c-v2")
    simulator.sigma.add(c_v2)
    leaf_v2 = ObjectEntity("leaf-v2")
    simulator.sigma.add(leaf_v2)
    c_v2.state.bind("leaf", leaf_v2)
    placement.place(c_v2, m_c)
    client = simulator.spawn(m_client, "client")
    context = ProcessContext(tree.root)
    resolver = DistributedResolver(simulator, placement,
                                   cache_policy=policy, cache_ttl=ttl)
    return {
        "obs": obs, "simulator": simulator, "resolver": resolver,
        "client": client, "context": context, "tree": tree,
        "machines": {"client": m_client, "b": m_b, "c": m_c},
        "networks": (network, c_net), "c_v2": c_v2,
    }


def hop_message_sum(spans):
    return sum(s.attrs.get("messages", 0) for s in spans
               if s.kind == "hop")


def cached_consumed_sum(spans):
    return sum(s.attrs.get("consumed", 0) for s in spans
               if s.kind == "cache" and s.name == "prefix.hit")


class TestSingleTraceReconciliation:
    """One resolve_many == one trace; trace totals == cost totals."""

    @pytest.mark.parametrize("style", STYLES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_batch_yields_one_reconciled_trace(self, style, policy):
        world = make_world(policy)
        obs = world["obs"]
        results = world["resolver"].resolve_many(
            world["client"], world["context"], NAMES, style)
        cost = ResolutionCost.merge(c for _entity, c in results)

        trace_ids = obs.tracer.trace_ids()
        assert len(trace_ids) == 1
        spans = obs.tracer.of_trace(trace_ids[0])

        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1
        assert roots[0].kind == "batch"
        resolutions = [s for s in spans if s.kind == "resolution"]
        assert len(resolutions) == len(NAMES)
        assert all(s.parent_id == roots[0].span_id
                   for s in resolutions)
        assert all(s.finished for s in spans)

        # The reconciliation invariants.
        assert hop_message_sum(spans) == cost.messages
        assert roots[0].attrs["messages"] == cost.messages
        assert cached_consumed_sum(spans) == cost.cached_steps
        walked = [s for s in spans if s.kind == "step"]
        assert len(walked) == cost.steps - cost.cached_steps

        # Per-resolution attrs match per-name costs.  Spans appear in
        # the batch's prefix-sorted processing order (not input
        # order), and the batch's single closing answer hop is
        # charged to the last processed name *after* its span closed
        # — so compare steps/cached_steps as a multiset keyed by name.
        from collections import Counter

        from repro.model.names import CompoundName
        by_span = Counter((s.name, s.attrs["steps"],
                           s.attrs["cached_steps"])
                          for s in resolutions)
        by_cost = Counter((str(CompoundName.coerce(n)) or "<empty>",
                           c.steps, c.cached_steps)
                          for n, (_e, c) in zip(NAMES, results))
        assert by_span == by_cost

        # The resolver-level counter saw every hop message too.
        assert obs.metrics.value_of(
            "resolver_messages_total") == cost.messages

    @pytest.mark.parametrize("style", STYLES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_sequential_resolves_are_separate_traces(self, style,
                                                     policy):
        world = make_world(policy)
        obs = world["obs"]
        total = 0
        for name_ in ("/a/b/c/leaf", "/a/b/f2"):
            _entity, cost = world["resolver"].resolve(
                world["client"], world["context"], name_, style)
            total += cost.messages
        trace_ids = obs.tracer.trace_ids()
        assert len(trace_ids) == 2
        for trace_id in trace_ids:
            spans = obs.tracer.of_trace(trace_id)
            roots = [s for s in spans if s.parent_id is None]
            assert [s.kind for s in roots] == ["resolution"]
        assert hop_message_sum(obs.tracer.spans) == total
        assert obs.metrics.value_of("resolver_messages_total") == total


class TestExactHopSequence:
    """The trace reconstructs the walk's message legs in order."""

    def hop_names(self, world):
        return [s.name for s in world["obs"].tracer.of_kind("hop")]

    def test_iterative_cold_walk(self):
        world = make_world(CachePolicy.NONE)
        world["resolver"].resolve(world["client"], world["context"],
                                  "/a/b/c/leaf",
                                  ResolutionStyle.ITERATIVE)
        # client walks / and a locally, queries b-m, is referred back,
        # queries c-m, and the answer comes home.
        assert self.hop_names(world) == ["query", "referral", "query",
                                         "answer"]

    def test_recursive_cold_walk(self):
        world = make_world(CachePolicy.NONE)
        world["resolver"].resolve(world["client"], world["context"],
                                  "/a/b/c/leaf",
                                  ResolutionStyle.RECURSIVE)
        assert self.hop_names(world) == ["forward", "forward", "answer"]

    def test_warm_cache_skips_the_walk(self):
        world = make_world(CachePolicy.TTL)
        for _ in range(2):
            world["resolver"].resolve(world["client"], world["context"],
                                      "/a/b/c/leaf",
                                      ResolutionStyle.ITERATIVE)
        second = world["obs"].tracer.of_trace("t2")
        hops = [s.name for s in second if s.kind == "hop"]
        assert hops == ["query", "answer"]  # straight to c-m and back
        assert cached_consumed_sum(second) == 4

    def test_hops_parent_their_deliveries(self):
        world = make_world(CachePolicy.NONE)
        world["resolver"].resolve(world["client"], world["context"],
                                  "/a/b/c/leaf",
                                  ResolutionStyle.ITERATIVE)
        spans = world["obs"].tracer.spans
        hops = {s.span_id: s for s in spans if s.kind == "hop"}
        deliveries = [s for s in spans if s.kind == "deliver"]
        assert len(deliveries) == len(hops)
        for delivery in deliveries:
            assert delivery.parent_id in hops
            assert delivery.trace_id == hops[delivery.parent_id].trace_id


class TestFailureInjection:
    """Satellite (c): spans under crashes and partitions."""

    @pytest.mark.parametrize("style", STYLES)
    def test_crashed_machine_marks_spans_failed(self, style):
        world = make_world(CachePolicy.NONE)
        obs = world["obs"]
        resolver = world["resolver"]
        _entity, warm = resolver.resolve(
            world["client"], world["context"], "/a/b/c/leaf", style)
        FailureInjector(world["simulator"]).crash_machine(
            world["machines"]["c"])
        _entity, cost = resolver.resolve(
            world["client"], world["context"], "/a/b/c/leaf", style)

        failed_hops = [s for s in obs.tracer.of_kind("hop")
                       if s.status == "failed"]
        assert failed_hops, "the severed legs must be visible"
        assert all(s.reason for s in failed_hops)
        resolution = obs.tracer.of_kind("resolution")[-1]
        assert resolution.status == "failed"
        assert obs.tracer.of_kind("failure")[0].attrs["injected"] == \
            "crash"
        assert obs.metrics.value_of("failures_injected_total",
                                    {"kind": "crash"}) == 1.0
        # Counters still reconcile: every counted message is a hop span.
        assert hop_message_sum(obs.tracer.spans) == \
            warm.messages + cost.messages
        assert obs.metrics.value_of("resolver_messages_total") == \
            warm.messages + cost.messages

    @pytest.mark.parametrize("style", STYLES)
    def test_partition_marks_spans_failed(self, style):
        world = make_world(CachePolicy.NONE, split_c=True)
        obs = world["obs"]
        resolver = world["resolver"]
        _entity, warm = resolver.resolve(
            world["client"], world["context"], "/a/b/c/leaf", style)
        network, c_net = world["networks"]
        FailureInjector(world["simulator"]).partition(network, c_net)
        _entity, cost = resolver.resolve(
            world["client"], world["context"], "/a/b/c/leaf", style)

        failed_hops = [s for s in obs.tracer.of_kind("hop")
                       if s.status == "failed"]
        assert failed_hops
        resolution = obs.tracer.of_kind("resolution")[-1]
        assert resolution.status == "failed"
        drops = obs.tracer.of_kind("drop")
        assert drops and all(
            d.parent_id in {s.span_id for s in failed_hops}
            for d in drops)
        assert obs.metrics.value_of("failures_injected_total",
                                    {"kind": "partition"}) == 1.0
        assert hop_message_sum(obs.tracer.spans) == \
            warm.messages + cost.messages
        assert obs.metrics.value_of("resolver_messages_total") == \
            warm.messages + cost.messages
        assert obs.metrics.value_of(
            "sim_messages_dropped_total") == len(drops)


class TestRebindAndInvalidate:
    def test_rebind_span_covers_the_fanout(self):
        world = make_world(CachePolicy.INVALIDATE)
        resolver = world["resolver"]
        obs = world["obs"]
        resolver.resolve(world["client"], world["context"],
                         "/a/b/c/leaf", ResolutionStyle.ITERATIVE)
        resolver.rebind(world["tree"].directory("a/b"), "c",
                        world["c_v2"])
        rebinds = obs.tracer.of_kind("rebind")
        assert len(rebinds) == 1
        assert rebinds[0].attrs["messages"] == \
            resolver.invalidation_messages > 0
        invalidated = [s for s in obs.tracer.of_kind("cache")
                       if s.name == "prefix.invalidated"]
        assert invalidated
        assert obs.metrics.total_of(
            "cache_prefix_invalidations_total") > 0

    def test_ttl_expiry_is_observable(self):
        world = make_world(CachePolicy.TTL, ttl=5.0)
        resolver = world["resolver"]
        obs = world["obs"]
        resolver.resolve(world["client"], world["context"],
                         "/a/b/c/leaf", ResolutionStyle.ITERATIVE)
        world["simulator"].schedule(10.0, lambda: None, note="wait")
        world["simulator"].run()
        resolver.resolve(world["client"], world["context"],
                         "/a/b/c/leaf", ResolutionStyle.ITERATIVE)
        expired = [s for s in obs.tracer.of_kind("cache")
                   if s.name == "prefix.expired"]
        assert expired
        assert obs.metrics.total_of(
            "cache_prefix_expirations_total") > 0


class TestDisabledByDefault:
    def test_uninstrumented_run_records_nothing(self):
        simulator = Simulator(seed=0)
        assert not simulator.obs.enabled
        network = simulator.network("lan")
        machine = simulator.machine(network, "m")
        sender = simulator.spawn(machine, "p1")
        receiver = simulator.spawn(machine, "p2")
        sender.send(receiver, payload="ping")
        simulator.run()
        assert len(simulator.obs.tracer) == 0
        assert len(simulator.obs.metrics) == 0
