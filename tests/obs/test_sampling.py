"""Tests for the span-sampling seam: the deterministic
:class:`SpanSampler`, the tracer's sampled storage + always-kept
recent ring, and the kernel's deferred counter flush (PR 8)."""

from __future__ import annotations

import pytest

from repro.obs import Instrumentation, SpanSampler, Tracer
from repro.sim.kernel import Simulator


def _traced_workload(tracer: Tracer, traces: int = 40):
    """Mint *traces* root spans with one nested hop each."""
    for index in range(traces):
        root = tracer.begin("resolution", f"/n{index}", float(index),
                            parent=None)
        hop = tracer.begin("hop", "query", float(index) + 0.25)
        tracer.end(hop, float(index) + 0.5)
        tracer.end(root, float(index) + 1.0)


class TestSpanSampler:
    def test_decision_is_deterministic_and_stateless(self):
        first = SpanSampler(rate=0.3, seed=7)
        second = SpanSampler(rate=0.3, seed=7)
        decisions = [first.keep_trace(seq) for seq in range(500)]
        assert decisions == [second.keep_trace(seq)
                             for seq in range(500)]
        # Order of queries must not matter (no hidden RNG state).
        assert [first.keep_trace(seq)
                for seq in reversed(range(500))] == decisions[::-1]

    def test_different_seeds_sample_different_traces(self):
        a = SpanSampler(rate=0.3, seed=1)
        b = SpanSampler(rate=0.3, seed=2)
        assert [a.keep_trace(s) for s in range(200)] \
            != [b.keep_trace(s) for s in range(200)]

    def test_keep_fraction_tracks_the_rate(self):
        for rate in (0.05, 0.5, 0.9):
            sampler = SpanSampler(rate=rate, seed=3)
            kept = sum(sampler.keep_trace(seq)
                       for seq in range(10_000))
            assert abs(kept / 10_000 - rate) < 0.03, (rate, kept)

    def test_rate_bounds(self):
        assert all(SpanSampler(rate=1.0).keep_trace(s)
                   for s in range(100))
        assert not any(SpanSampler(rate=0.0).keep_trace(s)
                       for s in range(100))
        with pytest.raises(ValueError):
            SpanSampler(rate=1.5)
        with pytest.raises(ValueError):
            SpanSampler(rate=0.5, window=0)


class TestTracerSampling:
    def test_main_store_holds_a_deterministic_subset(self):
        sampler = SpanSampler(rate=0.5, seed=11)
        sampled = Tracer(sampler=sampler)
        full = Tracer()
        _traced_workload(sampled)
        _traced_workload(full)
        kept_ids = {span.span_id for span in sampled.spans}
        expected = {span.span_id for span in full.spans
                    if sampler.keep_trace(int(span.trace_id[1:]))}
        assert kept_ids == expected
        assert 0 < len(sampled) < len(full)
        assert sampled.sampled_out == len(full) - len(sampled)

    def test_sampled_out_traces_still_mint_identical_ids(self):
        # Determinism invariant: installing a sampler must not shift
        # a single id — sampled-out spans mint and nest exactly as in
        # the unsampled run, only their storage is skipped.
        sampled = Tracer(sampler=SpanSampler(rate=0.1, seed=5))
        full = Tracer()
        _traced_workload(sampled)
        _traced_workload(full)
        by_id = {span.span_id: span for span in full.spans}
        for span in sampled.spans:
            twin = by_id[span.span_id]
            assert (span.trace_id, span.parent_id, span.kind) \
                == (twin.trace_id, twin.parent_id, twin.kind)

    def test_recent_ring_keeps_sampled_out_spans(self):
        tracer = Tracer(sampler=SpanSampler(rate=0.0, seed=1,
                                            window=512))
        _traced_workload(tracer, traces=10)
        assert len(tracer) == 0          # nothing in the main store
        window = tracer.recent_window(0.0, 100.0)
        assert len(window) == 20         # every span is in the ring
        assert tracer.recent_window(3.0, 4.0)  # time-filtered view

    def test_recent_ring_is_bounded_by_the_window(self):
        tracer = Tracer(sampler=SpanSampler(rate=0.0, seed=1,
                                            window=8))
        _traced_workload(tracer, traces=30)
        assert len(tracer.recent_window(0.0, 1e9)) == 8

    def test_no_sampler_recent_window_reads_the_main_store(self):
        tracer = Tracer()
        _traced_workload(tracer, traces=4)
        assert len(tracer.recent_window(0.0, 100.0)) == 8

    def test_instrumentation_carries_the_sampler(self):
        sampler = SpanSampler(rate=0.25, seed=9)
        obs = Instrumentation(sampler=sampler)
        assert obs.sampler is sampler
        assert obs.tracer.sampler is sampler


class TestKernelSampledMode:
    def _messaging_run(self, obs, count=300):
        simulator = Simulator(seed=1, obs=obs)
        network = simulator.network("lan")
        procs = [simulator.spawn(simulator.machine(network), f"p{i}")
                 for i in range(4)]
        for index in range(count):
            procs[index % 4].send(procs[(index + 1) % 4],
                                  payload=index)
        simulator.run()
        return simulator

    def test_flushed_totals_equal_full_mode_counters(self):
        sampled_obs = Instrumentation(
            sampler=SpanSampler(rate=0.05, seed=1))
        full_obs = Instrumentation()
        sampled = self._messaging_run(sampled_obs)
        full = self._messaging_run(full_obs)
        for name in ("sim_messages_sent_total",
                     "sim_messages_delivered_total",
                     "sim_events_processed_total"):
            assert sampled_obs.metrics.counter(name).value \
                == full_obs.metrics.counter(name).value, name
        assert sampled.messages_delivered == full.messages_delivered

    def test_flush_covers_dropped_messages(self):
        obs = Instrumentation(sampler=SpanSampler(rate=0.0, seed=1))
        simulator = Simulator(seed=2, obs=obs)
        network = simulator.network("lan")
        alive = simulator.spawn(simulator.machine(network), "alive")
        doomed_machine = simulator.machine(network)
        doomed = simulator.spawn(doomed_machine, "doomed")
        alive.send(doomed, payload="never arrives")
        doomed_machine.alive = False
        simulator.run()
        assert simulator.messages_dropped == 1
        assert obs.metrics.counter(
            "sim_messages_dropped_total").value == 1

    def test_repeated_runs_flush_incrementally(self):
        obs = Instrumentation(sampler=SpanSampler(rate=0.5, seed=3))
        simulator = Simulator(seed=3, obs=obs)
        network = simulator.network("lan")
        a = simulator.spawn(simulator.machine(network), "a")
        b = simulator.spawn(simulator.machine(network), "b")
        for round_ in range(3):
            a.send(b, payload=round_)
            simulator.run()
            assert obs.metrics.counter(
                "sim_messages_sent_total").value == round_ + 1

    def test_run_until_settled_flushes_too(self):
        obs = Instrumentation(sampler=SpanSampler(rate=0.5, seed=4))
        simulator = Simulator(seed=4, obs=obs)
        network = simulator.network("lan")
        a = simulator.spawn(simulator.machine(network), "a")
        b = simulator.spawn(simulator.machine(network), "b")
        message = a.send(b, payload="ping")
        simulator.run_until_settled(message)
        assert obs.metrics.counter(
            "sim_messages_delivered_total").value == 1

    def test_sampling_never_perturbs_the_simulation(self):
        # The hard determinism requirement: the kernel trace (event
        # order, timestamps, payload routing) must be identical with
        # and without a sampler installed.
        def digest(obs):
            simulator = self._messaging_run(obs, count=200)
            return [(e.time, e.kind, e.detail)
                    for e in simulator.trace.entries]

        assert digest(None) \
            == digest(Instrumentation(
                sampler=SpanSampler(rate=0.05, seed=1))) \
            == digest(Instrumentation())
