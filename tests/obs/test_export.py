"""Exporter tests: Chrome trace JSON, Prometheus text, run summary,
and export safety for arbitrary simulation payloads."""

from __future__ import annotations

import json

from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    Tracer,
    json_safe,
    run_summary,
    to_chrome_trace,
    to_prometheus_text,
)
from repro.sim.trace import TraceLog


def small_trace() -> Tracer:
    tracer = Tracer()
    root = tracer.begin("resolution", "/a/b", 0.0, parent=None,
                        attrs={"style": "iterative"})
    hop = tracer.begin("hop", "query", 0.0, attrs={"messages": 1})
    tracer.event("deliver", "msg#1", 1.0)
    tracer.end(hop, 1.0)
    tracer.event("step", "b", 1.0)
    tracer.end(root, 2.0)
    return tracer


class TestJsonSafe:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert json_safe(value) == value

    def test_containers_convert_recursively(self):
        out = json_safe({"a": [1, (2, 3)], 4: {5, 6}})
        assert out == {"a": [1, [2, 3]], "4": [5, 6]}
        json.dumps(out)

    def test_non_serialisable_becomes_repr(self):
        class Payload:
            def __repr__(self):
                return "<payload>"

        assert json_safe(Payload()) == "<payload>"
        assert json_safe({"deep": Payload()}) == {"deep": "<payload>"}

    def test_long_reprs_truncate(self):
        class Huge:
            def __repr__(self):
                return "x" * 10_000

        assert len(json_safe(Huge())) <= 120

    def test_cyclic_payload_terminates(self):
        cycle: dict = {}
        cycle["self"] = cycle
        json.dumps(json_safe(cycle))


class TestChromeTrace:
    def test_document_is_valid_json_with_complete_tree(self):
        document = to_chrome_trace(small_trace().spans, label="test")
        reloaded = json.loads(json.dumps(document))
        events = reloaded["traceEvents"]
        assert reloaded["displayTimeUnit"] == "ms"
        # Metadata names the process and the trace's thread row.
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name",
                                            "thread_name"}
        durations = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(durations) == 2  # resolution + hop
        assert len(instants) == 2   # deliver + step
        # One complete resolution tree: the root X event spans the
        # whole walk and children link back via parent_span_id.
        root = next(e for e in durations
                    if e["args"].get("parent_span_id") is None)
        assert root["cat"] == "resolution"
        assert root["dur"] == 2000.0  # 2 virtual units -> 2 ms
        child = next(e for e in durations if e is not root)
        assert child["args"]["parent_span_id"] == \
            root["args"]["span_id"]

    def test_failed_span_carries_reason(self):
        tracer = Tracer()
        span = tracer.begin("hop", "query", 0.0, parent=None)
        span.fail("receiver machine down")
        tracer.end(span, 1.0)
        [_meta1, _meta2, event] = to_chrome_trace(
            tracer.spans)["traceEvents"]
        assert event["args"]["status"] == "failed"
        assert event["args"]["reason"] == "receiver machine down"

    def test_attrs_are_export_safe(self):
        tracer = Tracer()
        span = tracer.begin("hop", "query", 0.0, parent=None,
                            attrs={"payload": object()})
        tracer.end(span, 1.0)
        json.dumps(to_chrome_trace(tracer.spans))


class TestPrometheusText:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("messages_total",
                         {"server": "s1"}).inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("latency", buckets=(1.0, 5.0)).observe(0.5)
        text = to_prometheus_text(registry)
        assert "# TYPE messages_total counter" in text
        assert 'messages_total{server="s1"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert 'latency_bucket{le="1"} 1' in text
        assert 'latency_bucket{le="+Inf"} 1' in text
        assert "latency_sum 0.5" in text
        assert "latency_count 1" in text
        assert text.endswith("\n")


class TestRunSummary:
    def test_summary_shape(self):
        obs = Instrumentation()
        obs.metrics.counter("c").inc()
        tracer = small_trace()
        log = TraceLog()
        log.record(0.0, "send", "msg#1", data=object())
        document = run_summary(tracer.spans, obs.metrics,
                               trace_log=log, clock=2.0,
                               notes={"seed": 0})
        json.dumps(document)
        assert document["clock"] == 2.0
        assert document["span_count"] == 4
        assert document["failed_span_count"] == 0
        assert set(document["traces"]) == {"t1"}
        assert len(document["traces"]["t1"]) == 4
        assert document["metrics"]["counters"]["c"] == 1.0
        assert document["kernel_trace"][0]["kind"] == "send"
        assert isinstance(document["kernel_trace"][0]["data"], str)
        assert document["notes"] == {"seed": 0}

    def test_failed_spans_counted(self):
        tracer = Tracer()
        span = tracer.begin("hop", "q", 0.0, parent=None)
        span.fail("down")
        tracer.end(span, 1.0)
        assert run_summary(tracer.spans)["failed_span_count"] == 1
