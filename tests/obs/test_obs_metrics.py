"""Unit tests for the `repro.obs` metrics instruments."""

from __future__ import annotations

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("messages_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_decrease(self):
        counter = Counter("messages_total")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 4.0

    def test_high_water(self):
        gauge = Gauge("depth")
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2.0
        assert gauge.high_water == 7.0


class TestHistogram:
    def test_aggregates(self):
        histogram = Histogram("latency", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 3.0, 3.0, 7.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.total == pytest.approx(113.5)
        assert histogram.mean == pytest.approx(113.5 / 5)
        assert histogram.min_value == 0.5
        assert histogram.max_value == 100.0

    def test_cumulative_buckets(self):
        histogram = Histogram("latency", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 3.0, 3.0, 7.0, 100.0):
            histogram.observe(value)
        cumulative = dict(histogram.cumulative())
        assert cumulative[1.0] == 1
        assert cumulative[5.0] == 3
        assert cumulative[10.0] == 4
        assert cumulative[float("inf")] == 5

    def test_boundary_lands_in_its_bucket(self):
        # le semantics: an observation equal to a bound counts in it.
        histogram = Histogram("latency", buckets=(1.0, 5.0))
        histogram.observe(5.0)
        assert dict(histogram.cumulative())[5.0] == 1

    def test_bounded_storage(self):
        histogram = Histogram("latency", buckets=(1.0, 5.0))
        for index in range(10_000):
            histogram.observe(float(index))
        assert len(histogram.bucket_counts) == 3  # bounds + overflow


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_labels_split_series(self):
        registry = MetricsRegistry()
        registry.counter("load", {"server": "s1"}).inc()
        registry.counter("load", {"server": "s2"}).inc(2)
        assert registry.value_of("load", {"server": "s1"}) == 1.0
        assert registry.value_of("load", {"server": "s2"}) == 2.0
        assert registry.total_of("load") == 3.0

    def test_label_order_is_normalised(self):
        registry = MetricsRegistry()
        registry.counter("c", {"a": "1", "b": "2"}).inc()
        assert registry.counter("c", {"b": "2", "a": "1"}).value == 1.0

    def test_value_of_absent_is_zero(self):
        assert MetricsRegistry().value_of("nope") == 0.0

    def test_snapshot_keys_are_prometheus_style(self):
        registry = MetricsRegistry()
        registry.counter("load", {"server": "s1"}).inc()
        registry.gauge("depth").set(2)
        registry.histogram("latency", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {'load{server="s1"}': 1.0}
        assert snap["gauges"]["depth"] == {"value": 2.0,
                                           "high_water": 2.0}
        histogram = snap["histograms"]["latency"]
        assert histogram["count"] == 1
        assert histogram["buckets"] == [[1.0, 1]]
        assert histogram["inf_count"] == 1

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(3)
        json.dumps(registry.snapshot())

    def test_len_counts_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3
