"""Lease-protocol observability: spans and counters on display."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.cache import CachePolicy
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver
from repro.nameservice.retry import RetryPolicy
from repro.obs import Instrumentation, to_chrome_trace
from repro.sim.kernel import Simulator

REPO = Path(__file__).resolve().parents[2]
CLI = REPO / "tools" / "inspect_run.py"


def _lease_run(obs):
    """Grant → connected break (ack) → partitioned break (loss) →
    grace serving → heal + revalidation, all instrumented."""
    simulator = Simulator(seed=0, obs=obs)
    lan = simulator.network("lan")
    srv = simulator.network("srv")
    client_machine = simulator.machine(lan, "client-m")
    primary = simulator.machine(srv, "m1")
    secondary = simulator.machine(srv, "m2")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("svc")
    old_dir = tree.mkdir("svc/app")
    tree.mkfile("svc/app/cfg")
    new_dir = tree.mkdir("spare")
    tree.mkfile("spare/cfg")
    other_dir = tree.mkdir("other")
    tree.mkfile("other/cfg")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    svc = tree.directory("svc")
    for node in (svc, old_dir, new_dir, other_dir):
        placement.place_replicated(node, primary, secondary)
    client = simulator.spawn(client_machine, "client")
    context = ProcessContext(tree.root)
    resolver = DistributedResolver(
        simulator, placement, cache_policy=CachePolicy.LEASE,
        cache_ttl=10_000.0,
        retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.5,
                                 max_backoff=1.0),
        breaker_threshold=5, breaker_cooldown=5.0, lease_term=12.0)
    resolver.resolve(client, context, "/svc/app/cfg")
    # Connected rebind: callback delivered, revoked and acked.
    resolver.rebind(svc, "app", other_dir)
    resolver.resolve(client, context, "/svc/app/cfg")
    # Partitioned rebind: callback lost, lease broken server-side.
    simulator.run(until=8.0)
    simulator.partition(lan, srv)
    resolver.rebind(svc, "app", new_dir)
    # Outlive the term inside the partition: expiry + grace serving.
    simulator.run(until=30.0)
    resolver.resolve(client, context, "/svc/app/cfg")
    simulator.heal(lan, srv)
    simulator.run(until=40.0)
    resolver.resolve(client, context, "/svc/app/cfg")
    simulator.run()
    return resolver


class TestLeaseSpans:
    def test_protocol_events_are_traced(self):
        obs = Instrumentation()
        _lease_run(obs)
        names = {span.name for span in obs.tracer.of_kind("lease")}
        assert {"lease.grant", "lease.callback", "lease.ack",
                "lease.revoke", "lease.break", "lease.expire",
                "lease.grace", "lease.grace_enter",
                "lease.grace_exit"} <= names

    def test_counters_cover_the_whole_lifecycle(self):
        obs = Instrumentation()
        _lease_run(obs)
        counters = obs.metrics.snapshot()["counters"]

        def total(name):
            return sum(value for key, value in counters.items()
                       if key.startswith(name))

        assert total("lease_grants_total{") > 0
        assert total("lease_callbacks_total{") > 0
        assert total("lease_callback_acks_total{") == 1
        assert total("lease_breaks_total{") == 1
        assert total("lease_revocations_total{") == 1
        assert total("lease_expirations_total{") > 0
        assert total("lease_grace_served_total{") > 0
        assert total("lease_revalidations_total{") > 0

    def test_counter_labels_use_machine_labels_not_ids(self):
        obs = Instrumentation()
        _lease_run(obs)
        counters = obs.metrics.snapshot()["counters"]
        lease_keys = [key for key in counters
                      if key.startswith("lease_")]
        assert lease_keys
        assert all('machine="client-m"' in key for key in lease_keys
                   if "machine=" in key)

    def test_chrome_trace_round_trips_lease_events(self):
        obs = Instrumentation()
        _lease_run(obs)
        document = to_chrome_trace(obs.tracer.spans)
        lease_events = [event for event in document["traceEvents"]
                        if event.get("cat") == "lease"]
        assert lease_events
        assert all(event["ph"] == "i" for event in lease_events)


class TestLeasesScenarioCli:
    def _run(self, *argv):
        result = subprocess.run(
            [sys.executable, str(CLI), "--scenario", "leases", *argv],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(REPO / "src"),
                 "PATH": "/usr/bin:/bin"},
            cwd=str(REPO))
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_tree_output_shows_lease_counters(self):
        out = self._run()
        assert "lease_grants_total" in out
        assert "lease_breaks_total" in out
        assert "lease_grace_served_total" in out
        assert '"losses": 1' in out

    def test_chrome_trace_carries_the_protocol_arc(self):
        out = self._run("--format", "chrome-trace")
        trace = json.loads(out)
        names = {event.get("name") for event in trace["traceEvents"]
                 if event.get("cat") == "lease"}
        assert {"lease.grant", "lease.break", "lease.expire",
                "lease.grace"} <= names
