"""Tests for the coherence auditor: ground-truth staleness
measurement, contract verdicts, SLO burn tracking, and the
violation-triggered flight recorder (PR 8)."""

from __future__ import annotations

import json

from repro.model.state import GlobalState
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.obs import (
    CoherenceAuditor,
    CoherenceContract,
    FlightRecorder,
    Instrumentation,
    SLObjective,
    SLOTracker,
)
from repro.sim.trace import TraceLog


def _world():
    """A small tree with one rebindable binding: /svc/app/cfg, plus a
    spare directory the rebind can point /svc/app at."""
    tree = NamingTree("root", sigma=GlobalState(), parent_links=True)
    tree.mkdir("svc")
    old_dir = tree.mkdir("svc/app")
    old_leaf = tree.mkfile("svc/app/cfg")
    new_dir = tree.mkdir("spare")
    new_leaf = tree.mkfile("spare/cfg")
    context = ProcessContext(tree.root)
    svc = tree.directory("svc")
    return tree, context, svc, old_dir, new_dir, old_leaf, new_leaf


def _rebind(auditor, directory, component, entity, time, epoch=0):
    """Apply a write the way the resolver does: mutate live σ, then
    feed the auditor the committed (old, new, time, epoch)."""
    context = directory.state
    old = context(component)
    context.bind(component, entity)
    auditor.record_write(directory, component, old, entity, time, epoch)


class TestGroundTruth:
    def test_fresh_answer_measures_zero(self):
        _tree, context, *_rest, old_leaf, _new = _world()
        auditor = CoherenceAuditor()
        assert auditor.measure(context, "/svc/app/cfg", old_leaf,
                               now=5.0) == 0.0

    def test_resolve_as_of_crosses_the_rebind_boundary(self):
        _tree, context, svc, old_dir, new_dir, old_leaf, new_leaf = \
            _world()
        auditor = CoherenceAuditor()
        _rebind(auditor, svc, "app", new_dir, time=10.0)
        # Before the write the old directory (and its leaf) stood.
        assert auditor.resolve_as_of(
            context, "/svc/app/cfg", at=3.0) is old_leaf
        # At and after the commit instant, the new binding answers.
        assert auditor.resolve_as_of(
            context, "/svc/app/cfg", at=10.0) is new_leaf
        assert auditor.resolve_as_of(
            context, "/svc/app/cfg", at=40.0) is new_leaf
        # strict=True excludes the write committed exactly at `at`.
        assert auditor.resolve_as_of(
            context, "/svc/app/cfg", at=10.0, strict=True) is old_leaf

    def test_staleness_is_lag_behind_the_rebind(self):
        _tree, context, svc, _old, new_dir, old_leaf, _new = _world()
        auditor = CoherenceAuditor()
        _rebind(auditor, svc, "app", new_dir, time=10.0)
        assert auditor.measure(context, "/svc/app/cfg", old_leaf,
                               now=25.0) == 25.0 - 10.0

    def test_phantom_answer_measures_from_oldest_write(self):
        tree, context, svc, _old, new_dir, _leaf, _new = _world()
        auditor = CoherenceAuditor()
        phantom = tree.mkfile("phantom")
        _rebind(auditor, svc, "app", new_dir, time=10.0)
        # `phantom` was never the authoritative answer at any instant:
        # the conservative bound is the distance to the oldest commit.
        assert auditor.measure(context, "/svc/app/cfg", phantom,
                               now=30.0) == 30.0 - 10.0

    def test_history_of_records_old_and_new(self):
        _tree, _context, svc, old_dir, new_dir, *_rest = _world()
        auditor = CoherenceAuditor()
        _rebind(auditor, svc, "app", new_dir, time=10.0, epoch=3)
        (write,) = auditor.history_of(svc, "app")
        assert write.old is old_dir and write.new is new_dir
        assert write.time == 10.0 and write.epoch == 3
        assert write.to_dict()["component"] == "app"


class TestVerdicts:
    def _stale_world(self):
        world = _world()
        auditor = CoherenceAuditor(
            contract=CoherenceContract(slack=6.0))
        _tree, context, svc, _old, new_dir, old_leaf, _new = world
        _rebind(auditor, svc, "app", new_dir, time=10.0)
        return auditor, context, old_leaf

    def test_fresh(self):
        _tree, context, *_rest, old_leaf, _new = _world()
        auditor = CoherenceAuditor()
        verdict = auditor.observe_resolution(
            context, "/svc/app/cfg", old_leaf, now=5.0, policy="none")
        assert verdict == "fresh"

    def test_weak_read_is_stale_declared_never_a_violation(self):
        auditor, context, old_leaf = self._stale_world()
        verdict = auditor.observe_resolution(
            context, "/svc/app/cfg", old_leaf, now=100.0,
            policy="invalidate", weak=True)
        assert verdict == "stale_declared"
        assert auditor.violation_count == 0

    def test_invalidate_within_slack_is_allowed(self):
        auditor, context, old_leaf = self._stale_world()
        verdict = auditor.observe_resolution(
            context, "/svc/app/cfg", old_leaf, now=14.0,
            policy="invalidate")
        assert verdict == "stale_allowed"

    def test_invalidate_past_slack_is_a_violation(self):
        auditor, context, old_leaf = self._stale_world()
        verdict = auditor.observe_resolution(
            context, "/svc/app/cfg", old_leaf, now=30.0,
            policy="invalidate")
        assert verdict == "violation"
        assert auditor.violation_count == 1
        (detail,) = auditor.violations
        assert detail["staleness"] == 20.0

    def test_lease_bound_is_term_plus_slack(self):
        auditor, context, old_leaf = self._stale_world()
        assert auditor.observe_resolution(
            context, "/svc/app/cfg", old_leaf, now=40.0,
            policy="lease", lease_term=30.0) == "stale_allowed"
        assert auditor.observe_resolution(
            context, "/svc/app/cfg", old_leaf, now=47.0,
            policy="lease", lease_term=30.0) == "violation"

    def test_ttl_bound_is_ttl_plus_slack(self):
        auditor, context, old_leaf = self._stale_world()
        assert auditor.observe_resolution(
            context, "/svc/app/cfg", old_leaf, now=70.0,
            policy="ttl", ttl=60.0) == "stale_allowed"
        assert auditor.observe_resolution(
            context, "/svc/app/cfg", old_leaf, now=80.0,
            policy="ttl", ttl=60.0) == "violation"

    def test_failed_resolution_is_tallied_not_measured(self):
        auditor, context, old_leaf = self._stale_world()
        assert auditor.observe_resolution(
            context, "/svc/app/cfg", old_leaf, now=99.0,
            policy="invalidate", failed=True) == "failed"
        assert auditor.max_staleness == 0.0

    def test_observe_lookup_measures_binding_level_staleness(self):
        _tree, _context, svc, old_dir, new_dir, *_rest = _world()
        auditor = CoherenceAuditor()
        _rebind(auditor, svc, "app", new_dir, time=10.0)
        assert auditor.observe_lookup(
            svc, "app", old_dir, now=30.0,
            policy="invalidate") == "violation"
        assert auditor.max_staleness == 20.0
        assert auditor.observe_lookup(
            svc, "app", new_dir, now=30.0, policy="invalidate") == "fresh"

    def test_summary_shape(self):
        auditor, context, old_leaf = self._stale_world()
        auditor.observe_resolution(context, "/svc/app/cfg", old_leaf,
                                   now=30.0, policy="invalidate")
        summary = auditor.summary()
        assert summary["observed"] == 1 and summary["writes"] == 1
        assert summary["violations"] == 1 and summary["stale"] == 1
        assert summary["max_claimed_staleness"] == 20.0
        assert summary["by_verdict"] == {"violation": 1}
        json.dumps(summary)  # JSON-safe


class TestMetricsEmission:
    def test_disabled_obs_keeps_tallies_without_metrics(self):
        auditor = CoherenceAuditor()
        obs = Instrumentation(enabled=False, auditor=auditor)
        assert obs.auditor is auditor
        _tree, context, svc, _old, new_dir, old_leaf, _new = _world()
        _rebind(auditor, svc, "app", new_dir, time=10.0)
        auditor.observe_resolution(context, "/svc/app/cfg", old_leaf,
                                   now=30.0, policy="invalidate")
        assert auditor.violation_count == 1
        assert obs.metrics.snapshot()["counters"] == {}

    def test_enabled_obs_gets_staleness_histogram_and_counters(self):
        auditor = CoherenceAuditor()
        obs = Instrumentation(auditor=auditor)
        _tree, context, svc, _old, new_dir, old_leaf, _new = _world()
        _rebind(auditor, svc, "app", new_dir, time=10.0)
        auditor.observe_resolution(context, "/svc/app/cfg", old_leaf,
                                   now=30.0, policy="invalidate")
        counters = obs.metrics.snapshot()["counters"]
        assert counters["audit_writes_total"] == 1
        assert counters[
            'audit_resolutions_total{policy="invalidate",'
            'verdict="violation"}'] == 1
        assert counters[
            'audit_violations_total{policy="invalidate",'
            'shard="-"}'] == 1
        histograms = obs.metrics.snapshot()["histograms"]
        (key,) = [k for k in histograms if k.startswith(
            "audit_staleness")]
        assert histograms[key]["count"] == 1
        assert histograms[key]["sum"] == 20.0


class TestSLOTracker:
    def test_staleness_objective_burns(self):
        slo = SLOTracker([SLObjective("fresh-reads",
                                      max_staleness=5.0)])
        assert slo.observe(staleness=2.0) == []
        assert slo.observe(staleness=9.0) == ["fresh-reads"]
        status = slo.status()["fresh-reads"]
        assert status["events"] == 2 and status["burns"] == 1

    def test_latency_and_violation_objectives(self):
        slo = SLOTracker([
            SLObjective("fast", max_latency=10.0,
                        violation_free=False),
            SLObjective("clean", violation_free=True),
        ])
        assert slo.observe(staleness=0.0, latency=50.0) == ["fast"]
        assert slo.observe(staleness=0.0, violation=True) == ["clean"]

    def test_target_gates_met(self):
        # 0.875 and 1/8 are binary-exact, so the budget comparison is
        # not at the mercy of decimal rounding.
        slo = SLOTracker([SLObjective("mostly-fresh",
                                      max_staleness=1.0,
                                      target=0.875)])
        for _ in range(7):
            slo.observe(staleness=0.0)
        slo.observe(staleness=5.0)
        assert slo.status()["mostly-fresh"]["met"] is True
        slo.observe(staleness=5.0)
        assert slo.status()["mostly-fresh"]["met"] is False

    def test_duplicate_objective_names_rejected(self):
        try:
            SLOTracker([SLObjective("x"), SLObjective("x")])
        except ValueError:
            pass
        else:
            raise AssertionError("duplicate names must be rejected")


class TestFlightRecorder:
    def _violating_auditor(self, **recorder_kwargs):
        trace_log = TraceLog()
        trace_log.record(8.0, "send", "before the window")
        trace_log.record(28.0, "deliver", "inside the window")
        recorder = FlightRecorder(trace_log=trace_log,
                                  **recorder_kwargs)
        auditor = CoherenceAuditor(
            slo=SLOTracker([SLObjective("fresh", max_staleness=1.0)]),
            recorder=recorder)
        _tree, context, svc, _old, new_dir, old_leaf, _new = _world()
        _rebind(auditor, svc, "app", new_dir, time=10.0)
        return auditor, recorder, context, old_leaf

    def test_violation_and_slo_burn_each_capture_a_window(self):
        auditor, recorder, context, old_leaf = \
            self._violating_auditor(window=25.0)
        auditor.observe_resolution(context, "/svc/app/cfg", old_leaf,
                                   now=30.0, policy="invalidate")
        # One violation dump + one slo_burn dump for the same read.
        assert recorder.captured == 2
        kinds = sorted(dump["kind"] for dump in recorder.dumps)
        assert kinds == ["slo_burn", "violation"]
        violation = [d for d in recorder.dumps
                     if d["kind"] == "violation"][0]
        assert violation["window"] == [5.0, 30.0]
        assert violation["detail"]["staleness"] == 20.0
        # Both kernel entries fall inside [5, 30].
        details = [e["detail"] for e in violation["kernel_trace"]]
        assert details == ["before the window", "inside the window"]

    def test_dump_json_roundtrips(self, tmp_path):
        auditor, recorder, context, old_leaf = \
            self._violating_auditor(window=25.0)
        auditor.observe_resolution(context, "/svc/app/cfg", old_leaf,
                                   now=30.0, policy="invalidate")
        path = tmp_path / "flight.json"
        recorder.dump_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["captured"] == 2
        assert loaded["dumps"][0]["kernel_trace"]

    def test_ring_bound_drops_oldest(self):
        auditor, recorder, context, old_leaf = \
            self._violating_auditor(window=5.0, max_dumps=2)
        for now in (30.0, 40.0, 50.0):
            auditor.observe_resolution(context, "/svc/app/cfg",
                                       old_leaf, now=now,
                                       policy="invalidate")
        assert recorder.captured == 6 and len(recorder.dumps) == 2
        assert recorder.dropped == 4
        assert auditor.summary()["flight_dumps"] == 6
