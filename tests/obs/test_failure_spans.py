"""Failure spans under batched resolution and failover.

Satellite coverage for ISSUE 4: a replica crashes *mid-batch* (booked
on the kernel's event queue, so the fault fires while the batch's hop
traffic is in flight) and the trace must still tell the whole story —
per-name outcomes, hop-by-hop message reconciliation against the
merged :class:`ResolutionCost`, and failed-hop spans that balance with
the kernel's drop accounting.  A second suite pins the exact hop
sequence of a failover walk, retried legs included.
"""

from __future__ import annotations

from repro.model.resolution import resolve as local_resolve
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.cache import CachePolicy
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import (
    DistributedResolver,
    ResolutionCost,
)
from repro.nameservice.retry import RetryPolicy
from repro.obs import Instrumentation
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator

NAMES = ["/a/b/f0", "/a/b/f1", "/x/y/g0", "/x/y/g1"]

#: The batch walks /a/b (on m1) first; its referral leg lands at
#: t=2.0, so a crash at t=2.5 severs m2 exactly while the batch's
#: first query toward /x/y is in flight.
CRASH_AT = 2.5


def make_world(retry: bool):
    """Two directory chains: /a/b on m1 (single placement) and /x/y
    replicated on m2 (primary) + m3, roots on the client machine."""
    obs = Instrumentation()
    simulator = Simulator(seed=0, obs=obs)
    network = simulator.network("lan")
    m_client = simulator.machine(network, "client-m")
    m1 = simulator.machine(network, "m1")
    m2 = simulator.machine(network, "m2")
    m3 = simulator.machine(network, "m3")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("a/b")
    tree.mkdir("x/y")
    for name_ in ("a/b/f0", "a/b/f1", "x/y/g0", "x/y/g1"):
        tree.mkfile(name_)
    placement = DirectoryPlacement()
    placement.place(tree.root, m_client)
    placement.place(tree.directory("a"), m_client)
    placement.place(tree.directory("a/b"), m1)
    placement.place(tree.directory("x"), m_client)
    placement.place_replicated(tree.directory("x/y"), m2, m3)
    client = simulator.spawn(m_client, "client")
    context = ProcessContext(tree.root)
    policy = RetryPolicy(max_attempts=2, base_backoff=0.2,
                         max_backoff=0.5, jitter=0.0) if retry else None
    resolver = DistributedResolver(simulator, placement,
                                   cache_policy=CachePolicy.NONE,
                                   retry_policy=policy)
    return {"obs": obs, "simulator": simulator, "resolver": resolver,
            "client": client, "context": context, "tree": tree,
            "machines": {"m1": m1, "m2": m2, "m3": m3},
            "injector": FailureInjector(simulator)}


def run_batch_with_midbatch_crash(retry: bool):
    world = make_world(retry)
    world["injector"].schedule(CRASH_AT, "crash",
                               world["machines"]["m2"])
    results = world["resolver"].resolve_many(
        world["client"], world["context"], NAMES)
    return world, results


def hop_spans(obs):
    return obs.tracer.of_kind("hop")


def hop_message_sum(obs):
    return sum(s.attrs.get("messages", 0) for s in hop_spans(obs))


class TestMidBatchCrashWithFailover:
    def test_per_name_outcomes_all_recover(self):
        world, results = run_batch_with_midbatch_crash(retry=True)
        assert not world["machines"]["m2"].alive  # the fault fired
        for name_, (entity, cost) in zip(NAMES, results):
            assert entity is local_resolve(world["context"], name_)
            assert not cost.failed, name_
        merged = ResolutionCost.merge(c for _e, c in results)
        assert merged.retries >= 1
        assert merged.failovers == 1  # /x/y served by m3
        assert not merged.weak
        # The failover is charged to the name that crossed the crash.
        assert results[2][1].failovers == 1

    def test_cost_reconciles_with_hop_spans(self):
        world, results = run_batch_with_midbatch_crash(retry=True)
        obs = world["obs"]
        merged = ResolutionCost.merge(c for _e, c in results)
        assert all(s.finished for s in obs.tracer.spans)
        assert hop_message_sum(obs) == merged.messages
        assert obs.metrics.value_of("resolver_messages_total") == \
            merged.messages
        batch = [s for s in obs.tracer.spans if s.kind == "batch"]
        assert len(batch) == 1
        assert batch[0].attrs["messages"] == merged.messages

    def test_failed_hop_spans_balance_with_kernel_drops(self):
        world, _results = run_batch_with_midbatch_crash(retry=True)
        obs = world["obs"]
        failed = [s for s in hop_spans(obs) if s.status == "failed"]
        assert failed and all(s.reason for s in failed)
        # Every failed hop here carried a real (dropped) message, and
        # every kernel drop event parents one of those hop spans.
        drops = obs.tracer.of_kind("drop")
        assert len(drops) == len(failed)
        assert sum(s.attrs["messages"] for s in failed) == len(drops)
        failed_ids = {s.span_id for s in failed}
        assert all(d.parent_id in failed_ids for d in drops)
        assert obs.metrics.value_of("sim_messages_dropped_total") == \
            len(drops)

    def test_recovered_resolutions_are_not_marked_failed(self):
        world, _results = run_batch_with_midbatch_crash(retry=True)
        obs = world["obs"]
        resolutions = obs.tracer.of_kind("resolution")
        assert len(resolutions) == len(NAMES)
        assert all(s.status != "failed" for s in resolutions)
        assert all(s.attrs["coherence"] == "coherent"
                   for s in resolutions)
        assert obs.metrics.value_of(
            "resolver_failovers_total") == 1.0
        assert obs.metrics.value_of("failures_injected_total",
                                    {"kind": "crash"}) == 1.0


class TestMidBatchCrashFailFast:
    def test_per_name_outcomes_and_failed_spans(self):
        world, results = run_batch_with_midbatch_crash(retry=False)
        merged = ResolutionCost.merge(c for _e, c in results)
        # /a names finished before the crash; /x names lost legs (the
        # query toward dead m2, then the answer hop home from it).
        assert not results[0][1].failed and not results[1][1].failed
        assert results[2][1].failed and results[3][1].failed
        assert merged.retries == 0 and merged.failovers == 0
        obs = world["obs"]
        failed = [s for s in hop_spans(obs) if s.status == "failed"]
        assert failed
        resolutions = obs.tracer.of_kind("resolution")
        assert resolutions[2].status == "failed"
        batch = [s for s in obs.tracer.spans if s.kind == "batch"]
        assert batch[0].status == "failed"

    def test_cost_still_reconciles(self):
        world, results = run_batch_with_midbatch_crash(retry=False)
        obs = world["obs"]
        merged = ResolutionCost.merge(c for _e, c in results)
        assert hop_message_sum(obs) == merged.messages
        # Zero-message failed hops (dead sender) appear as spans but
        # add nothing to the sum — the invariant stays exact.
        dead_sender = [s for s in hop_spans(obs)
                       if s.status == "failed"
                       and s.attrs["messages"] == 0]
        assert dead_sender  # the answer leg home from crashed m2
        assert obs.metrics.value_of("resolver_messages_total") == \
            merged.messages


class TestFailoverHopSequence:
    def test_retried_legs_emit_one_hop_span_per_attempt(self):
        world = make_world(retry=True)
        m2 = world["machines"]["m2"]
        resolver = world["resolver"]
        # Warm once so m2's server process exists, then crash it.
        resolver.resolve(world["client"], world["context"], "/x/y/g0")
        world["injector"].crash_machine(m2)
        seen = len(world["obs"].tracer.spans)
        entity, cost = resolver.resolve(world["client"],
                                        world["context"], "/x/y/g0")
        assert entity is local_resolve(world["context"], "/x/y/g0")
        hops = [s for s in world["obs"].tracer.spans[seen:]
                if s.kind == "hop"]
        # Two dropped query attempts against dead m2, the successful
        # failover query to m3, and the answer home.
        assert [s.name for s in hops] == ["query", "query", "query",
                                          "answer"]
        assert [s.status == "failed" for s in hops] == \
            [True, True, False, False]
        assert all("m2" in s.attrs["to"] for s in hops[:2])
        assert "m3" in hops[2].attrs["to"]
        assert cost.retries == 1 and cost.failovers == 1
        assert cost.messages == 4
        assert sum(s.attrs["messages"] for s in hops) == cost.messages
