"""Tests for the scripted user shell workload."""

from __future__ import annotations

import pytest

from repro.closure.meta import NameSource
from repro.closure.rules import RReceiver, RSender
from repro.coherence.auditor import CoherenceAuditor
from repro.embedded.objects import StructuredContent, structured_object
from repro.namespaces.unix import UnixSystem
from repro.workloads.shell import UserShell


@pytest.fixture
def unix():
    system = UnixSystem("box")
    system.tree.mkfile("etc/passwd")
    system.tree.mkfile("home/alice/notes")
    system.tree.mkfile("home/alice/paper")
    return system


@pytest.fixture
def shell(unix):
    return UserShell(unix)


class TestCommands:
    def test_open_emits_internal_events(self, unix, shell):
        result = shell.execute(["open /etc/passwd /home/alice/notes"])
        assert len(result.by_source(NameSource.INTERNAL)) == 2
        assert result.events[0].intended is unix.tree.lookup("etc/passwd")

    def test_open_unknown_name_has_no_intent(self, unix, shell):
        result = shell.execute(["open /no/such"])
        assert result.events[0].intended is None

    def test_cd_changes_relative_resolution(self, unix, shell):
        first = shell.execute(["cd /home/alice", "open notes"])
        assert first.events[0].intended is \
            unix.tree.lookup("home/alice/notes")

    def test_cd_argument_count(self, unix, shell):
        result = shell.execute(["cd"])
        assert result.errors

    def test_run_forks_and_passes_names(self, unix, shell):
        result = shell.execute(
            ["run editor /home/alice/notes /home/alice/paper"])
        assert len(result.children) == 1
        message_events = result.by_source(NameSource.MESSAGE)
        assert len(message_events) == 2
        assert all(e.sender is shell.process for e in message_events)
        assert all(e.resolver is result.children[0]
                   for e in message_events)

    def test_cat_emits_object_events(self, unix, shell):
        doc = structured_object(
            "doc", StructuredContent().include("/etc/passwd"),
            sigma=unix.sigma)
        unix.tree.add("home/alice/doc", doc)
        result = shell.execute(["cat /home/alice/doc"])
        object_events = result.by_source(NameSource.OBJECT)
        assert len(object_events) == 1
        assert object_events[0].source_object is doc

    def test_cat_of_missing_is_an_error(self, unix, shell):
        result = shell.execute(["cat /nope"])
        assert result.errors

    def test_unknown_command_is_recorded(self, unix, shell):
        result = shell.execute(["frobnicate /etc"])
        assert result.errors == ["unknown command: frobnicate /etc"]

    def test_blank_lines_ignored(self, unix, shell):
        result = shell.execute(["", "   ", "open /etc/passwd"])
        assert len(result.events) == 1


class TestShellWorkloadCoherence:
    def test_fresh_fork_children_see_what_the_user_meant(self, unix,
                                                         shell):
        result = shell.execute([
            "cd /home/alice",
            "run editor notes paper",
            "open /etc/passwd",
        ])
        auditor = CoherenceAuditor(RReceiver(unix.registry))
        auditor.observe_all(result.by_source(NameSource.MESSAGE))
        # A fresh fork shares the parent's context: relative args work.
        assert auditor.summary.coherence_rate() == 1.0

    def test_chdired_child_breaks_relative_args_under_receiver_rule(
            self, unix, shell):
        result = shell.execute(["cd /home/alice", "run editor notes"])
        child = result.children[0]
        unix.chdir(child, "/etc")
        receiver_rate = (CoherenceAuditor(RReceiver(unix.registry))
                         .observe_all(result.events)
                         .summary.coherence_rate())
        sender_rate = (CoherenceAuditor(RSender(unix.registry))
                       .observe_all(result.by_source(NameSource.MESSAGE))
                       .summary.coherence_rate())
        assert receiver_rate < 1.0
        assert sender_rate == 1.0

    def test_mixed_script_covers_all_three_sources(self, unix, shell):
        doc = structured_object(
            "doc", StructuredContent().include("/etc/passwd"),
            sigma=unix.sigma)
        unix.tree.add("home/doc", doc)
        result = shell.execute([
            "open /etc/passwd",
            "run viewer /home/doc",
            "cat /home/doc",
        ])
        assert result.by_source(NameSource.INTERNAL)
        assert result.by_source(NameSource.MESSAGE)
        assert result.by_source(NameSource.OBJECT)
        assert not result.errors
