"""Tests for workload generators, org builders, scenarios."""

from __future__ import annotations

import random

import pytest

from repro.closure.meta import NameSource
from repro.errors import SimulationError
from repro.workloads.generators import (
    embedded_events,
    exchange_events,
    internal_events,
    mixed_workload,
)
from repro.workloads.organizations import (
    OrgSpec,
    build_campus,
    build_federation,
)
from repro.workloads.scenarios import (
    build_pqid_population,
    build_rule_scenario,
)


@pytest.fixture
def scenario():
    return build_rule_scenario(seed=5)


class TestGenerators:
    def test_internal_events_shape(self, scenario):
        rng = random.Random(0)
        events = internal_events(scenario.activity_registry,
                                 scenario.activities,
                                 scenario.all_names, rng, 50)
        assert len(events) == 50
        assert all(e.source is NameSource.INTERNAL for e in events)
        assert all(e.sender is None for e in events)

    def test_internal_intent_is_author_denotation(self, scenario):
        rng = random.Random(0)
        author = scenario.activities[0]
        events = internal_events(scenario.activity_registry,
                                 scenario.activities,
                                 scenario.global_names, rng, 20,
                                 author=author)
        author_context = scenario.activity_registry.context_of(author)
        for event in events:
            assert event.intended is author_context(event.name.first)

    def test_exchange_events_distinct_parties(self, scenario):
        rng = random.Random(0)
        events = exchange_events(scenario.activity_registry,
                                 scenario.activities,
                                 scenario.all_names, rng, 50)
        assert all(e.sender is not e.resolver for e in events)
        assert all(e.source is NameSource.MESSAGE for e in events)

    def test_embedded_events_use_prepared_intents(self, scenario):
        rng = random.Random(0)
        events = embedded_events(scenario.activities,
                                 scenario.embedded_uses, rng, 30)
        assert all(e.source is NameSource.OBJECT for e in events)
        assert all(e.source_object is not None for e in events)

    def test_generators_validate_inputs(self, scenario):
        rng = random.Random(0)
        with pytest.raises(SimulationError):
            internal_events(scenario.activity_registry, [], ["x"], rng, 5)
        with pytest.raises(SimulationError):
            exchange_events(scenario.activity_registry,
                            scenario.activities[:1], ["x"], rng, 5)
        with pytest.raises(SimulationError):
            embedded_events(scenario.activities, [], rng, 5)

    def test_mixed_workload_proportions(self, scenario):
        rng = random.Random(0)
        events = mixed_workload(scenario.activity_registry,
                                scenario.activities, scenario.all_names,
                                scenario.embedded_uses, rng, 90,
                                proportions=(1.0, 1.0, 1.0))
        per_source = {source: sum(1 for e in events if e.source is source)
                      for source in NameSource}
        assert sum(per_source.values()) == 90
        assert all(count > 20 for count in per_source.values())

    def test_mixed_workload_bad_proportions(self, scenario):
        rng = random.Random(0)
        with pytest.raises(SimulationError):
            mixed_workload(scenario.activity_registry,
                           scenario.activities, scenario.all_names,
                           scenario.embedded_uses, rng, 10,
                           proportions=(0.0, 0.0, 0.0))

    def test_determinism(self, scenario):
        def digest(seed):
            rng = random.Random(seed)
            events = exchange_events(scenario.activity_registry,
                                     scenario.activities,
                                     scenario.all_names, rng, 40)
            return [(str(e.name), e.resolver.label, e.sender.label)
                    for e in events]

        assert digest(3) == digest(3)
        assert digest(3) != digest(4)


class TestRuleScenario:
    def test_population_shape(self, scenario):
        assert len(scenario.activities) == 4
        assert len(scenario.global_names) == 3
        assert len(scenario.homonym_names) == 3
        assert scenario.embedded_uses

    def test_global_names_are_global(self, scenario):
        from repro.coherence.definitions import is_global_name

        for name_ in scenario.global_names:
            assert is_global_name(name_, scenario.activities,
                                  scenario.activity_registry)

    def test_homonyms_are_not_coherent(self, scenario):
        from repro.coherence.definitions import coherent

        for name_ in scenario.homonym_names:
            assert not coherent(name_, scenario.activities,
                                scenario.activity_registry)

    def test_embedded_intents_match_author(self, scenario):
        for use in scenario.embedded_uses:
            author_context = scenario.object_registry.context_of(
                use.container)
            assert use.intended is author_context(use.name.first)


class TestBuilders:
    def test_pqid_population_shape(self):
        population = build_pqid_population(seed=0, n_networks=2,
                                           machines_per_network=3,
                                           processes_per_machine=2)
        assert len(population.networks) == 2
        assert len(population.machines) == 6
        assert len(population.processes) == 12
        assert all(p.alive for p in population.processes)

    def test_random_pair_distinct(self):
        population = build_pqid_population(seed=0)
        rng = random.Random(1)
        for _ in range(10):
            first, second = population.random_pair(rng)
            assert first is not second

    def test_build_campus(self):
        campus = build_campus(clients=3, local_files_per_client=2,
                              shared_files=4, replicated_commands=2,
                              processes_per_client=2, seed=0)
        assert len(campus.clients()) == 3
        assert len(campus.activities()) == 6
        assert len(campus.replicas) == 2
        assert len(campus.shared_probe_names()) >= 4

    def test_build_federation(self):
        env, orgs = build_federation(
            [OrgSpec("alpha", divisions=2, users_per_division=2,
                     services=1, activities_per_division=2)],
            seed=0)
        (org,) = orgs
        assert len(org.division_scopes) == 2
        assert len(org.activities) == 4
        assert len(org.user_names) == 4
        assert len(org.service_names) == 1
        process = org.activities[0]
        assert env.resolve_for(process, org.user_names[0]).is_defined()
        assert env.resolve_for(process, "/division/notes").is_defined()
