"""Tests for argument passing and remote-execution evaluation."""

from __future__ import annotations

import pytest

from repro.closure.meta import ContextRegistry, NameSource
from repro.model.context import Context
from repro.model.entities import Activity, ObjectEntity
from repro.remote.arguments import argument_events
from repro.remote.execution import evaluate_remote_exec


@pytest.fixture
def setting():
    shared = ObjectEntity("shared")
    parent_only = ObjectEntity("parent-only")
    childs_own = ObjectEntity("childs-own")
    registry = ContextRegistry()
    parent, child = Activity("parent"), Activity("child")
    registry.register(parent, Context({"shared": shared,
                                       "n": parent_only}))
    registry.register(child, Context({"shared": shared,
                                      "n": childs_own}))
    return registry, parent, child, (shared, parent_only, childs_own)


class TestArgumentEvents:
    def test_events_record_parent_intent(self, setting):
        registry, parent, child, (shared, parent_only, _) = setting
        events = argument_events(registry, parent, child, ["shared", "n"])
        assert all(e.source is NameSource.MESSAGE for e in events)
        assert all(e.sender is parent and e.resolver is child
                   for e in events)
        assert events[0].intended is shared
        assert events[1].intended is parent_only

    def test_unresolvable_argument_has_no_intent(self, setting):
        registry, parent, child, _ = setting
        events = argument_events(registry, parent, child, ["missing"])
        assert events[0].intended is None


class TestEvaluateRemoteExec:
    def test_full_coherence(self, setting):
        registry, parent, child, _ = setting
        report = evaluate_remote_exec(registry, parent, child, ["shared"])
        assert report.total == 1
        assert report.coherent == 1
        assert report.coherence_rate == 1.0

    def test_conflicting_binding_counts_incoherent(self, setting):
        registry, parent, child, _ = setting
        report = evaluate_remote_exec(registry, parent, child,
                                      ["shared", "n"])
        assert report.coherent == 1
        assert report.incoherent == 1
        assert report.coherence_rate == 0.5

    def test_unresolved_argument(self, setting):
        registry, parent, child, _ = setting
        report = evaluate_remote_exec(registry, parent, child,
                                      ["missing"])
        # The parent couldn't resolve it either: no intent, and the
        # child's resolution comes up undefined.
        assert report.unresolved == 1
        assert report.coherence_rate == 0.0

    def test_weak_equivalence(self, setting):
        registry, parent, child, (_, parent_only, childs_own) = setting
        replicas = {parent_only.uid, childs_own.uid}
        report = evaluate_remote_exec(
            registry, parent, child, ["n"],
            equivalence=lambda x, y: (x is y
                                      or {x.uid, y.uid} <= replicas))
        assert report.weakly_coherent == 1
        assert report.coherence_rate == 1.0

    def test_empty_arguments(self, setting):
        registry, parent, child, _ = setting
        report = evaluate_remote_exec(registry, parent, child, [])
        assert report.total == 0
        assert report.coherence_rate == 1.0

    def test_label_default_and_row(self, setting):
        registry, parent, child, _ = setting
        report = evaluate_remote_exec(registry, parent, child, ["shared"])
        assert report.label == "parent→child"
        row = report.row()
        assert row[0] == "parent→child"
        assert row[-1] == 1.0
        assert "coherent" in str(report)
