"""Tests for the wire-protocol remote-execution facility (§6-II)."""

from __future__ import annotations

import pytest

from repro.errors import SchemeError
from repro.namespaces.perprocess import PerProcessSystem
from repro.remote.facility import RemoteExecFacility
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator


@pytest.fixture
def world():
    simulator = Simulator(seed=0)
    network = simulator.network("lan")
    system = PerProcessSystem(sigma=simulator.sigma)
    machines = {}
    for label in ("workstation", "server"):
        system.add_machine(label)
        machines[label] = simulator.machine(network, label)
    system.machine_tree("workstation").mkfile("src/prog.c")
    system.machine_tree("server").mkfile("data/results")
    facility = RemoteExecFacility(simulator, system, timeout=10.0)
    for label, machine in machines.items():
        facility.host_machine(label, machine)
    parent_process = simulator.spawn(machines["workstation"], "make")
    parent = system.spawn("workstation", "make",
                          mounts=[("home", "workstation")],
                          activity=parent_process)
    return simulator, system, facility, parent, parent_process, machines


def run_request(simulator, facility, parent, parent_process,
                target="server", arguments=("/home/src/prog.c",)):
    outcomes = []
    facility.request(parent, parent_process, target, "cc",
                     list(arguments), outcomes.append)
    simulator.run()
    assert len(outcomes) == 1
    return outcomes[0]


class TestHappyPath:
    def test_child_created_remotely(self, world):
        simulator, system, facility, parent, process, machines = world
        outcome = run_request(simulator, facility, parent, process)
        assert outcome.ok
        assert outcome.child.label == "cc"
        assert system.namespace_of(outcome.child) is not None

    def test_arguments_resolve_to_parent_meaning(self, world):
        simulator, system, facility, parent, process, _ = world
        outcome = run_request(simulator, facility, parent, process)
        intended = system.resolve_for(parent, "/home/src/prog.c")
        assert outcome.resolved_arguments["/home/src/prog.c"] is intended

    def test_matches_scheme_level_remote_spawn(self, world):
        simulator, system, facility, parent, process, _ = world
        outcome = run_request(simulator, facility, parent, process)
        reference = system.remote_spawn(parent, "server", "ref")
        wire_child = outcome.child
        for probe in ("/home/src/prog.c", "/local/data/results"):
            assert system.resolve_for(wire_child, probe) is \
                system.resolve_for(reference, probe)

    def test_child_sees_local_machine(self, world):
        simulator, system, facility, parent, process, _ = world
        outcome = run_request(simulator, facility, parent, process)
        assert system.resolve_for(outcome.child,
                                  "/local/data/results").is_defined()

    def test_latency_measured(self, world):
        simulator, system, facility, parent, process, _ = world
        outcome = run_request(simulator, facility, parent, process)
        assert outcome.latency == 2.0  # request + reply at latency 1.0

    def test_exec_on_own_machine(self, world):
        simulator, system, facility, parent, process, _ = world
        outcome = run_request(simulator, facility, parent, process,
                              target="workstation")
        assert outcome.ok
        assert outcome.child is not parent

    def test_multiple_concurrent_requests(self, world):
        simulator, system, facility, parent, process, _ = world
        outcomes = []
        for _ in range(3):
            facility.request(parent, process, "server", "job",
                             ["/home/src/prog.c"], outcomes.append)
        assert facility.outstanding() == 3
        simulator.run()
        assert len(outcomes) == 3
        assert facility.outstanding() == 0
        children = {o.child.uid for o in outcomes}
        assert len(children) == 3

    def test_later_namespace_changes_stay_private(self, world):
        simulator, system, facility, parent, process, _ = world
        outcome = run_request(simulator, facility, parent, process)
        system.namespace_of(outcome.child).detach("home")
        assert system.resolve_for(parent, "/home/src/prog.c").is_defined()


class TestFailures:
    def test_crashed_server_times_out(self, world):
        simulator, system, facility, parent, process, machines = world
        FailureInjector(simulator).crash_machine(machines["server"])
        outcome = run_request(simulator, facility, parent, process)
        assert outcome.failed
        assert outcome.reason == "timeout"
        assert outcome.child is None

    def test_unhosted_machine_rejected(self, world):
        simulator, system, facility, parent, process, _ = world
        system.add_machine("mars")
        with pytest.raises(SchemeError):
            facility.request(parent, process, "mars", "x", [],
                             lambda outcome: None)

    def test_unresolvable_argument_reported_as_undefined(self, world):
        simulator, system, facility, parent, process, _ = world
        outcome = run_request(simulator, facility, parent, process,
                              arguments=("/no/such/file",))
        assert outcome.ok
        assert not outcome.resolved_arguments["/no/such/file"].is_defined()

    def test_server_ignores_junk(self, world):
        simulator, system, facility, parent, process, machines = world
        server = facility._servers[id(machines["server"])]
        process.send(server.process, payload="junk")
        simulator.run()
        assert server.requests_served == 0
