"""Tests for the Pid data type (§6 Example 1)."""

from __future__ import annotations

import pytest

from repro.errors import AddressError
from repro.pqid.pid import Pid, Qualification, SELF_PID


class TestShapes:
    def test_the_four_paper_shapes(self):
        # (0,0,0), (0,0,l), (0,m,l), (n,m,l)
        assert Pid(0, 0, 0).qualification is Qualification.SELF
        assert Pid(0, 0, 5).qualification is Qualification.MACHINE
        assert Pid(0, 3, 5).qualification is Qualification.NETWORK
        assert Pid(2, 3, 5).qualification is Qualification.FULL

    def test_malformed_shapes_rejected(self):
        with pytest.raises(AddressError):
            Pid(1, 0, 5)   # network without machine
        with pytest.raises(AddressError):
            Pid(0, 3, 0)   # machine without local
        with pytest.raises(AddressError):
            Pid(1, 1, 0)

    def test_negative_components_rejected(self):
        with pytest.raises(AddressError):
            Pid(-1, 0, 0)

    def test_self_pid_constant(self):
        assert SELF_PID == Pid(0, 0, 0)
        assert SELF_PID.is_self()
        assert not SELF_PID.is_fully_qualified()

    def test_fully_qualified_predicate(self):
        assert Pid(1, 1, 1).is_fully_qualified()
        assert not Pid(0, 1, 1).is_fully_qualified()


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Pid(0, 0, 5) == Pid(0, 0, 5)
        assert len({Pid(0, 0, 5), Pid(0, 0, 5), Pid(0, 1, 5)}) == 2

    def test_ordering_by_components(self):
        assert Pid(0, 0, 1) < Pid(0, 0, 2) < Pid(0, 1, 1) < Pid(1, 1, 1)

    def test_immutable(self):
        pid = Pid(0, 0, 1)
        with pytest.raises(AttributeError):
            pid.laddr = 2  # type: ignore[misc]

    def test_as_tuple_and_str(self):
        pid = Pid(2, 3, 5)
        assert pid.as_tuple() == (2, 3, 5)
        assert str(pid) == "(2,3,5)"

    def test_qualification_ordering(self):
        assert Qualification.SELF < Qualification.MACHINE \
            < Qualification.NETWORK < Qualification.FULL
