"""Tests for pid wire policies and relocation survival (§6 Ex. 1)."""

from __future__ import annotations

import pytest

from repro.pqid.mapping import fully_qualify, qualify
from repro.pqid.relocation import PidReference, ReferenceTable
from repro.pqid.transport import (
    PidPolicy,
    exchange_outcome,
    send_pid,
)
from repro.sim.failures import FailureInjector
from repro.workloads.scenarios import build_pqid_population


@pytest.fixture
def population():
    return build_pqid_population(seed=3, n_networks=2,
                                 machines_per_network=2,
                                 processes_per_machine=2)


def cross_network_pair(population):
    sender = population.networks[0].machines()[0].processes()[0]
    receiver = population.networks[1].machines()[0].processes()[0]
    return sender, receiver


class TestPolicies:
    def test_mapped_exchange_is_coherent(self, population):
        sender, receiver = cross_network_pair(population)
        target = sender.machine.processes()[1]  # sender's neighbour
        exchange = send_pid(sender, receiver, target, PidPolicy.MAPPED)
        population.simulator.run()
        assert exchange_outcome(exchange) == "coherent"

    def test_raw_exchange_misinterprets(self, population):
        # The sender's machine-local pid means someone else (or no one)
        # in the receiver's context.
        sender, receiver = cross_network_pair(population)
        target = sender.machine.processes()[1]
        exchange = send_pid(sender, receiver, target, PidPolicy.RAW)
        population.simulator.run()
        assert exchange_outcome(exchange) in ("incoherent", "unresolved")

    def test_raw_misdirection_to_wrong_process(self, population):
        # laddr 2 exists on the receiver's machine too → misdirected.
        sender, receiver = cross_network_pair(population)
        target = sender.machine.processes()[1]
        exchange = send_pid(sender, receiver, target, PidPolicy.RAW)
        population.simulator.run()
        assert exchange_outcome(exchange) == "incoherent"

    def test_full_exchange_works_with_stable_addresses(self, population):
        sender, receiver = cross_network_pair(population)
        target = sender.machine.processes()[1]
        exchange = send_pid(sender, receiver, target, PidPolicy.FULL)
        population.simulator.run()
        assert exchange_outcome(exchange) == "coherent"

    def test_wire_pid_recorded(self, population):
        sender, receiver = cross_network_pair(population)
        target = sender.machine.processes()[1]
        exchange = send_pid(sender, receiver, target, PidPolicy.MAPPED)
        assert exchange.sent == qualify(target, sender)
        assert exchange.wire == qualify(target, receiver)

    def test_exchange_carries_message_payload(self, population):
        sender, receiver = cross_network_pair(population)
        target = sender.machine.processes()[1]
        exchange = send_pid(sender, receiver, target, PidPolicy.FULL)
        population.simulator.run()
        delivered = receiver.receive()
        assert delivered.payload["pid"] == exchange.wire


class TestReferenceTable:
    def test_reference_validity(self, population):
        holder = population.processes[0]
        target = population.processes[1]
        reference = PidReference(holder, qualify(target, holder), target)
        assert reference.is_valid()
        assert not reference.is_dangling()
        assert not reference.is_misdirected()

    def test_survival_of_empty_table(self):
        assert ReferenceTable().survival() == 1.0

    def test_counts_breakdown(self, population):
        holder = population.processes[0]
        neighbour = population.processes[1]
        table = ReferenceTable()
        table.add(holder, qualify(neighbour, holder), neighbour, "ok")
        table.add(holder, fully_qualify(neighbour), neighbour, "full")
        FailureInjector(population.simulator).renumber_machine(
            holder.machine, 70)
        counts = table.counts()
        assert counts["valid"] == 1       # (0,0,l) still fine
        assert counts["dangling"] == 1    # full pid went stale
        assert table.survival() == 0.5

    def test_misdirected_after_renumber_swap(self, population):
        # Renumber m2 to m1's old address: full pids to m1 processes
        # now reach same-laddr processes on m2 — misdirected.
        injector = FailureInjector(population.simulator)
        network = population.networks[0]
        m1, m2 = network.machines()[:2]
        observer = population.networks[1].machines()[0].processes()[0]
        target = m1.processes()[0]
        table = ReferenceTable()
        table.add(observer, fully_qualify(target), target, "full")
        old_maddr = m1.maddr
        injector.renumber_machine(m1, 80)
        injector.renumber_machine(m2, old_maddr)
        counts = table.counts()
        assert counts["misdirected"] == 1

    def test_subset_by_note(self, population):
        holder, target = population.processes[0], population.processes[1]
        table = ReferenceTable()
        table.add(holder, qualify(target, holder), target, "a")
        table.add(holder, qualify(target, holder), target, "b")
        assert len(table.subset("a")) == 1
        assert len(table) == 2


class TestRenumberingClaims:
    def test_machine_renumber_preserves_internal_connections(
            self, population):
        """The paper's headline claim, in isolation."""
        machine = population.machines[0]
        first, second = machine.processes()[:2]
        table = ReferenceTable()
        table.add(first, qualify(second, first), second, "internal")
        table.add(second, qualify(first, second), first, "internal")
        FailureInjector(population.simulator).renumber_machine(machine, 60)
        assert table.survival() == 1.0

    def test_network_renumber_preserves_intranet_connections(
            self, population):
        network = population.networks[0]
        processes = [p for m in network.machines()
                     for p in m.processes()]
        table = ReferenceTable()
        for holder in processes:
            for target in processes:
                if holder is not target:
                    table.add(holder, qualify(target, holder), target,
                              "intranet")
        FailureInjector(population.simulator).renumber_network(network, 77)
        assert table.survival() == 1.0

    def test_external_full_references_break(self, population):
        network = population.networks[0]
        outside = population.networks[1].machines()[0].processes()[0]
        inside = network.machines()[0].processes()[0]
        table = ReferenceTable()
        table.add(outside, fully_qualify(inside), inside, "external")
        FailureInjector(population.simulator).renumber_network(network, 78)
        assert table.survival() == 0.0
