"""Tests (incl. hypothesis properties) for pid resolution & mapping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pqid.mapping import fully_qualify, map_pid, qualify, resolve_pid
from repro.pqid.pid import Pid, Qualification, SELF_PID
from repro.workloads.scenarios import build_pqid_population


@pytest.fixture
def population():
    return build_pqid_population(seed=11, n_networks=2,
                                 machines_per_network=2,
                                 processes_per_machine=2)


class TestQualify:
    def test_self(self, population):
        process = population.processes[0]
        assert qualify(process, process) == SELF_PID

    def test_same_machine(self, population):
        a, b = population.processes[0], population.processes[1]
        assert a.machine is b.machine
        pid = qualify(b, a)
        assert pid.qualification is Qualification.MACHINE
        assert pid.laddr == b.laddr

    def test_same_network(self, population):
        a = population.processes[0]
        c = population.machines[1].processes()[0]
        pid = qualify(c, a)
        assert pid.qualification is Qualification.NETWORK

    def test_cross_network(self, population):
        a = population.processes[0]
        d = population.networks[1].machines()[0].processes()[0]
        pid = qualify(d, a)
        assert pid.qualification is Qualification.FULL

    def test_qualify_is_minimal(self, population):
        # For every pair, no shorter qualification resolves correctly.
        for holder in population.processes[:4]:
            for target in population.processes:
                pid = qualify(target, holder)
                assert resolve_pid(pid, holder) is target


class TestResolve:
    def test_self_pid(self, population):
        process = population.processes[0]
        assert resolve_pid(SELF_PID, process) is process

    def test_self_pid_of_dead_process(self, population):
        process = population.processes[0]
        process.exit()
        assert resolve_pid(SELF_PID, process) is None

    def test_dangling_machine_address(self, population):
        holder = population.processes[0]
        assert resolve_pid(Pid(0, 99, 1), holder) is None

    def test_dangling_network_address(self, population):
        holder = population.processes[0]
        assert resolve_pid(Pid(99, 1, 1), holder) is None

    def test_dangling_local_address(self, population):
        holder = population.processes[0]
        assert resolve_pid(Pid(0, 0, 99), holder) is None

    def test_dead_target_resolves_to_none(self, population):
        holder, target = population.processes[0], population.processes[1]
        pid = qualify(target, holder)
        target.exit()
        assert resolve_pid(pid, holder) is None

    def test_fully_qualify_reflects_current_address(self, population):
        target = population.processes[0]
        assert fully_qualify(target).as_tuple() == target.full_address


class TestMapPid:
    def test_mapping_preserves_denotation(self, population):
        a = population.processes[0]
        d = population.networks[1].machines()[0].processes()[0]
        for target in population.processes:
            pid = qualify(target, a)
            mapped = map_pid(pid, a, d)
            assert resolve_pid(mapped, d) is target

    def test_mapping_self_pid(self, population):
        a, b = population.processes[0], population.processes[2]
        mapped = map_pid(SELF_PID, a, b)
        assert resolve_pid(mapped, b) is a

    def test_unresolvable_pid_maps_to_none(self, population):
        a, b = population.processes[0], population.processes[1]
        assert map_pid(Pid(0, 99, 1), a, b) is None

    def test_mapping_minimises_for_receiver(self, population):
        # A pid for the receiver's own neighbour comes out
        # machine-qualified even if it arrived network-qualified.
        a = population.processes[0]
        c0, c1 = population.machines[1].processes()[:2]
        pid = qualify(c1, a)                # network-level for a
        mapped = map_pid(pid, a, c0)        # c0 is c1's machine-mate
        assert mapped.qualification is Qualification.MACHINE


class TestMappingProperty:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**32), st.data())
    def test_roundtrip_over_random_topologies(self, seed, data):
        population = build_pqid_population(
            seed=seed % 1000,
            n_networks=data.draw(st.integers(1, 3)),
            machines_per_network=data.draw(st.integers(1, 3)),
            processes_per_machine=data.draw(st.integers(1, 3)))
        processes = population.processes
        indices = st.integers(0, len(processes) - 1)
        sender = processes[data.draw(indices)]
        receiver = processes[data.draw(indices)]
        target = processes[data.draw(indices)]
        pid = qualify(target, sender)
        mapped = map_pid(pid, sender, receiver)
        # The invariant: mapping preserves the denoted process.
        assert resolve_pid(mapped, receiver) is target
        # And the mapped pid is itself minimal for the receiver.
        assert mapped == qualify(target, receiver)
