"""Clock-parameterized retry machinery: regression + parity.

PR 10 lets a :class:`CircuitBreaker` carry its own ``now()`` source
(a transport clock) so real-backend callers need not thread time
through every call.  These tests pin that (a) the legacy explicit-now
API is bit-identical to before, (b) clock-bound and explicit driving
produce identical state machines, and (c) the seeded jitter schedule
of :class:`RetryPolicy` is unchanged (golden digests per seed).
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.errors import SimulationError
from repro.nameservice.retry import BreakerState, CircuitBreaker, RetryPolicy
from repro.sim.kernel import Simulator
from repro.transport.base import as_transport

#: sha256 over 32 default-policy backoff draws, 16 hex chars — any
#: change to the jitter math or draw order changes these.
GOLDEN_BACKOFF_DIGESTS = {
    0: "52f602d09e6e7ea7",
    1: "d2f2da6acce2e333",
    7: "b583b832c9380a04",
    42: "396321c1aa3fecf4",
}


def backoff_digest(seed: int) -> str:
    rng = random.Random(seed)
    policy = RetryPolicy()
    draws = [policy.backoff(attempt, rng)
             for _ in range(4) for attempt in range(1, 9)]
    return hashlib.sha256(
        ",".join(f"{draw:.17g}" for draw in draws).encode()
    ).hexdigest()[:16]


class TestJitterDigests:
    @pytest.mark.parametrize("seed", sorted(GOLDEN_BACKOFF_DIGESTS))
    def test_seeded_schedule_unchanged(self, seed):
        assert backoff_digest(seed) == GOLDEN_BACKOFF_DIGESTS[seed]

    def test_kernel_rng_is_the_transport_rng(self):
        """The seam hands the protocol the *kernel's* RNG, so sim
        backoff schedules stay deterministic per kernel seed."""
        simulator = Simulator(seed=3)
        assert as_transport(simulator).rng is simulator.rng


def drive(breaker, events):
    """Apply (op, time) events; returns the visible outcomes."""
    out = []
    for op, time_ in events:
        if op == "allow":
            out.append(breaker.allow(time_))
        elif op == "fail":
            breaker.record_failure(time_)
        elif op == "ok":
            breaker.record_success(time_)
    out.append((breaker.state, breaker.transitions,
                breaker.consecutive_failures))
    return out


SCRIPT = [("fail", 1.0), ("fail", 2.0), ("allow", 3.0), ("fail", 4.0),
          ("allow", 5.0), ("allow", 40.0), ("fail", 41.0),
          ("allow", 80.0), ("ok", 81.0), ("allow", 82.0)]


class TestClockBinding:
    def test_explicit_now_still_works_without_clock(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=30.0)
        outcome = drive(breaker, SCRIPT)
        assert outcome[-1][0] is BreakerState.CLOSED

    def test_no_clock_and_no_now_raises(self):
        breaker = CircuitBreaker()
        with pytest.raises(SimulationError):
            breaker.allow()
        with pytest.raises(SimulationError):
            breaker.record_failure()

    def test_clock_bound_matches_explicit_now(self):
        """The same script driven two ways lands in the same states,
        transition counts and allow decisions."""
        current = {"t": 0.0}
        bound = CircuitBreaker(failure_threshold=3, cooldown=30.0,
                               clock=lambda: current["t"])
        explicit = CircuitBreaker(failure_threshold=3, cooldown=30.0)
        bound_out, explicit_out = [], []
        for op, time_ in SCRIPT:
            current["t"] = time_
            if op == "allow":
                bound_out.append(bound.allow())          # clock-driven
                explicit_out.append(explicit.allow(time_))
            elif op == "fail":
                bound.record_failure()
                explicit.record_failure(time_)
            else:
                bound.record_success()
                explicit.record_success(time_)
        assert bound_out == explicit_out
        assert bound.state is explicit.state
        assert bound.transitions == explicit.transitions
        assert bound.consecutive_failures == explicit.consecutive_failures

    def test_explicit_now_overrides_bound_clock(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0,
                                 clock=lambda: 0.0)
        breaker.record_failure(5.0)       # explicit trip at t=5
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(6.0)     # explicit: cooldown not over
        assert breaker.allow(20.0)        # explicit: cooldown elapsed

    def test_transport_clock_binds_directly(self):
        simulator = Simulator(seed=0)
        transport = as_transport(simulator)
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                                 clock=transport.now)
        breaker.record_failure()          # trips at virtual t=0
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        simulator.schedule(6.0, lambda: None)
        simulator.run()                   # virtual time passes
        assert breaker.allow()            # half-open probe allowed
        assert breaker.state is BreakerState.HALF_OPEN
