"""SimTransport: the seam over the deterministic kernel.

Pins the adapter's contracts — endpoint/send/timer/clock delegate to
the kernel unchanged, trace context attaches after ``send`` returns,
and the protocol's lookup spans carry the ``transport`` label.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.protocol import AsyncNameClient, NameLookupServer
from repro.obs import Instrumentation
from repro.sim.kernel import Simulator
from repro.transport.base import Transport, as_transport
from repro.transport.sim import SimEndpoint, SimTransport


@pytest.fixture
def sim():
    return Simulator(seed=0)


@pytest.fixture
def machine(sim):
    return sim.machine(sim.network("lan"), "m1")


class TestAsTransport:
    def test_wraps_simulator_once(self, sim):
        transport = as_transport(sim)
        assert isinstance(transport, SimTransport)
        assert as_transport(sim) is transport  # cached per kernel

    def test_passes_transports_through(self, sim):
        transport = as_transport(sim)
        assert as_transport(transport) is transport

    def test_rejects_other_substrates(self):
        with pytest.raises(TypeError):
            as_transport(object())

    def test_surfaces_kernel_clock_rng_obs(self, sim):
        transport = as_transport(sim)
        assert transport.kind == "sim"
        assert transport.rng is sim.rng
        assert transport.obs is sim.obs
        sim.schedule(3.0, lambda: None)
        sim.run()
        assert transport.now() == sim.clock.now == 3.0


class TestEndpoints:
    def test_endpoint_spawns_on_machine(self, sim, machine):
        endpoint = as_transport(sim).endpoint(machine, "svc")
        assert isinstance(endpoint, SimEndpoint)
        assert endpoint.label == "svc"
        assert endpoint.node is machine
        assert endpoint.process.machine is machine

    def test_adopt_wraps_existing_process(self, sim, machine):
        process = sim.spawn(machine, "existing")
        endpoint = as_transport(sim).adopt(process)
        assert endpoint.process is process

    def test_endpoint_rejects_non_machine(self, sim):
        with pytest.raises(SimulationError):
            as_transport(sim).endpoint("not-a-machine", "x")

    def test_send_between_endpoints(self, sim, machine):
        transport = as_transport(sim)
        a = transport.endpoint(machine, "a")
        b = transport.endpoint(machine, "b")
        got = []
        b.on_message(lambda endpoint, envelope:
                     got.append((endpoint, envelope.payload)))
        a.send(b, payload={"hi": 1})
        sim.run()
        assert got == [(b, {"hi": 1})]

    def test_send_accepts_raw_process_target(self, sim, machine):
        # A received envelope's sender is a SimProcess; replies must
        # address it directly.
        transport = as_transport(sim)
        a = transport.endpoint(machine, "a")
        process = sim.spawn(machine, "raw")
        a.send(process, payload="ping")
        sim.run()
        assert process.receive().payload == "ping"

    def test_send_rejects_foreign_target(self, sim, machine):
        endpoint = as_transport(sim).endpoint(machine, "a")
        with pytest.raises(SimulationError):
            endpoint.send("somewhere", payload="x")

    def test_trace_context_attaches_after_send(self, sim, machine):
        transport = as_transport(sim)
        a = transport.endpoint(machine, "a")
        b = transport.endpoint(machine, "b")
        seen = []
        b.on_message(lambda _e, envelope: seen.append(
            (envelope.trace_id, envelope.parent_span_id)))
        envelope = a.send(b, payload="traced")
        envelope.trace_id = "T1"
        envelope.parent_span_id = "S1"
        sim.run()
        assert seen == [("T1", "S1")]

    def test_timer_schedule_and_cancel(self, sim):
        transport = as_transport(sim)
        fired = []
        transport.schedule(1.0, lambda: fired.append("a"))
        timer = transport.schedule(2.0, lambda: fired.append("b"))
        timer.cancel()
        sim.run()
        assert fired == ["a"]


class TestProtocolOverSeam:
    def make_world(self):
        obs = Instrumentation()
        sim = Simulator(seed=0, obs=obs)
        network = sim.network("lan")
        client_machine = sim.machine(network, "client-m")
        server_machine = sim.machine(network, "server-m")
        tree = NamingTree("root", sigma=sim.sigma, parent_links=True)
        tree.mkdir("a/b")
        leaf = tree.mkfile("a/b/leaf")
        placement = DirectoryPlacement()
        placement.place(tree.root, client_machine)
        placement.place(tree.directory("a"), server_machine)
        placement.place(tree.directory("a/b"), server_machine)
        servers = {id(machine): NameLookupServer(sim, machine)
                   for machine in (client_machine, server_machine)}
        process = sim.spawn(client_machine, "client")
        client = AsyncNameClient(sim, placement, servers, process)
        return sim, client, ProcessContext(tree.root), leaf, obs

    def test_client_exposes_transport_and_process(self):
        sim, client, *_ = self.make_world()
        assert isinstance(client.transport, SimTransport)
        assert isinstance(client.transport, Transport)
        assert client.process is client.endpoint.process
        assert client.simulator is sim

    def test_lookup_span_carries_transport_label(self):
        sim, client, context, leaf, obs = self.make_world()
        outcomes = []
        client.resolve(context, "/a/b/leaf", outcomes.append)
        sim.run()
        assert outcomes[0].entity is leaf
        spans = obs.tracer.of_kind("lookup")
        assert spans and spans[-1].attrs["transport"] == "sim"
        assert spans[-1].attrs["client"] == "client"

    def test_server_exposes_endpoint_and_process(self):
        sim, client, context, leaf, _obs = self.make_world()
        server = next(iter(client.servers.values()))
        assert server.process is server.endpoint.process
        assert server.process.alive
