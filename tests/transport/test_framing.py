"""Wire framing: length-prefixed JSON survives arbitrary chunking.

The core property (hypothesis-driven): any sequence of JSON payloads,
encoded to a frame stream and split at *every possible byte boundary*,
decodes back to exactly the same payloads in order.  TCP guarantees
byte order but not framing, so the decoder must not care where reads
land.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.framing import (MAX_FRAME, FrameDecoder, FrameError,
                                     dumps, encode_frame, iter_frames,
                                     loads)

json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-2**53, max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=32),
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(st.text(max_size=8), children,
                                        max_size=4)),
    max_leaves=16)


class TestRoundTrip:
    @given(payloads=st.lists(json_values, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_byte_at_a_time(self, payloads):
        """Feeding one byte at a time hits every split boundary."""
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i:i + 1]))
        assert out == loads(dumps(payloads))  # json-normalized equality
        assert decoder.pending_bytes == 0
        assert decoder.frames_decoded == len(payloads)

    @given(payloads=st.lists(json_values, min_size=1, max_size=4),
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_chunking(self, payloads, data):
        """Hypothesis picks the chunk boundaries."""
        stream = b"".join(encode_frame(p) for p in payloads)
        cuts = sorted(data.draw(st.lists(
            st.integers(min_value=0, max_value=len(stream)),
            max_size=8)))
        decoder = FrameDecoder()
        out, last = [], 0
        for cut in cuts + [len(stream)]:
            out.extend(decoder.feed(stream[last:cut]))
            last = cut
        assert out == loads(dumps(payloads))
        assert decoder.pending_bytes == 0

    def test_every_boundary_exhaustively(self):
        """Deterministic two-frame stream, split at every single
        offset into exactly two reads."""
        frames = [{"lookup": {"request_id": 1, "directory": 7,
                              "component": "usr"}},
                  {"reply": {"request_id": 1, "entity": None}}]
        stream = b"".join(encode_frame(f) for f in frames)
        for cut in range(len(stream) + 1):
            decoder = FrameDecoder()
            out = decoder.feed(stream[:cut]) + decoder.feed(stream[cut:])
            assert out == frames, f"failed at byte boundary {cut}"

    def test_canonical_bytes_are_stable(self):
        """Same payload, same bytes — dict ordering never leaks."""
        a = encode_frame({"b": 1, "a": [2, {"z": 3, "y": 4}]})
        b = encode_frame({"a": [2, {"y": 4, "z": 3}], "b": 1})
        assert a == b


class TestErrors:
    def test_oversize_encode_rejected(self):
        with pytest.raises(FrameError):
            encode_frame("x" * (MAX_FRAME + 1))

    def test_oversize_length_prefix_rejected(self):
        decoder = FrameDecoder(max_frame=64)
        with pytest.raises(FrameError):
            decoder.feed((1 << 20).to_bytes(4, "big"))

    def test_malformed_body_rejected(self):
        body = b"not json at all"
        with pytest.raises(FrameError):
            FrameDecoder().feed(len(body).to_bytes(4, "big") + body)

    def test_iter_frames_trailing_bytes(self):
        stream = encode_frame(1) + b"\x00\x00"
        with pytest.raises(FrameError):
            list(iter_frames(stream))

    def test_iter_frames_clean_stream(self):
        stream = encode_frame(1) + encode_frame([2, "three"])
        assert list(iter_frames(stream)) == [1, [2, "three"]]
