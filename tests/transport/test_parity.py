"""Transport parity: one script, two substrates, identical behaviour.

The same seeded lookup/rebind/invalidate script runs over (a) the
simulator transport — placement forces every directory step through a
``NameLookupServer`` on a remote machine — and (b) the asyncio
transport — a real ``NamingService`` on a localhost socket.  The
*identical* protocol code must produce:

* identical resolution outcomes per lookup (defined-ness, failure
  flag, step count, resolved entity label), and
* identical coherence-audit verdict counts from a
  ``CoherenceAuditor`` wired to each substrate's server — with zero
  violations on either.

The script is generated from a seed so the suite covers a different
op mix per seed without losing reproducibility.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.model.context import Context, context_object
from repro.model.entities import Entity, ObjectEntity
from repro.model.names import ROOT_NAME
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.protocol import AsyncNameClient, NameLookupServer
from repro.obs.audit import CoherenceAuditor
from repro.sim.kernel import Simulator
from repro.transport.service import NamingService, RemoteNameClient
from repro.transport.wire import remote_uid_of

SVC_NAMES = 8


def build_namespace() -> Entity:
    """The same tree both substrates serve (fresh entities each
    call; labels, not uids, are the cross-substrate identity)."""
    root = context_object("root")
    usr = context_object("usr")
    bin_ = context_object("bin")
    svc = context_object("svc")
    root.state.bind("usr", usr)
    root.state.bind("svc", svc)
    usr.state.bind("bin", bin_)
    bin_.state.bind("python", ObjectEntity("python3"))
    for index in range(SVC_NAMES):
        svc.state.bind(f"name-{index}", ObjectEntity(f"object-{index}"))
    return root


def make_script(seed: int) -> list[tuple]:
    """A seeded op list: ("lookup", path) | ("rebind", path, label,
    dir?).  Rebinds target known paths; lookups mix live, rebound-away
    and never-bound names."""
    rng = random.Random(seed)
    lookup_pool = (["/usr/bin/python", "/usr", "/usr/bin/ghost",
                    "/nope", "/svc"]
                   + [f"/svc/name-{i}" for i in range(SVC_NAMES)])
    script: list[tuple] = [("lookup", "/usr/bin/python")]
    rebinds = [(["svc", f"name-{rng.randrange(SVC_NAMES)}"],
                "rebound-leaf", False),
               (["usr", "bin"], "bin-v2", True),
               (["usr"], "usr-v2", True)]
    for rebind in rebinds:
        for _ in range(4):
            script.append(("lookup", rng.choice(lookup_pool)))
        script.append(("rebind", *rebind))
        for _ in range(4):
            script.append(("lookup", rng.choice(lookup_pool)))
    return script


def outcome_row(name: str, outcome) -> tuple:
    return (name, outcome.ok, outcome.failed, outcome.reason,
            outcome.steps,
            outcome.entity.label if outcome.entity.is_defined() else None)


def placed_directories(root: Entity) -> list[Entity]:
    out, stack = [], [root]
    while stack:
        entity = stack.pop()
        if entity.is_context_object():
            out.append(entity)
            stack.extend(entity.state.bindings.values())
    return out


def rebind_sim(root: Entity, path: list, label: str, directory: bool,
               auditor: CoherenceAuditor, now: float,
               placement: DirectoryPlacement, machine) -> Entity:
    """Mirror of ``NamingService._rebind`` for the sim substrate; new
    directories get placed so post-rebind steps stay remote (and
    audited) exactly as they do over the socket."""
    parent = root
    for component in path[:-1]:
        parent = parent.state(component)
    component = path[-1]
    old = parent.state(component)
    new = context_object(label) if directory else ObjectEntity(label)
    parent.state.bind(component, new)
    if directory:
        placement.place(new, machine)
    auditor.record_write(parent, component, old, new, now, 0)
    return new


def run_script_sim(script, seed: int):
    """The script over SimTransport: every directory hosted remotely,
    so each component step is a real request/reply exchange."""
    auditor = CoherenceAuditor()
    simulator = Simulator(seed=seed)
    network = simulator.network("lan")
    client_machine = simulator.machine(network, "client-m")
    server_machine = simulator.machine(network, "server-m")
    root = build_namespace()
    placement = DirectoryPlacement()
    for directory in placed_directories(root):
        placement.place(directory, server_machine)
    server = NameLookupServer(simulator, server_machine)
    server.auditor = auditor
    servers = {id(server_machine): server}
    process = simulator.spawn(client_machine, "client")
    client = AsyncNameClient(simulator, placement, servers, process)
    start = Context(label="start")
    start.bind(ROOT_NAME, root)
    rows = []
    for op in script:
        if op[0] == "lookup":
            outcomes = []
            client.resolve(start, op[1], outcomes.append)
            simulator.run()
            rows.append(outcome_row(op[1], outcomes[0]))
        else:
            _, path, label, directory = op
            rebind_sim(root, path, label, directory, auditor,
                       simulator.clock.now, placement, server_machine)
    return rows, auditor


def run_script_asyncio(script, seed: int):
    """The same script over real localhost sockets."""
    auditor = CoherenceAuditor()

    async def scenario():
        service = NamingService(build_namespace(), seed=seed,
                                auditor=auditor)
        address = await service.start()
        client = RemoteNameClient([(address.host, address.port)],
                                  seed=seed)
        await client.connect()
        rows = []
        try:
            for op in script:
                if op[0] == "lookup":
                    outcome = await client.resolve(op[1])
                    rows.append(outcome_row(op[1], outcome))
                else:
                    _, path, label, directory = op
                    await client.rebind(path, label=label,
                                        directory=directory)
        finally:
            await client.aclose()
            await service.aclose()
        return rows

    return asyncio.run(scenario()), auditor


@pytest.mark.parametrize("seed", [0, 1, 7, 42])
def test_same_script_same_outcomes_and_verdicts(seed):
    script = make_script(seed)
    sim_rows, sim_auditor = run_script_sim(script, seed)
    aio_rows, aio_auditor = run_script_asyncio(script, seed)

    assert aio_rows == sim_rows

    # Audit parity: every served step audited, identical verdict
    # tallies, zero violations on either substrate.
    assert sim_auditor.observed == aio_auditor.observed > 0
    assert sim_auditor.by_verdict == aio_auditor.by_verdict
    assert sim_auditor.writes == aio_auditor.writes == 3
    assert sim_auditor.by_verdict["violation"] == 0
    assert len(sim_auditor.violations) == 0
    assert len(aio_auditor.violations) == 0


def test_script_is_seed_sensitive_but_reproducible():
    assert make_script(0) == make_script(0)
    assert make_script(0) != make_script(1)


def test_remote_uid_identity_matches_server_entity():
    """The proxy a lookup returns names the same server entity the
    sim walk returns — checked through the wire uid."""
    async def scenario():
        root = build_namespace()
        python = root.state("usr").state("bin").state("python")
        service = NamingService(root)
        address = await service.start()
        client = RemoteNameClient([(address.host, address.port)])
        await client.connect()
        try:
            outcome = await client.resolve("/usr/bin/python")
            assert remote_uid_of(outcome.entity) == python.uid
        finally:
            await client.aclose()
            await service.aclose()
    asyncio.run(scenario())
