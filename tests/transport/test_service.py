"""The socket naming service end-to-end, in-process.

The unchanged ``AsyncNameClient``/``NameLookupServer`` code resolving
real names over real localhost TCP: lookups, undefined names, lease
grant → rebind → break-callback → ack, and replica failover on the
resend path.
"""

from __future__ import annotations

import asyncio
import socket

from repro.model.context import context_object
from repro.model.entities import ObjectEntity
from repro.nameservice.retry import RetryPolicy
from repro.transport.service import NamingService, RemoteNameClient

FAST_RETRY = RetryPolicy(max_attempts=3, base_backoff=0.02,
                         max_backoff=0.1)


def build_root(marker: str = "python3"):
    root = context_object("root")
    usr = context_object("usr")
    bin_ = context_object("bin")
    root.state.bind("usr", usr)
    usr.state.bind("bin", bin_)
    bin_.state.bind("python", ObjectEntity(marker))
    root.state.bind("etc", context_object("etc"))
    return root


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def run(coroutine):
    return asyncio.run(coroutine)


async def start_pair(**client_kwargs):
    service = NamingService(build_root(), retry_policy=FAST_RETRY)
    address = await service.start()
    client = RemoteNameClient([(address.host, address.port)],
                              retry_policy=FAST_RETRY, **client_kwargs)
    await client.connect()
    return service, client


class TestLookups:
    def test_resolves_over_localhost(self):
        async def scenario():
            service, client = await start_pair()
            try:
                outcome = await client.resolve("/usr/bin/python")
                assert outcome.ok
                assert outcome.entity.label == "python3"
                assert outcome.steps == 4  # root + usr + bin + python
                assert service.server.requests_served == 3
            finally:
                await client.aclose()
                await service.aclose()
        run(scenario())

    def test_missing_name_is_undefined_not_failed(self):
        async def scenario():
            service, client = await start_pair()
            try:
                outcome = await client.resolve("/usr/bin/ghost")
                assert not outcome.ok and not outcome.failed
                assert not outcome.entity.is_defined()
            finally:
                await client.aclose()
                await service.aclose()
        run(scenario())

    def test_proxies_are_stable_across_lookups(self):
        async def scenario():
            service, client = await start_pair()
            try:
                first = (await client.resolve("/usr/bin/python")).entity
                second = (await client.resolve("/usr/bin/python")).entity
                assert first is second
            finally:
                await client.aclose()
                await service.aclose()
        run(scenario())

    def test_concurrent_lookups_interleave(self):
        async def scenario():
            service, client = await start_pair()
            try:
                outcomes = await asyncio.gather(
                    client.resolve("/usr/bin/python"),
                    client.resolve("/etc"),
                    client.resolve("/usr/bin/nope"))
                assert [o.ok for o in outcomes] == [True, True, False]
                assert client.client.outstanding() == 0
            finally:
                await client.aclose()
                await service.aclose()
        run(scenario())


class TestLeases:
    def test_rebind_breaks_lease_over_the_socket(self):
        async def scenario():
            service, client = await start_pair()
            try:
                root = client.root
                dep = client.dep_for(root, "usr")
                await client.lease(dep)
                now = client.transport.now()
                assert client.lease_table.fresh(dep, now)
                report = await client.rebind(["usr"], label="usr-v2",
                                             directory=True)
                assert report["notified"] == 1
                assert report["broken"] == 0
                assert client.client.lease_callbacks == 1
                assert not client.lease_table.fresh(
                    dep, client.transport.now())
                assert service.leases.stats()["acks"] == 1
                # The rebound directory is visible; the old subtree
                # is gone.
                fresh = await client.resolve("/usr")
                assert fresh.ok and fresh.entity.label == "usr-v2"
                stale = await client.resolve("/usr/bin/python")
                assert not stale.ok
            finally:
                await client.aclose()
                await service.aclose()
        run(scenario())

    def test_departed_holder_breaks_not_hangs(self):
        """A holder that disconnected can't ack: the fan-out must
        break its lease after the retry budget, not wait forever."""
        async def scenario():
            service = NamingService(
                build_root(), ack_timeout=0.05,
                retry_policy=RetryPolicy(max_attempts=2,
                                         base_backoff=0.01,
                                         max_backoff=0.02))
            address = await service.start()
            holder = RemoteNameClient([(address.host, address.port)],
                                      retry_policy=FAST_RETRY,
                                      label="holder")
            await holder.connect()
            dep = holder.dep_for(holder.root, "usr")
            await holder.lease(dep)
            await holder.aclose()       # gone — break cannot deliver
            await asyncio.sleep(0.05)

            driver = RemoteNameClient([(address.host, address.port)],
                                      retry_policy=FAST_RETRY,
                                      label="driver")
            await driver.connect()
            try:
                report = await driver.rebind(["usr"], label="usr-v2",
                                             directory=True)
                assert report["notified"] == 0
                assert report["broken"] == 1
                assert service.leases.stats()["breaks"] == 1
            finally:
                await driver.aclose()
                await service.aclose()
        run(scenario())


class TestFailover:
    def test_resend_fails_over_to_live_replica(self):
        """Primary address is dead: the first step times out, the
        resend retargets to the live replica, the lookup completes."""
        async def scenario():
            service = NamingService(build_root(),
                                    retry_policy=FAST_RETRY)
            address = await service.start()
            dead = ("127.0.0.1", free_port())
            client = RemoteNameClient(
                [dead, (address.host, address.port)],
                timeout=0.1, max_retries=3, retry_policy=FAST_RETRY)
            # connect() must also try the replica list in order; the
            # dead primary would hang hello, so connect to the live
            # one directly and splice the dead address in front of
            # the router for the lookup path.
            live = RemoteNameClient([(address.host, address.port)],
                                    timeout=0.1, max_retries=3,
                                    retry_policy=FAST_RETRY)
            await live.connect()
            live.router.addresses.insert(
                0, type(live.router.addresses[0])(
                    dead[0], dead[1], live.router.addresses[0].label))
            live.router.cursor = 0
            try:
                outcome = await live.resolve("/usr/bin/python",
                                             timeout=30)
                assert outcome.ok
                assert outcome.entity.label == "python3"
                assert outcome.retries >= 1
                assert live.router.failovers >= 1
                assert live.transport.frames_dropped >= 1
            finally:
                await live.aclose()
                await client.aclose()
                await service.aclose()
        run(scenario())
