"""Wire codec: entities, proxies and lease keys across the boundary.

The invariants the socket protocol rests on: server-side uids survive
the round trip (proxies are stable per remote uid, so identity
comparisons behave locally), unknown uids degrade to ``⊥E`` rather
than crashing, and lease dependency keys re-tuple exactly.
"""

from __future__ import annotations

from repro.model.context import Context, context_object
from repro.model.entities import ObjectEntity, UNDEFINED_ENTITY
from repro.transport.framing import dumps, loads
from repro.transport.wire import (DirectoryRegistry, EntityProxyCache,
                                  RemoteContext, RemoteDirectory,
                                  RemoteEntity, WireCodec,
                                  describe_entity, remote_uid_of)


def build_tree():
    root = context_object("root")
    usr = context_object("usr")
    root.state.bind("usr", usr)
    usr.state.bind("python", ObjectEntity("python3"))
    return root, usr


class TestDescriptors:
    def test_describe_undefined_is_none(self):
        assert describe_entity(None) is None
        assert describe_entity(UNDEFINED_ENTITY) is None

    def test_describe_carries_uid_label_dirness(self):
        root, usr = build_tree()
        d = describe_entity(usr)
        assert d == {"uid": usr.uid, "label": "usr", "dir": True}
        leaf = usr.state("python")
        assert describe_entity(leaf) == {
            "uid": leaf.uid, "label": "python3", "dir": False}

    def test_describe_proxy_reuses_remote_uid(self):
        proxy = RemoteDirectory(1234, "d")
        d = describe_entity(proxy)
        assert d["uid"] == 1234 and d["dir"]
        assert remote_uid_of(proxy) == 1234

    def test_descriptors_are_json_framable(self):
        root, usr = build_tree()
        d = describe_entity(usr)
        assert loads(dumps(d)) == d


class TestProxies:
    def test_cache_is_stable_per_uid(self):
        cache = EntityProxyCache()
        a = cache.proxy({"uid": 7, "label": "x", "dir": True})
        b = cache.proxy({"uid": 7, "label": "x", "dir": True})
        assert a is b
        assert len(cache) == 1

    def test_directory_proxy_walks_like_a_context(self):
        proxy = EntityProxyCache().proxy(
            {"uid": 9, "label": "d", "dir": True})
        assert isinstance(proxy, RemoteDirectory)
        assert proxy.is_context_object()
        assert isinstance(proxy.state, Context)
        assert isinstance(proxy.state, RemoteContext)
        # A remote context binds nothing locally: every local read
        # is ⊥E (the owning server answers the real bindings).
        assert not proxy.state("anything").is_defined()

    def test_leaf_proxy_is_not_a_directory(self):
        proxy = EntityProxyCache().proxy(
            {"uid": 3, "label": "f", "dir": False})
        assert isinstance(proxy, RemoteEntity)
        assert not isinstance(proxy, RemoteDirectory)
        assert not proxy.is_context_object()

    def test_none_descriptor_is_undefined(self):
        assert EntityProxyCache().proxy(None) is UNDEFINED_ENTITY

    def test_local_uid_never_crosses_the_wire(self):
        proxy = RemoteEntity(42, "x")
        assert proxy.uid != 42 or proxy.remote_uid == 42
        assert remote_uid_of(proxy) == 42


class TestRegistry:
    def test_register_tree_walks_context_states(self):
        root, usr = build_tree()
        registry = DirectoryRegistry()
        assert registry.register_tree(root) == 3  # root, usr, python
        assert registry.get(usr.uid) is usr

    def test_unknown_uid_degrades_to_undefined(self):
        registry = DirectoryRegistry()
        assert registry.get(999_999) is UNDEFINED_ENTITY


class TestCodec:
    def test_lookup_request_round_trip(self):
        root, usr = build_tree()
        registry = DirectoryRegistry()
        registry.register_tree(root)
        server = WireCodec(registry=registry)
        client = WireCodec(proxies=EntityProxyCache())
        proxy = RemoteDirectory(usr.uid, "usr")
        request = {"lookup": {"request_id": 1, "seq": 1,
                              "directory": proxy, "component": "python",
                              "latency": 1.0}}
        framed = loads(dumps(client.encode(request)))
        decoded = server.decode(framed)
        assert decoded["lookup"]["directory"] is usr

    def test_reply_round_trip_builds_stable_proxy(self):
        root, usr = build_tree()
        leaf = usr.state("python")
        server = WireCodec(registry=DirectoryRegistry())
        proxies = EntityProxyCache()
        client = WireCodec(proxies=proxies)
        reply = {"reply": {"request_id": 1, "seq": 1, "entity": leaf}}
        framed = loads(dumps(server.encode(reply)))
        first = client.decode(framed)["reply"]["entity"]
        second = client.decode(framed)["reply"]["entity"]
        assert first is second                  # stable per uid
        assert first.label == "python3"
        assert remote_uid_of(first) == leaf.uid

    def test_undefined_reply_stays_none(self):
        server = WireCodec(registry=DirectoryRegistry())
        client = WireCodec(proxies=EntityProxyCache())
        encoded = server.encode(
            {"reply": {"request_id": 2, "entity": UNDEFINED_ENTITY}})
        assert encoded["reply"]["entity"] is None
        assert client.decode(encoded)["reply"]["entity"] is None

    def test_lease_dep_retuples(self):
        codec = WireCodec()
        dep = ("binding", 17, "usr")
        encoded = codec.encode({"lease": {"op": "break", "dep": dep}})
        assert encoded["lease"]["dep"] == ["binding", 17, "usr"]
        decoded = codec.decode(loads(dumps(encoded)))
        assert decoded["lease"]["dep"] == dep
        assert isinstance(decoded["lease"]["dep"], tuple)

    def test_foreign_payloads_pass_through(self):
        codec = WireCodec()
        payload = {"ctl": {"op": "hello"}, "n": 3}
        assert codec.encode(payload) == payload
        assert codec.decode(payload) == payload
        assert codec.encode("plain") == "plain"
