"""AsyncioTransport: real sockets behind the same seam.

Covers the substrate mechanics (loopback, sockets, reply addresses,
trace context, drop-on-unreachable, wall-clock timers); the protocol
running over it end-to-end is ``test_service.py``/``test_parity.py``.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.errors import SimulationError
from repro.transport.aio import Address, AsyncioTransport
from repro.transport.base import Transport, as_transport


def free_port() -> int:
    """A port nothing is listening on (bound once, then released)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def run(coroutine):
    return asyncio.run(coroutine)


class TestBasics:
    def test_is_a_transport(self):
        transport = AsyncioTransport()
        assert isinstance(transport, Transport)
        assert transport.kind == "asyncio"
        assert as_transport(transport) is transport

    def test_now_is_wall_clock(self):
        async def scenario():
            transport = AsyncioTransport()
            before = transport.now()
            await asyncio.sleep(0.02)
            return transport.now() - before
        assert run(scenario()) >= 0.015

    def test_endpoint_registry_by_label(self):
        transport = AsyncioTransport()
        a = transport.endpoint(label="a")
        assert transport.endpoint(label="a") is a
        assert transport.endpoint(label="b") is not a
        anonymous = transport.endpoint()
        assert anonymous.label  # auto-named

    def test_address_requires_listening(self):
        transport = AsyncioTransport()
        endpoint = transport.endpoint(label="a")
        with pytest.raises(SimulationError):
            endpoint.address

    def test_schedule_rejects_negative_delay(self):
        async def scenario():
            with pytest.raises(SimulationError):
                AsyncioTransport().schedule(-1.0, lambda: None)
        run(scenario())

    def test_timers_fire_and_cancel_on_wall_clock(self):
        async def scenario():
            transport = AsyncioTransport()
            fired = []
            transport.schedule(0.01, lambda: fired.append("a"))
            timer = transport.schedule(0.01, lambda: fired.append("b"))
            timer.cancel()
            await asyncio.sleep(0.05)
            return fired
        assert run(scenario()) == ["a"]


class TestLoopback:
    def test_local_send_round_trips_codec(self):
        async def scenario():
            transport = AsyncioTransport()
            a = transport.endpoint(label="a")
            b = transport.endpoint(label="b")
            got = []
            b.on_message(lambda _e, env: got.append(env))
            envelope = a.send(b, payload={"n": 1})
            envelope.trace_id = "T"       # attached after send returns
            envelope.parent_span_id = "S"
            await asyncio.sleep(0)        # one loop tick to deliver
            await asyncio.sleep(0)
            (env,) = got
            assert env.payload == {"n": 1}
            assert (env.trace_id, env.parent_span_id) == ("T", "S")
            # The sender address is a valid reply target.
            reply_got = []
            a.on_message(lambda _e, env2: reply_got.append(env2.payload))
            b.send(env.sender, payload="reply")
            await asyncio.sleep(0)
            await asyncio.sleep(0)
            assert reply_got == ["reply"]
        run(scenario())


class TestSockets:
    def test_request_reply_over_tcp(self):
        async def scenario():
            server = AsyncioTransport()
            serving = server.endpoint(label="svc")

            def answer(endpoint, envelope):
                endpoint.send(envelope.sender,
                              payload={"echo": envelope.payload,
                                       "from": endpoint.label})
            serving.on_message(answer)
            bound = await server.listen()

            client = AsyncioTransport()
            asker = client.endpoint(label="asker")
            replies = asyncio.Queue()
            asker.on_message(
                lambda _e, env: replies.put_nowait(env))
            asker.send(Address(bound.host, bound.port, "svc"),
                       payload=[1, 2])
            env = await asyncio.wait_for(replies.get(), 5)
            assert env.payload == {"echo": [1, 2], "from": "svc"}
            # The server saw a ConnAddress sender with a session id.
            assert env.sender.label == "svc"
            assert server.frames_delivered == 1
            assert client.frames_delivered == 1
            await client.aclose()
            await server.aclose()
        run(scenario())

    def test_trace_context_crosses_the_wire(self):
        async def scenario():
            server = AsyncioTransport()
            seen = asyncio.Queue()
            server.endpoint(label="svc").on_message(
                lambda _e, env: seen.put_nowait(
                    (env.trace_id, env.parent_span_id)))
            bound = await server.listen()
            client = AsyncioTransport()
            sender = client.endpoint(label="c")
            envelope = sender.send(
                Address(bound.host, bound.port, "svc"), payload="x")
            envelope.trace_id = "trace-9"
            envelope.parent_span_id = "span-4"
            assert await asyncio.wait_for(seen.get(), 5) == \
                ("trace-9", "span-4")
            await client.aclose()
            await server.aclose()
        run(scenario())

    def test_unreachable_peer_drops_frames(self):
        """Sends toward a dead port are dropped (counted), never
        raised — the protocol's timeout owns recovery."""
        async def scenario():
            transport = AsyncioTransport()
            endpoint = transport.endpoint(label="c")
            dead = Address("127.0.0.1", free_port(), "svc")
            endpoint.send(dead, payload="lost-1")
            endpoint.send(dead, payload="lost-2")
            for _ in range(50):
                if transport.frames_dropped == 2:
                    break
                await asyncio.sleep(0.01)
            assert transport.frames_dropped == 2
            assert transport.frames_sent == 2
            await transport.aclose()
        run(scenario())

    def test_unknown_endpoint_label_drops(self):
        async def scenario():
            server = AsyncioTransport()
            server.endpoint(label="svc").on_message(lambda _e, _env: None)
            bound = await server.listen()
            client = AsyncioTransport()
            client.endpoint(label="c").send(
                Address(bound.host, bound.port, "no-such-label"),
                payload="x")
            for _ in range(50):
                if server.frames_dropped:
                    break
                await asyncio.sleep(0.01)
            assert server.frames_dropped == 1
            await client.aclose()
            await server.aclose()
        run(scenario())

    def test_connection_pooled_per_peer(self):
        async def scenario():
            server = AsyncioTransport()
            hits = asyncio.Queue()
            server.endpoint(label="svc").on_message(
                lambda _e, env: hits.put_nowait(env.sender.session_id))
            bound = await server.listen()
            client = AsyncioTransport()
            endpoint = client.endpoint(label="c")
            target = Address(bound.host, bound.port, "svc")
            for index in range(3):
                endpoint.send(target, payload=index)
            sessions = {await asyncio.wait_for(hits.get(), 5)
                        for _ in range(3)}
            assert len(sessions) == 1  # one connection, three frames
            await client.aclose()
            await server.aclose()
        run(scenario())
