"""Async lease fan-out ≡ sync lease fan-out.

``callback_fanout_async`` must mirror the simulator's
``callback_fanout`` exactly — same attempt bounds, same backoff
draws, same breaker transitions, same ``FanoutReport`` — driven by
the *same* RetryPolicy/CircuitBreaker objects.  Both drivers run the
same scripted delivery schedules and their visible behaviour is
compared field by field.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.nameservice.leases import Lease, callback_fanout
from repro.nameservice.retry import CircuitBreaker, RetryPolicy
from repro.transport.leases import AckWaiter, callback_fanout_async

POLICY = RetryPolicy(max_attempts=3, base_backoff=0.5, max_backoff=4.0)


def make_holders(n):
    return [Lease(dep=("binding", 1, f"c{i}"), machine_id=i,
                  granted_at=0.0, expires_at=100.0, epoch=0)
            for i in range(n)]


def run_sync(schedule, *, policy=POLICY, breakers=None, seed=7):
    """Drive the sync fan-out over a scripted delivery schedule:
    ``schedule[(machine_id, attempt)]`` is True for success."""
    holders = make_holders(len({m for m, _ in schedule}))
    log = {"delivered": [], "waits": [], "broken": []}
    breakers = breakers or {}
    report = callback_fanout(
        holders, now=lambda: 0.0, rng=random.Random(seed),
        deliver=lambda lease, attempt: (
            log["delivered"].append((lease.machine_id, attempt)),
            schedule.get((lease.machine_id, attempt), False))[-1],
        wait=log["waits"].append,
        retry_policy=policy,
        breaker_for=lambda lease: breakers.get(lease.machine_id),
        on_broken=lambda lease: log["broken"].append(lease.machine_id))
    return report, log


def run_async(schedule, *, policy=POLICY, breakers=None, seed=7):
    holders = make_holders(len({m for m, _ in schedule}))
    log = {"delivered": [], "waits": [], "broken": []}
    breakers = breakers or {}

    async def deliver(lease, attempt):
        log["delivered"].append((lease.machine_id, attempt))
        return schedule.get((lease.machine_id, attempt), False)

    async def wait(delay):
        log["waits"].append(delay)

    report = asyncio.run(callback_fanout_async(
        holders, now=lambda: 0.0, rng=random.Random(seed),
        deliver=deliver, retry_policy=policy,
        breaker_for=lambda lease: breakers.get(lease.machine_id),
        on_broken=lambda lease: log["broken"].append(lease.machine_id),
        wait=wait))
    return report, log


SCHEDULES = [
    # everyone answers first try
    {(0, 1): True, (1, 1): True},
    # holder 0 needs a retry; holder 1 never answers
    {(0, 1): False, (0, 2): True, (1, 1): False},
    # all fail every attempt
    {(0, 1): False, (1, 1): False},
    # mixed: late success on final attempt
    {(0, 1): False, (0, 2): False, (0, 3): True,
     (1, 1): True, (2, 1): False, (2, 2): True},
]


class TestEquivalence:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_reports_and_logs_match(self, schedule):
        sync_report, sync_log = run_sync(dict(schedule))
        async_report, async_log = run_async(dict(schedule))
        assert async_report == sync_report
        assert async_log == sync_log  # same attempts, backoffs, breaks

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_breaker_transitions_match(self, schedule):
        def breakers():
            return {m: CircuitBreaker(failure_threshold=2, cooldown=10.0,
                                      label=f"b{m}")
                    for m, _ in schedule}
        sync_breakers = breakers()
        async_breakers = breakers()
        sync_report, _ = run_sync(dict(schedule), breakers=sync_breakers)
        async_report, _ = run_async(dict(schedule),
                                    breakers=async_breakers)
        assert async_report == sync_report
        for machine_id, sync_breaker in sync_breakers.items():
            async_breaker = async_breakers[machine_id]
            assert async_breaker.state is sync_breaker.state
            assert (async_breaker.transitions
                    == sync_breaker.transitions)
            assert (async_breaker.consecutive_failures
                    == sync_breaker.consecutive_failures)

    def test_open_breaker_skips_holder_in_both(self):
        schedule = {(0, 1): True}
        tripped = CircuitBreaker(failure_threshold=1, cooldown=100.0)
        tripped.record_failure(0.0)   # open, cooldown not elapsed
        assert tripped.state.value == "open"

        def fresh_tripped():
            b = CircuitBreaker(failure_threshold=1, cooldown=100.0)
            b.record_failure(0.0)
            return b

        sync_report, sync_log = run_sync(
            dict(schedule), breakers={0: fresh_tripped()})
        async_report, async_log = run_async(
            dict(schedule), breakers={0: fresh_tripped()})
        assert sync_report.skipped == async_report.skipped == 1
        assert sync_report.broken == async_report.broken == 1
        assert sync_log["delivered"] == async_log["delivered"] == []

    def test_no_policy_means_single_attempt(self):
        schedule = {(0, 1): False, (0, 2): True}
        sync_report, sync_log = run_sync(dict(schedule), policy=None)
        async_report, async_log = run_async(dict(schedule), policy=None)
        assert sync_report == async_report
        assert sync_report.attempts == 1 and sync_report.broken == 1
        assert sync_log == async_log


class TestAckWaiter:
    def test_ack_arrives_in_time(self):
        async def scenario():
            waiter = AckWaiter()
            waiter.expect("k")
            asyncio.get_running_loop().call_soon(waiter.resolve, "k")
            assert await waiter.wait("k", timeout=1.0)
            assert len(waiter) == 0
        asyncio.run(scenario())

    def test_timeout_is_false_not_raise(self):
        async def scenario():
            waiter = AckWaiter()
            waiter.expect("k")
            assert not await waiter.wait("k", timeout=0.01)
        asyncio.run(scenario())

    def test_late_and_unexpected_acks_counted(self):
        async def scenario():
            waiter = AckWaiter()
            assert not waiter.resolve("never-expected")
            waiter.expect("k")
            assert not await waiter.wait("k", timeout=0.01)
            assert not waiter.resolve("k")   # late: future already gone
            assert waiter.late_acks == 2
        asyncio.run(scenario())
