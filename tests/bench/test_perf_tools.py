"""Tests for the perf harness and the BENCH_*.json trajectory tool."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from bench_perf import _normalised_rates, check_regression  # noqa: E402
from perf_harness import (SCENARIOS, SMOKE_SCENARIOS,  # noqa: E402
                          run_scenario, run_suite)


class TestHarness:
    def test_smoke_scenarios_are_registered(self):
        for name in SMOKE_SCENARIOS:
            assert name in SCENARIOS

    def test_kernel_scenario_record_shape(self):
        record = run_scenario("kernel_message_throughput",
                              scale=0.01, repeats=1)
        assert record["wall_s"] > 0
        assert record["events_per_s"] > 0
        assert record["messages_per_s"] > 0
        assert record["peak_heap_depth"] >= 10  # scaled floor

    def test_timer_scenario_counts_only_live_events(self):
        record = run_scenario("kernel_timers_with_cancellation",
                              scale=0.01, repeats=1)
        assert record["events_per_s"] > 0
        assert record["messages_per_s"] is None  # no messages fired

    def test_run_suite_unknown_scenario(self):
        with pytest.raises(KeyError):
            run_suite(["no_such_scenario"])


class TestRegressionGate:
    @staticmethod
    def doc(rate: float, calibration: float = 1e6,
            wall_only: float | None = None) -> dict:
        benches = {"kernel_message_throughput": {
            "wall_s": 0.1, "events_per_s": rate}}
        if wall_only is not None:
            benches["a7_batch_resolution"] = {"wall_s": wall_only,
                                              "events_per_s": None}
        return {"calibration_ops_per_s": calibration, "benches": benches}

    def test_normalisation_divides_by_calibration(self):
        rates = _normalised_rates(self.doc(200_000.0, calibration=2e6))
        assert rates["kernel_message_throughput"] == pytest.approx(0.1)

    def test_wall_only_scenarios_use_inverse_wall(self):
        rates = _normalised_rates(self.doc(1.0, calibration=1.0,
                                           wall_only=0.5))
        assert rates["a7_batch_resolution"] == pytest.approx(2.0)

    def test_no_failure_within_gate(self):
        current = self.doc(80_000.0)
        committed = self.doc(100_000.0)
        assert check_regression(current, committed, 0.25) == []

    def test_failure_beyond_gate(self):
        current = self.doc(50_000.0)
        committed = self.doc(100_000.0)
        failures = check_regression(current, committed, 0.25)
        assert len(failures) == 1
        assert "kernel_message_throughput" in failures[0]

    def test_faster_machine_is_not_a_regression(self):
        # Same kernel speed relative to the machine: CI runner is 4x
        # slower overall, rates 4x lower — normalisation cancels it.
        current = self.doc(25_000.0, calibration=0.25e6)
        committed = self.doc(100_000.0, calibration=1e6)
        assert check_regression(current, committed, 0.25) == []

    def test_missing_scenario_in_smoke_run_is_skipped(self):
        current = self.doc(100_000.0)
        committed = self.doc(100_000.0, wall_only=0.5)
        assert check_regression(current, committed, 0.25) == []


class TestCli:
    def test_smoke_run_against_committed_file(self, tmp_path):
        out = tmp_path / "bench.json"
        result = subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "tools",
                                          "bench_perf.py"),
             "--scenario", "kernel_message_throughput",
             "--scale", "0.01", "--repeats", "1",
             "--out", str(out),
             "--against", os.path.join(REPO_ROOT, "BENCH_6.json"),
             # Tiny scale is noisy; only the plumbing is under test.
             "--max-regression", "0.99"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-perf/1"
        assert "kernel_message_throughput" in doc["benches"]

    def test_list_scenarios(self):
        result = subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "tools",
                                          "bench_perf.py"), "--list"],
            capture_output=True, text=True, timeout=60)
        assert result.returncode == 0
        assert "kernel_message_throughput" in result.stdout
