"""Tests for the `python -m repro.bench` CLI."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_run_subset(self, capsys):
        assert main(["E2"]) == 0
        out = capsys.readouterr().out
        assert "R(sender)" in out
        assert "all 1 experiments reproduced" in out

    def test_run_with_seed(self, capsys):
        assert main(["E4", "--seed", "3"]) == 0
        assert "seed=3" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("E1", "E12", "A1", "A4"):
            assert exp_id in out

    def test_unknown_id_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["E99"])
        assert "unknown experiment" in capsys.readouterr().err

    def test_multiple_ids(self, capsys):
        assert main(["E10", "A3"]) == 0
        out = capsys.readouterr().out
        assert "E10" in out and "A3" in out
        assert "all 2 experiments reproduced" in out
