"""Tests for the experiment suite: every paper claim reproduces.

These are the repository's headline assertions: each experiment's
shape checks encode a claim from the paper, and all of them must hold.
"""

from __future__ import annotations

import pytest

from repro.bench import ALL_EXPERIMENTS, run_all
from repro.bench.harness import ExperimentResult


@pytest.mark.parametrize("exp_id", list(ALL_EXPERIMENTS))
def test_experiment_shape_reproduces(exp_id):
    result = ALL_EXPERIMENTS[exp_id](seed=0)
    assert result.all_checks_pass(), (
        f"{exp_id} failed checks: {result.failed_checks()}\n"
        f"{result.render()}")


@pytest.mark.parametrize("exp_id", list(ALL_EXPERIMENTS))
def test_experiment_has_rows_and_checks(exp_id):
    result = ALL_EXPERIMENTS[exp_id](seed=0)
    assert result.rows, f"{exp_id} produced no table rows"
    assert result.checks, f"{exp_id} recorded no shape checks"
    assert result.exp_id == exp_id


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_experiments_hold_across_seeds(seed):
    """The claims are structural, not seed luck: every experiment's
    shape checks hold under other seeds too."""
    for exp_id in ALL_EXPERIMENTS:
        result = ALL_EXPERIMENTS[exp_id](seed=seed)
        assert result.all_checks_pass(), (
            f"{exp_id} seed={seed}: {result.failed_checks()}")


def test_run_all_covers_every_experiment():
    results = run_all(seed=0)
    assert list(results) == list(ALL_EXPERIMENTS)
    assert all(isinstance(r, ExperimentResult) for r in results.values())


def test_render_formats():
    result = ALL_EXPERIMENTS["E2"](seed=0)
    rendered = result.render()
    assert "E2" in rendered
    assert "[PASS]" in rendered
    assert "R(sender)" in rendered


def test_result_helpers():
    result = ExperimentResult(exp_id="X", title="t", headers=["a"])
    assert result.check("claim", True)
    assert not result.check("bad", False)
    assert result.failed_checks() == ["bad"]
    assert not result.all_checks_pass()
    assert "SHAPE MISMATCH" in str(result)


def test_e2_figures_match_paper_matrix():
    result = ALL_EXPERIMENTS["E2"](seed=0)
    assert result.figures[("R(sender)|global")] == 1.0
    assert result.figures[("R(sender)|non-global")] == 1.0
    assert result.figures[("R(receiver)|global")] == 1.0
    assert result.figures[("R(receiver)|non-global")] == 0.0


def test_a2_ordering_figures():
    result = ALL_EXPERIMENTS["A2"](seed=0)
    figures = result.figures
    assert figures["single-tree"] >= figures["shared-graph"] >= \
        figures["newcastle"]
    assert figures["shared-graph"] >= figures["cross-links"]


def test_e9_mapped_beats_raw():
    result = ALL_EXPERIMENTS["E9"](seed=0)
    assert result.figures["mapped_rate"] == 1.0
    assert result.figures["raw_rate"] < result.figures["mapped_rate"]


def test_to_dict_is_json_serialisable_for_every_experiment():
    import json

    for exp_id, runner in ALL_EXPERIMENTS.items():
        document = runner(seed=0).to_dict()
        encoded = json.dumps(document)
        decoded = json.loads(encoded)
        assert decoded["exp_id"] == exp_id
        assert decoded["all_checks_pass"] is True
        assert decoded["rows"], exp_id


def test_run_all_json_tool(capsys):
    import json
    import runpy
    import sys
    from pathlib import Path

    tool = (Path(__file__).resolve().parents[2] / "tools"
            / "run_all_json.py")
    argv = sys.argv
    sys.argv = [str(tool), "--seed", "0"]
    try:
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_path(str(tool), run_name="__main__")
    finally:
        sys.argv = argv
    assert excinfo.value.code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["all_reproduced"] is True
    assert set(document["experiments"]) == set(ALL_EXPERIMENTS)


def test_experiments_are_deterministic():
    """Same seed, same everything — rows, checks, figures."""
    for exp_id in ("E2", "E5", "E9", "A3", "A5"):
        first = ALL_EXPERIMENTS[exp_id](seed=11).to_dict()
        second = ALL_EXPERIMENTS[exp_id](seed=11).to_dict()
        assert first == second, exp_id
