"""Property-based laws of the coherence definitions and metrics.

These are the algebraic sanity conditions any reading of §4/§5 must
satisfy: global ⊆ coherent, monotonicity under population growth,
agreement symmetry, and boundedness of every fraction.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.meta import ContextRegistry
from repro.coherence.definitions import (
    coherent,
    coherent_name_set,
    global_name_set,
    is_global_name,
)
from repro.coherence.metrics import (
    agreement_fraction,
    measure_degree,
    pairwise_matrix,
)
from repro.model.context import Context
from repro.model.entities import Activity, ObjectEntity
from repro.model.names import CompoundName

atoms = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=3)


@st.composite
def populations(draw):
    """A random population: up to 5 activities, up to 6 names, each
    activity binding each name to one of 3 shared entities or its own
    private entity (or leaving it unbound)."""
    n_names = draw(st.integers(1, 6))
    n_activities = draw(st.integers(2, 5))
    names = [f"n{i}" for i in range(n_names)]
    shared = [ObjectEntity(f"shared{i}") for i in range(3)]
    registry = ContextRegistry()
    activities = []
    for a_index in range(n_activities):
        activity = Activity(f"a{a_index}")
        context = Context()
        for name_ in names:
            choice = draw(st.integers(0, 4))
            if choice < 3:
                context.bind(name_, shared[choice])
            elif choice == 3:
                context.bind(name_, ObjectEntity(f"{name_}@{a_index}"))
            # choice == 4: leave unbound
        registry.register(activity, context)
        activities.append(activity)
    return registry, activities, [CompoundName([n]) for n in names]


class TestDefinitionLaws:
    @settings(max_examples=60)
    @given(populations())
    def test_global_names_are_coherent(self, population):
        registry, activities, names = population
        global_set = global_name_set(names, activities, registry)
        coherent_set = coherent_name_set(names, activities, registry)
        assert global_set <= coherent_set

    @settings(max_examples=60)
    @given(populations())
    def test_defined_coherence_equals_globality(self, population):
        # With require_defined=True, a coherent name IS a global name
        # over that population (the denotations are defined and equal).
        registry, activities, names = population
        for name_ in names:
            assert coherent(name_, activities, registry) == \
                is_global_name(name_, activities, registry)

    @settings(max_examples=60)
    @given(populations())
    def test_coherence_monotone_under_population_growth(self, population):
        registry, activities, names = population
        smaller = coherent_name_set(names, activities[:-1], registry)
        larger = coherent_name_set(names, activities, registry)
        if len(activities) > 2:
            assert larger <= smaller

    @settings(max_examples=60)
    @given(populations())
    def test_subpopulation_pairs_agree_with_pairwise(self, population):
        registry, activities, names = population
        first, second = activities[0], activities[1]
        fraction = agreement_fraction(first, second, names, registry)
        per_name = [coherent(n, [first, second], registry) for n in names]
        assert fraction == sum(per_name) / len(names)


class TestMetricLaws:
    @settings(max_examples=60)
    @given(populations())
    def test_fractions_are_bounded(self, population):
        registry, activities, names = population
        degree = measure_degree(activities, names, registry)
        for value in (degree.coherent_fraction, degree.global_fraction,
                      degree.mean_pairwise):
            assert 0.0 <= value <= 1.0

    @settings(max_examples=60)
    @given(populations())
    def test_global_fraction_le_coherent_fraction(self, population):
        registry, activities, names = population
        degree = measure_degree(activities, names, registry)
        assert degree.global_fraction <= degree.coherent_fraction

    @settings(max_examples=60)
    @given(populations())
    def test_full_coherence_implies_full_pairwise(self, population):
        registry, activities, names = population
        degree = measure_degree(activities, names, registry)
        if degree.coherent_fraction == 1.0:
            assert degree.mean_pairwise == 1.0

    @settings(max_examples=60)
    @given(populations())
    def test_pairwise_matrix_is_symmetric_in_meaning(self, population):
        registry, activities, names = population
        matrix = pairwise_matrix(activities, names, registry)
        for (a, b), value in matrix.items():
            first = next(x for x in activities if x.label == a)
            second = next(x for x in activities if x.label == b)
            assert agreement_fraction(second, first, names,
                                      registry) == value

    @settings(max_examples=60)
    @given(populations())
    def test_coherent_fraction_le_min_pairwise(self, population):
        # A name coherent across ALL is coherent for every pair, so
        # the all-coherent fraction cannot exceed any pair's agreement.
        registry, activities, names = population
        degree = measure_degree(activities, names, registry)
        matrix = pairwise_matrix(activities, names, registry)
        if matrix:
            assert degree.coherent_fraction <= min(matrix.values()) + 1e-9
