"""Tests for the coherence definitions (§4, §5)."""

from __future__ import annotations

import pytest

from repro.closure.meta import ContextRegistry
from repro.coherence.definitions import (
    coherent,
    coherent_name_set,
    denotations,
    global_name_set,
    is_global_name,
    strict_identity,
    weakly_coherent,
)
from repro.model.context import Context
from repro.model.entities import Activity, ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import CompoundName


@pytest.fixture
def population():
    """Three activities: a and b share bindings; c diverges on 'n'
    and lacks 'only-ab' entirely."""
    a, b, c = Activity("a"), Activity("b"), Activity("c")
    shared = ObjectEntity("shared")
    c_own = ObjectEntity("c-own")
    ab_only = ObjectEntity("ab-only")
    registry = ContextRegistry()
    registry.register(a, Context({"n": shared, "only-ab": ab_only}))
    registry.register(b, Context({"n": shared, "only-ab": ab_only}))
    registry.register(c, Context({"n": c_own}))
    return (a, b, c), registry, (shared, c_own, ab_only)


class TestCoherent:
    def test_coherent_when_same_entity(self, population):
        (a, b, c), registry, _ = population
        assert coherent("n", [a, b], registry)

    def test_incoherent_when_different_entity(self, population):
        (a, b, c), registry, _ = population
        assert not coherent("n", [a, b, c], registry)

    def test_undefined_somewhere_is_not_coherent(self, population):
        (a, b, c), registry, _ = population
        assert not coherent("only-ab", [a, b, c], registry)

    def test_require_defined_false_counts_mutual_absence(self, population):
        (a, b, c), registry, _ = population
        assert coherent("absent-everywhere", [a, b, c], registry,
                        require_defined=False)
        assert not coherent("only-ab", [a, b, c], registry,
                            require_defined=False)

    def test_vacuous_for_small_populations(self, population):
        (a, _, _), registry, _ = population
        assert coherent("anything", [a], registry)
        assert coherent("anything", [], registry)

    def test_compound_names(self, population):
        (a, b, _), registry, _ = population
        from repro.model.context import context_object

        inner = ObjectEntity("inner")
        directory = context_object("d", {"inner": inner})
        registry.context_of(a).bind("d", directory)
        registry.context_of(b).bind("d", directory)
        assert coherent("d/inner", [a, b], registry)


class TestWeakCoherence:
    def test_custom_equivalence(self, population):
        (a, b, c), registry, (shared, c_own, _) = population
        replicas = {shared.uid, c_own.uid}

        def same_replica_set(first, second):
            return (first is second
                    or (first.uid in replicas and second.uid in replicas))

        assert not coherent("n", [a, b, c], registry)
        assert weakly_coherent("n", [a, b, c], registry, same_replica_set)


class TestGlobalNames:
    def test_global_name(self, population):
        (a, b, _), registry, _ = population
        assert is_global_name("n", [a, b], registry)

    def test_not_global_across_divergent_population(self, population):
        (a, b, c), registry, _ = population
        assert not is_global_name("n", [a, b, c], registry)

    def test_undefined_name_is_not_global(self, population):
        (a, b, _), registry, _ = population
        assert not is_global_name("missing", [a, b], registry)

    def test_empty_population_has_no_global_names(self, population):
        _, registry, _ = population
        assert not is_global_name("n", [], registry)


class TestSets:
    def test_coherent_name_set(self, population):
        (a, b, c), registry, _ = population
        names = ["n", "only-ab", "missing"]
        assert coherent_name_set(names, [a, b], registry) == {
            CompoundName(["n"]), CompoundName(["only-ab"])}
        assert coherent_name_set(names, [a, b, c], registry) == set()

    def test_global_name_set(self, population):
        (a, b, _), registry, _ = population
        names = ["n", "only-ab", "missing"]
        assert global_name_set(names, [a, b], registry) == {
            CompoundName(["n"]), CompoundName(["only-ab"])}


class TestDenotations:
    def test_denotation_vector(self, population):
        (a, b, c), registry, (shared, c_own, _) = population
        values = denotations("n", [a, b, c], registry)
        assert values == [shared, shared, c_own]

    def test_undefined_denotations(self, population):
        (a, b, c), registry, _ = population
        values = denotations("only-ab", [c], registry)
        assert values == [UNDEFINED_ENTITY]

    def test_strict_identity(self):
        entity = ObjectEntity("e")
        assert strict_identity(entity, entity)
        assert not strict_identity(entity, ObjectEntity("e"))
