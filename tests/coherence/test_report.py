"""Tests for report formatting."""

from __future__ import annotations

from repro.closure.meta import ContextRegistry, NameSource, ResolutionEvent
from repro.closure.rules import RReceiver
from repro.coherence.auditor import CoherenceAuditor
from repro.coherence.metrics import measure_degree
from repro.coherence.report import (
    format_degree,
    format_matrix,
    format_summary,
    format_table,
)
from repro.model.context import Context
from repro.model.entities import Activity, ObjectEntity


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["rule", "rate"], [["R(sender)", 1.0],
                                               ["R", 0.25]])
        lines = text.splitlines()
        assert lines[0].startswith("rule")
        assert "1.000" in lines[2]
        assert "0.250" in lines[3]

    def test_title_underline(self):
        text = format_table(["a"], [], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_wide_cells_extend_columns(self):
        text = format_table(["x"], [["a-very-long-cell-value"]])
        assert "a-very-long-cell-value" in text

    def test_non_float_cells(self):
        text = format_table(["k", "v"], [["n", 3], ["b", True]])
        assert "3" in text and "True" in text


class TestFormatBlocks:
    def _population(self):
        shared = ObjectEntity("shared")
        registry = ContextRegistry()
        activities = []
        for index in range(2):
            activity = Activity(f"p{index}")
            registry.register(activity, Context({"g": shared}))
            activities.append(activity)
        return activities, registry

    def test_format_degree(self):
        activities, registry = self._population()
        degree = measure_degree(activities, ["g"], registry,
                                groups={"all": activities})
        text = format_degree("scheme X", degree)
        assert "scheme X" in text
        assert "coherent fraction" in text
        assert "coherent within all" in text

    def test_format_summary(self):
        activities, registry = self._population()
        auditor = CoherenceAuditor(RReceiver(registry))
        auditor.observe(ResolutionEvent(
            name="g", source=NameSource.MESSAGE,
            resolver=activities[0], sender=activities[1]))
        text = format_summary("audit", auditor.summary)
        assert "coherent" in text
        assert "message" in text

    def test_format_matrix(self):
        text = format_matrix("pairs", {("a", "b"): 0.5})
        assert "0.500" in text
        assert "activity a" in text
