"""Tests for the incoherence explainer."""

from __future__ import annotations

import pytest

from repro.coherence.explain import explain_incoherence
from repro.namespaces.unix import UnixSystem


@pytest.fixture
def unix():
    system = UnixSystem("box")
    system.tree.mkfile("etc/passwd")
    system.tree.mkfile("home/alice/notes")
    system.tree.mkfile("home/bob/notes")
    return system


class TestAgreement:
    def test_agreeing_resolutions_report_no_divergence(self, unix):
        a, b = unix.spawn("a"), unix.spawn("b")
        divergence = explain_incoherence("/etc/passwd", a, b,
                                         unix.registry)
        assert not divergence.diverged
        assert divergence.reason == "resolutions agree"
        assert "passwd" in divergence.render()


class TestDivergence:
    def test_chroot_diverges_at_root_binding(self, unix):
        normal, jailed = unix.spawn("normal"), unix.spawn("jailed")
        unix.chroot(jailed, "/home")
        divergence = explain_incoherence("/etc/passwd", normal, jailed,
                                         unix.registry)
        assert divergence.diverged
        assert divergence.index == 0
        assert "root binding" in divergence.reason

    def test_cwd_divergence_names_the_component(self, unix):
        alice = unix.spawn("alice", cwd="home/alice")
        bob = unix.spawn("bob", cwd="home/bob")
        divergence = explain_incoherence("notes", alice, bob,
                                         unix.registry)
        assert divergence.diverged
        assert divergence.component == "notes"
        assert "alice" in divergence.reason or "notes" in divergence.reason

    def test_unbound_for_one_side(self, unix):
        alice = unix.spawn("alice", cwd="home/alice")
        rootward = unix.spawn("rootward")
        divergence = explain_incoherence("notes", alice, rootward,
                                         unix.registry)
        assert divergence.diverged
        assert "unbound for rootward" in divergence.reason

    def test_unbound_for_both(self, unix):
        a, b = unix.spawn("a"), unix.spawn("b")
        divergence = explain_incoherence("/no/such", a, b,
                                         unix.registry)
        assert divergence.diverged or \
            "no common reference" in divergence.reason
        # Identical walks to ⊥: explained as mutual absence.
        assert "unbound for both" in divergence.reason or \
            divergence.diverged

    def test_short_walk_explained(self, unix):
        # alice resolves home/alice/notes fully; for jailed-at-/etc the
        # walk dies at the first component.
        normal = unix.spawn("normal")
        jailed = unix.spawn("jailed")
        unix.chroot(jailed, "/etc")
        divergence = explain_incoherence("/home/alice/notes", normal,
                                         jailed, unix.registry)
        assert divergence.diverged

    def test_render_contains_both_results(self, unix):
        alice = unix.spawn("alice", cwd="home/alice")
        bob = unix.spawn("bob", cwd="home/bob")
        text = explain_incoherence("notes", alice, bob,
                                   unix.registry).render()
        assert "alice" in text and "bob" in text
        assert "diverges" in text
