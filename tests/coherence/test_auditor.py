"""Tests for the dynamic coherence auditor."""

from __future__ import annotations

import pytest

from repro.closure.meta import ContextRegistry, NameSource, ResolutionEvent
from repro.closure.rules import RReceiver, RSender
from repro.coherence.auditor import CoherenceAuditor, Verdict
from repro.model.context import Context
from repro.model.entities import Activity, ObjectEntity


@pytest.fixture
def setting():
    sender, receiver = Activity("s"), Activity("r")
    shared = ObjectEntity("shared")
    mine = ObjectEntity("mine")
    yours = ObjectEntity("yours")
    registry = ContextRegistry()
    registry.register(sender, Context({"g": shared, "n": mine}))
    registry.register(receiver, Context({"g": shared, "n": yours}))
    return sender, receiver, registry, (shared, mine, yours)


def event(setting, name_, intended=None):
    sender, receiver, _, _ = setting
    return ResolutionEvent(name=name_, source=NameSource.MESSAGE,
                           resolver=receiver, sender=sender,
                           intended=intended)


class TestVerdicts:
    def test_coherent_when_intended_reached(self, setting):
        _, _, registry, (shared, *_ ) = setting
        auditor = CoherenceAuditor(RReceiver(registry))
        record = auditor.observe(event(setting, "g", intended=shared))
        assert record.verdict is Verdict.COHERENT
        assert record.ok

    def test_incoherent_when_other_entity(self, setting):
        _, _, registry, (_, mine, _) = setting
        auditor = CoherenceAuditor(RReceiver(registry))
        record = auditor.observe(event(setting, "n", intended=mine))
        assert record.verdict is Verdict.INCOHERENT
        assert not record.ok

    def test_sender_rule_fixes_it(self, setting):
        _, _, registry, (_, mine, _) = setting
        auditor = CoherenceAuditor(RSender(registry))
        record = auditor.observe(event(setting, "n", intended=mine))
        assert record.verdict is Verdict.COHERENT

    def test_unresolved(self, setting):
        _, _, registry, _ = setting
        auditor = CoherenceAuditor(RReceiver(registry))
        record = auditor.observe(event(setting, "missing"))
        assert record.verdict is Verdict.UNRESOLVED

    def test_no_intent_scores_definedness_only(self, setting):
        _, _, registry, _ = setting
        auditor = CoherenceAuditor(RReceiver(registry))
        record = auditor.observe(event(setting, "n", intended=None))
        assert record.verdict is Verdict.COHERENT

    def test_inapplicable(self, setting):
        sender, receiver, registry, _ = setting
        internal = ResolutionEvent(name="n", source=NameSource.INTERNAL,
                                   resolver=receiver)
        auditor = CoherenceAuditor(RSender(registry))
        record = auditor.observe(internal)
        assert record.verdict is Verdict.INAPPLICABLE

    def test_weak_coherence_with_equivalence(self, setting):
        _, _, registry, (_, mine, yours) = setting
        replicas = {mine.uid, yours.uid}
        auditor = CoherenceAuditor(
            RReceiver(registry),
            equivalence=lambda x, y: (x is y or
                                      {x.uid, y.uid} <= replicas))
        record = auditor.observe(event(setting, "n", intended=mine))
        assert record.verdict is Verdict.WEAKLY_COHERENT
        assert record.ok


class TestSummary:
    def test_counts_and_rates(self, setting):
        _, _, registry, (shared, mine, _) = setting
        auditor = CoherenceAuditor(RReceiver(registry))
        auditor.observe_all([
            event(setting, "g", intended=shared),
            event(setting, "n", intended=mine),
            event(setting, "missing"),
        ])
        summary = auditor.summary
        assert summary.total == 3
        assert summary.count(Verdict.COHERENT) == 1
        assert summary.count(Verdict.INCOHERENT) == 1
        assert summary.count(Verdict.UNRESOLVED) == 1
        assert summary.rate(Verdict.COHERENT) == pytest.approx(1 / 3)
        assert summary.coherence_rate() == pytest.approx(1 / 3)

    def test_per_source_breakdown(self, setting):
        sender, receiver, registry, (shared, *_ ) = setting
        auditor = CoherenceAuditor(RReceiver(registry))
        auditor.observe(event(setting, "g", intended=shared))
        auditor.observe(ResolutionEvent(
            name="g", source=NameSource.INTERNAL, resolver=receiver,
            intended=shared))
        summary = auditor.summary
        assert summary.source_total(NameSource.MESSAGE) == 1
        assert summary.source_total(NameSource.INTERNAL) == 1
        assert summary.coherence_rate(NameSource.MESSAGE) == 1.0

    def test_rate_of_empty_source_is_zero(self, setting):
        _, _, registry, _ = setting
        auditor = CoherenceAuditor(RReceiver(registry))
        assert auditor.summary.rate(Verdict.COHERENT,
                                    NameSource.OBJECT) == 0.0

    def test_incoherent_records_listing(self, setting):
        _, _, registry, (_, mine, _) = setting
        auditor = CoherenceAuditor(RReceiver(registry))
        auditor.observe(event(setting, "n", intended=mine))
        assert len(auditor.incoherent_records()) == 1

    def test_reset(self, setting):
        _, _, registry, (shared, *_ ) = setting
        auditor = CoherenceAuditor(RReceiver(registry))
        auditor.observe(event(setting, "g", intended=shared))
        auditor.reset()
        assert auditor.summary.total == 0
        assert auditor.records == []

    def test_str(self, setting):
        _, _, registry, (shared, *_ ) = setting
        auditor = CoherenceAuditor(RReceiver(registry))
        auditor.observe(event(setting, "g", intended=shared))
        assert "1 events" in str(auditor.summary)
