"""Tests for degree-of-coherence metrics (§5)."""

from __future__ import annotations

import pytest

from repro.closure.meta import ContextRegistry
from repro.coherence.metrics import (
    agreement_fraction,
    group_coherence,
    measure_degree,
    pairwise_matrix,
)
from repro.model.context import Context
from repro.model.entities import Activity, ObjectEntity
from repro.model.names import CompoundName


@pytest.fixture
def population():
    """Four activities in two groups; 'shared' global; 'local' homonym
    per group."""
    shared = ObjectEntity("shared")
    locals_ = {"g1": ObjectEntity("local@g1"),
               "g2": ObjectEntity("local@g2")}
    registry = ContextRegistry()
    groups: dict[str, list[Activity]] = {"g1": [], "g2": []}
    activities = []
    for group in ("g1", "g2"):
        for index in range(2):
            activity = Activity(f"{group}-p{index}")
            registry.register(activity, Context(
                {"shared": shared, "local": locals_[group]}))
            groups[group].append(activity)
            activities.append(activity)
    probes = [CompoundName(["shared"]), CompoundName(["local"])]
    return activities, groups, registry, probes


class TestAgreementFraction:
    def test_full_agreement(self, population):
        activities, groups, registry, probes = population
        a, b = groups["g1"]
        assert agreement_fraction(a, b, probes, registry) == 1.0

    def test_partial_agreement(self, population):
        activities, groups, registry, probes = population
        a = groups["g1"][0]
        c = groups["g2"][0]
        assert agreement_fraction(a, c, probes, registry) == 0.5

    def test_empty_probes(self, population):
        activities, groups, registry, _ = population
        a, b = groups["g1"]
        assert agreement_fraction(a, b, [], registry) == 1.0


class TestPairwiseMatrix:
    def test_all_pairs_present(self, population):
        activities, _, registry, probes = population
        matrix = pairwise_matrix(activities, probes, registry)
        assert len(matrix) == 6  # C(4,2)

    def test_matrix_values(self, population):
        activities, groups, registry, probes = population
        matrix = pairwise_matrix(activities, probes, registry)
        same = matrix[("g1-p0", "g1-p1")]
        cross = matrix[("g1-p0", "g2-p0")]
        assert same == 1.0 and cross == 0.5


class TestGroupCoherence:
    def test_within_group_full(self, population):
        _, groups, registry, probes = population
        rates = group_coherence(groups, probes, registry)
        assert rates == {"g1": 1.0, "g2": 1.0}

    def test_single_member_group_trivially_coherent(self, population):
        _, groups, registry, probes = population
        rates = group_coherence({"solo": groups["g1"][:1]}, probes,
                                registry)
        assert rates["solo"] == 1.0


class TestMeasureDegree:
    def test_summary_values(self, population):
        activities, groups, registry, probes = population
        degree = measure_degree(activities, probes, registry,
                                groups=groups)
        assert degree.probes == 2
        assert degree.coherent_fraction == 0.5   # only 'shared'
        assert degree.global_fraction == 0.5
        assert degree.per_group == {"g1": 1.0, "g2": 1.0}
        assert degree.coherent_names == {CompoundName(["shared"])}

    def test_mean_pairwise(self, population):
        activities, _, registry, probes = population
        degree = measure_degree(activities, probes, registry)
        # 2 within-group pairs at 1.0, 4 cross pairs at 0.5.
        assert degree.mean_pairwise == pytest.approx((2 * 1.0 + 4 * 0.5) / 6)

    def test_empty_probe_population(self, population):
        activities, _, registry, _ = population
        degree = measure_degree(activities, [], registry)
        assert degree.coherent_fraction == 1.0
        assert degree.probes == 0

    def test_str_rendering(self, population):
        activities, groups, registry, probes = population
        degree = measure_degree(activities, probes, registry,
                                groups=groups)
        text = str(degree)
        assert "coherent=0.50" in text and "g1=1.00" in text
