"""Tests for resolution rules — the closure mechanisms of §3/§4."""

from __future__ import annotations

import pytest

from repro.closure.meta import ContextRegistry, NameSource, ResolutionEvent
from repro.closure.rules import (
    PerSourceRule,
    RActivity,
    RObject,
    RReceiver,
    RScoped,
    RSender,
    rule_resolve,
    rule_resolve_traced,
)
from repro.errors import ResolutionRuleError
from repro.model.context import Context
from repro.model.entities import Activity, ObjectEntity, UNDEFINED_ENTITY


@pytest.fixture
def setting():
    """Sender and receiver with different bindings for 'n'; an object
    with its own context binding 'n' a third way."""
    sender, receiver = Activity("sender"), Activity("receiver")
    file_obj = ObjectEntity("file")
    sender_target = ObjectEntity("sender-target")
    receiver_target = ObjectEntity("receiver-target")
    object_target = ObjectEntity("object-target")
    registry = ContextRegistry()
    registry.register(sender, Context({"n": sender_target}))
    registry.register(receiver, Context({"n": receiver_target}))
    object_registry = ContextRegistry()
    object_registry.register(file_obj, Context({"n": object_target}))
    return {
        "sender": sender, "receiver": receiver, "file": file_obj,
        "registry": registry, "object_registry": object_registry,
        "targets": (sender_target, receiver_target, object_target),
    }


def message_event(setting, name_="n"):
    return ResolutionEvent(name=name_, source=NameSource.MESSAGE,
                           resolver=setting["receiver"],
                           sender=setting["sender"])


def object_event(setting, name_="n"):
    return ResolutionEvent(name=name_, source=NameSource.OBJECT,
                           resolver=setting["receiver"],
                           source_object=setting["file"])


def internal_event(setting, name_="n"):
    return ResolutionEvent(name=name_, source=NameSource.INTERNAL,
                           resolver=setting["receiver"])


class TestRActivity:
    def test_selects_resolver_context(self, setting):
        rule = RActivity(setting["registry"])
        _, receiver_target, _ = setting["targets"]
        assert rule_resolve(rule, message_event(setting)) is receiver_target

    def test_applies_to_all_sources(self, setting):
        rule = RActivity(setting["registry"])
        assert rule.applicable(internal_event(setting))
        assert rule.applicable(message_event(setting))
        assert rule.applicable(object_event(setting))

    def test_prediction_is_global_only(self, setting):
        rule = RActivity(setting["registry"])
        assert rule.coherence_prediction(NameSource.INTERNAL) == \
            "global-only"


class TestRSender:
    def test_selects_sender_context(self, setting):
        rule = RSender(setting["registry"])
        sender_target, _, _ = setting["targets"]
        assert rule_resolve(rule, message_event(setting)) is sender_target

    def test_needs_a_sender(self, setting):
        rule = RSender(setting["registry"])
        with pytest.raises(ResolutionRuleError):
            rule.select_context(internal_event(setting))
        assert not rule.applicable(internal_event(setting))

    def test_prediction(self, setting):
        rule = RSender(setting["registry"])
        assert rule.coherence_prediction(NameSource.MESSAGE) == "all"
        assert rule.coherence_prediction(NameSource.INTERNAL) == "n/a"


class TestRReceiver:
    def test_same_selection_as_ractivity(self, setting):
        receiver_rule = RReceiver(setting["registry"])
        activity_rule = RActivity(setting["registry"])
        event = message_event(setting)
        assert (receiver_rule.select_context(event)
                is activity_rule.select_context(event))


class TestRObject:
    def test_selects_object_context(self, setting):
        rule = RObject(setting["object_registry"])
        *_, object_target = setting["targets"]
        assert rule_resolve(rule, object_event(setting)) is object_target

    def test_needs_source_object(self, setting):
        rule = RObject(setting["object_registry"])
        assert not rule.applicable(message_event(setting))

    def test_prediction(self, setting):
        rule = RObject(setting["object_registry"])
        assert rule.coherence_prediction(NameSource.OBJECT) == "all"
        assert rule.coherence_prediction(NameSource.MESSAGE) == "n/a"


class TestRScoped:
    def test_delegates_to_scope_function(self, setting):
        *_, object_target = setting["targets"]
        derived = Context({"n": object_target})
        rule = RScoped(lambda obj: derived, formula="R(test)")
        assert rule_resolve(rule, object_event(setting)) is object_target
        assert rule.formula == "R(test)"

    def test_needs_source_object(self, setting):
        rule = RScoped(lambda obj: Context())
        assert not rule.applicable(internal_event(setting))


class TestPerSourceRule:
    def test_dispatches_by_source(self, setting):
        rule = PerSourceRule({
            NameSource.MESSAGE: RSender(setting["registry"]),
            NameSource.OBJECT: RObject(setting["object_registry"]),
            NameSource.INTERNAL: RActivity(setting["registry"]),
        })
        sender_target, receiver_target, object_target = setting["targets"]
        assert rule_resolve(rule, message_event(setting)) is sender_target
        assert rule_resolve(rule, object_event(setting)) is object_target
        assert rule_resolve(rule,
                            internal_event(setting)) is receiver_target

    def test_fallback(self, setting):
        rule = PerSourceRule({}, fallback=RActivity(setting["registry"]))
        _, receiver_target, _ = setting["targets"]
        assert rule_resolve(rule, internal_event(setting)) is receiver_target

    def test_missing_source_raises(self, setting):
        rule = PerSourceRule({})
        with pytest.raises(ResolutionRuleError):
            rule.select_context(internal_event(setting))

    def test_prediction_delegates(self, setting):
        rule = PerSourceRule({NameSource.MESSAGE:
                              RSender(setting["registry"])})
        assert rule.coherence_prediction(NameSource.MESSAGE) == "all"
        assert rule.coherence_prediction(NameSource.INTERNAL) == "n/a"

    def test_repr_lists_rules(self, setting):
        rule = PerSourceRule({NameSource.MESSAGE:
                              RSender(setting["registry"])})
        assert "R(sender)" in repr(rule)


class TestRuleResolve:
    def test_unbound_resolves_to_undefined(self, setting):
        rule = RActivity(setting["registry"])
        assert rule_resolve(rule, internal_event(setting, "missing")) \
            is UNDEFINED_ENTITY

    def test_traced_variant_returns_trace(self, setting):
        rule = RSender(setting["registry"])
        trace = rule_resolve_traced(rule, message_event(setting))
        assert trace.succeeded
        assert trace.steps[0].component == "n"

    def test_compound_names_resolve_through_rules(self, setting):
        # Bind a directory in the sender's context and resolve a
        # compound name through the selected context.
        from repro.model.context import context_object

        deep = ObjectEntity("deep")
        directory = context_object("dir", {"deep": deep})
        setting["registry"].context_of(setting["sender"]).bind(
            "d", directory)
        rule = RSender(setting["registry"])
        assert rule_resolve(rule, message_event(setting, "d/deep")) is deep
