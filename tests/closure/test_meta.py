"""Tests for the meta-context: events, sources, context registries."""

from __future__ import annotations

import pytest

from repro.closure.meta import ContextRegistry, NameSource, ResolutionEvent
from repro.errors import ResolutionRuleError
from repro.model.context import Context
from repro.model.entities import Activity, ObjectEntity


@pytest.fixture
def actors():
    return Activity("resolver"), Activity("sender"), ObjectEntity("file")


class TestResolutionEvent:
    def test_internal_event(self, actors):
        resolver, _, _ = actors
        event = ResolutionEvent(name="x", source=NameSource.INTERNAL,
                                resolver=resolver)
        assert event.name.parts == ("x",)
        assert event.sender is None

    def test_message_event_requires_sender(self, actors):
        resolver, _, _ = actors
        with pytest.raises(ResolutionRuleError):
            ResolutionEvent(name="x", source=NameSource.MESSAGE,
                            resolver=resolver)

    def test_object_event_requires_source_object(self, actors):
        resolver, _, _ = actors
        with pytest.raises(ResolutionRuleError):
            ResolutionEvent(name="x", source=NameSource.OBJECT,
                            resolver=resolver)

    def test_name_is_coerced(self, actors):
        resolver, sender, _ = actors
        event = ResolutionEvent(name="a/b", source=NameSource.MESSAGE,
                                resolver=resolver, sender=sender)
        assert len(event.name) == 2

    def test_event_ids_are_monotonic(self, actors):
        resolver, _, _ = actors
        first = ResolutionEvent(name="x", source=NameSource.INTERNAL,
                                resolver=resolver)
        second = ResolutionEvent(name="x", source=NameSource.INTERNAL,
                                 resolver=resolver)
        assert first.event_id < second.event_id

    def test_source_str(self):
        assert str(NameSource.MESSAGE) == "message"

    def test_repr(self, actors):
        resolver, _, _ = actors
        event = ResolutionEvent(name="x", source=NameSource.INTERNAL,
                                resolver=resolver)
        assert "resolver" in repr(event)


class TestContextRegistry:
    def test_register_and_lookup(self, actors):
        resolver, _, _ = actors
        registry = ContextRegistry()
        context = Context()
        registry.register(resolver, context)
        assert registry.context_of(resolver) is context
        assert registry.is_registered(resolver)

    def test_missing_without_default_raises(self, actors):
        resolver, _, _ = actors
        with pytest.raises(ResolutionRuleError):
            ContextRegistry().context_of(resolver)

    def test_default_covers_unregistered(self, actors):
        resolver, _, _ = actors
        shared = Context(label="global")
        registry = ContextRegistry(default=shared)
        assert registry.context_of(resolver) is shared

    def test_shared_context_instance(self, actors):
        # "In the extreme case of a single global context only one
        # context is stored, and is shared by all activities."
        resolver, sender, _ = actors
        shared = Context()
        registry = ContextRegistry()
        registry.register(resolver, shared)
        registry.register(sender, shared)
        assert registry.context_of(resolver) is registry.context_of(sender)

    def test_callable_provider_evaluated_each_time(self, actors):
        resolver, _, _ = actors
        calls = []

        def provider():
            context = Context()
            calls.append(context)
            return context

        registry = ContextRegistry()
        registry.register(resolver, provider)
        registry.context_of(resolver)
        registry.context_of(resolver)
        assert len(calls) == 2

    def test_unregister(self, actors):
        resolver, _, _ = actors
        registry = ContextRegistry()
        registry.register(resolver, Context())
        registry.unregister(resolver)
        assert not registry.is_registered(resolver)
        registry.unregister(resolver)  # idempotent

    def test_entities_registered_count(self, actors):
        resolver, sender, _ = actors
        registry = ContextRegistry()
        registry.register(resolver, Context())
        registry.register(sender, Context())
        assert registry.entities_registered() == 2

    def test_objects_can_have_contexts_too(self, actors):
        # R(o): "the system maintains a context R(o) for each object o".
        _, _, file_obj = actors
        registry = ContextRegistry()
        context = Context()
        registry.register(file_obj, context)
        assert registry.context_of(file_obj) is context

    def test_repr(self):
        assert "0 entities" in repr(ContextRegistry(label="r"))
