"""Tests for boundary gateways (§6 'implemented by mapping')."""

from __future__ import annotations

import pytest

from repro.closure.boundary import (
    BoundaryGateway,
    mapper_from_scheme_rule,
    resolution_mapper,
)
from repro.closure.meta import ContextRegistry
from repro.model.context import Context
from repro.model.entities import Activity, ObjectEntity
from repro.model.names import CompoundName
from repro.model.resolution import resolve
from repro.namespaces.newcastle import NewcastleSystem
from repro.sim.kernel import Simulator


@pytest.fixture
def wired_newcastle():
    """A Newcastle system whose processes live in a simulator."""
    simulator = Simulator(seed=0)
    network = simulator.network("lan")
    nc = NewcastleSystem(sigma=simulator.sigma)
    processes = {}
    for machine_label in ("alpha", "beta"):
        nc.add_machine(machine_label).mkfile(
            f"usr/{machine_label}-data")
        machine = simulator.machine(network, machine_label)
        sim_process = simulator.spawn(machine, f"{machine_label}-p")
        processes[machine_label] = nc.spawn(
            machine_label, sim_process.label, activity=sim_process)
    return simulator, nc, processes


class TestGatewayOverNewcastle:
    def test_attachment_rewritten_across_machines(self, wired_newcastle):
        simulator, nc, processes = wired_newcastle
        gateway = BoundaryGateway(nc.boundary_mapper()).install(simulator)
        sender, receiver = processes["alpha"], processes["beta"]
        intended = nc.resolve_for(sender, "/usr/alpha-data")
        message = sender.send(receiver)
        message.attach("/usr/alpha-data", intended)
        simulator.run()
        attachment = receiver.receive().attachments[0]
        assert str(attachment.name) == "/../alpha/usr/alpha-data"
        assert str(attachment.original) == "/usr/alpha-data"
        assert resolve(nc.registry.context_of(receiver),
                       attachment.name) is intended
        assert gateway.stats()["mapped"] == 1

    def test_same_machine_traffic_passes_through(self, wired_newcastle):
        simulator, nc, processes = wired_newcastle
        gateway = BoundaryGateway(nc.boundary_mapper()).install(simulator)
        sender = processes["alpha"]
        sibling = nc.spawn("alpha", "sibling")
        # Use sim-level processes for transport; spawn one on alpha.
        sim_sibling = simulator.spawn(sender.machine, "sib")
        nc.adopt_activity(sim_sibling,
                          nc.registry.context_of(sibling), group="alpha")
        message = sender.send(sim_sibling)
        message.attach("/usr/alpha-data")
        simulator.run()
        attachment = sim_sibling.receive().attachments[0]
        assert str(attachment.name) == "/usr/alpha-data"
        assert gateway.stats()["passed"] == 1

    def test_relative_names_untouched(self, wired_newcastle):
        simulator, nc, processes = wired_newcastle
        BoundaryGateway(nc.boundary_mapper()).install(simulator)
        sender, receiver = processes["alpha"], processes["beta"]
        message = sender.send(receiver)
        message.attach("usr/alpha-data")
        simulator.run()
        attachment = receiver.receive().attachments[0]
        assert str(attachment.name) == "usr/alpha-data"

    def test_gateway_removal(self, wired_newcastle):
        simulator, nc, processes = wired_newcastle
        gateway = BoundaryGateway(nc.boundary_mapper()).install(simulator)
        simulator.remove_gateway(gateway)
        sender, receiver = processes["alpha"], processes["beta"]
        message = sender.send(receiver)
        message.attach("/usr/alpha-data")
        simulator.run()
        attachment = receiver.receive().attachments[0]
        assert str(attachment.name) == "/usr/alpha-data"  # unmapped
        simulator.remove_gateway(gateway)  # idempotent


class TestGenericMappers:
    def test_mapper_from_scheme_rule_adapts_signature(self):
        calls = []

        def translate(name_, sender, receiver):
            calls.append((name_, sender.label, receiver.label))
            return name_.with_prefix("via")

        mapper = mapper_from_scheme_rule(translate)
        a, b = Activity("a"), Activity("b")
        mapped = mapper(a, b, CompoundName.parse("x"))
        assert str(mapped) == "via/x"
        assert calls == [(CompoundName.parse("x"), "a", "b")]

    def test_resolution_mapper_finds_receiver_side_name(self):
        target = ObjectEntity("t")
        registry = ContextRegistry()
        sender, receiver = Activity("s"), Activity("r")
        registry.register(sender, Context({"mine": target}))
        registry.register(receiver, Context({"yours": target}))
        mapper = resolution_mapper(
            registry,
            candidate_names=lambda activity: [
                CompoundName.parse("yours"), CompoundName.parse("other")])
        mapped = mapper(sender, receiver, CompoundName.parse("mine"))
        assert str(mapped) == "yours"

    def test_resolution_mapper_untranslatable(self):
        registry = ContextRegistry()
        sender, receiver = Activity("s"), Activity("r")
        registry.register(sender, Context())
        registry.register(receiver, Context())
        mapper = resolution_mapper(registry, lambda a: [])
        assert mapper(sender, receiver, CompoundName.parse("x")) is None

    def test_scope_predicate_short_circuits(self):
        gateway = BoundaryGateway(
            lambda s, r, n: n.with_prefix("mapped"),
            scope=lambda s, r: False)
        simulator = Simulator(seed=0)
        machine = simulator.machine(simulator.network())
        a, b = simulator.spawn(machine, "a"), simulator.spawn(machine, "b")
        gateway.install(simulator)
        message = a.send(b)
        message.attach("x")
        simulator.run()
        assert str(b.receive().attachments[0].name) == "x"
        assert gateway.stats()["passed"] == 1

    def test_untranslatable_counter(self):
        gateway = BoundaryGateway(lambda s, r, n: None)
        simulator = Simulator(seed=0)
        machine = simulator.machine(simulator.network())
        a, b = simulator.spawn(machine, "a"), simulator.spawn(machine, "b")
        gateway.install(simulator)
        message = a.send(b)
        message.attach("x")
        simulator.run()
        assert str(b.receive().attachments[0].name) == "x"
        assert gateway.stats()["untranslatable"] == 1

    def test_repr(self):
        gateway = BoundaryGateway(lambda s, r, n: n, label="g")
        assert "mapped=0" in repr(gateway)


class TestFederationMapper:
    def test_prefixes_foreign_shared_names(self):
        from repro.federation.scopes import FederationEnvironment

        env = FederationEnvironment()
        org1, org2 = env.add_scope("org1"), env.add_scope("org2")
        org1.publish("users").mkfile("amy/plan")
        org2.publish("users").mkfile("bob/plan")
        env.import_foreign(org2, org1, "org1")
        p1, p2 = env.spawn(org1, "p1"), env.spawn(org2, "p2")
        mapper = env.boundary_mapper()
        mapped = mapper(p1, p2, CompoundName.parse("/users/amy/plan"))
        assert str(mapped) == "/org1/users/amy/plan"
        assert env.resolve_for(p2, mapped) is \
            env.resolve_for(p1, "/users/amy/plan")

    def test_same_org_is_identity(self):
        from repro.federation.scopes import FederationEnvironment

        env = FederationEnvironment()
        org1 = env.add_scope("org1")
        org1.publish("users").mkfile("amy/plan")
        p1, p2 = env.spawn(org1, "p1"), env.spawn(org1, "p2")
        mapper = env.boundary_mapper()
        name_ = CompoundName.parse("/users/amy/plan")
        assert mapper(p1, p2, name_) == name_

    def test_missing_import_is_untranslatable(self):
        from repro.federation.scopes import FederationEnvironment

        env = FederationEnvironment()
        org1, org2 = env.add_scope("org1"), env.add_scope("org2")
        org1.publish("users").mkfile("amy/plan")
        org2.publish("users")
        p1, p2 = env.spawn(org1, "p1"), env.spawn(org2, "p2")
        mapper = env.boundary_mapper()
        assert mapper(p1, p2, CompoundName.parse("/users/amy/plan")) \
            is None
