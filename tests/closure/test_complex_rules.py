"""Tests demonstrating §4's dismissal of multi-factor rules.

"It is also possible to conceive of more complex rules of the form
R(receiver, sender).  However, we have found no instances of, and no
justification for, such rules."  The tests show the combinator works
mechanically, and that it offers no coherence benefit over the single
appropriate factor — while introducing a capture hazard.
"""

from __future__ import annotations

import random

import pytest

from repro.closure.meta import NameSource, ResolutionEvent
from repro.closure.rules import (
    RFirstApplicable,
    RObject,
    RReceiver,
    RSender,
)
from repro.coherence.auditor import CoherenceAuditor
from repro.errors import ResolutionRuleError
from repro.workloads.generators import exchange_events
from repro.workloads.scenarios import build_rule_scenario


@pytest.fixture
def scenario():
    return build_rule_scenario(seed=13)


class TestMechanics:
    def test_formula_derived_from_parts(self, scenario):
        rule = RFirstApplicable([RReceiver(scenario.activity_registry),
                                 RSender(scenario.activity_registry)])
        assert rule.formula == "R(receiver, sender)"

    def test_needs_at_least_one_rule(self):
        with pytest.raises(ResolutionRuleError):
            RFirstApplicable([])

    def test_falls_back_when_first_factor_lacks_binding(self, scenario):
        registry = scenario.activity_registry
        rule = RFirstApplicable([RObject(scenario.object_registry),
                                 RReceiver(registry)])
        # An internal event has no object; receiver context is used.
        event = ResolutionEvent(name=scenario.global_names[0],
                                source=NameSource.INTERNAL,
                                resolver=scenario.activities[0])
        context = rule.select_context(event)
        assert context is registry.context_of(scenario.activities[0])

    def test_raises_when_nothing_applicable(self, scenario):
        rule = RFirstApplicable([RSender(scenario.activity_registry)])
        event = ResolutionEvent(name="x", source=NameSource.INTERNAL,
                                resolver=scenario.activities[0])
        with pytest.raises(ResolutionRuleError):
            rule.select_context(event)

    def test_first_defining_context_wins(self, scenario):
        registry = scenario.activity_registry
        sender, receiver = scenario.activities[0], scenario.activities[1]
        event = ResolutionEvent(name=scenario.homonym_names[0],
                                source=NameSource.MESSAGE,
                                resolver=receiver, sender=sender)
        rule = RFirstApplicable([RSender(registry), RReceiver(registry)])
        assert rule.select_context(event) is registry.context_of(sender)


class TestNoJustification:
    """The paper's point, measured: the complex rule never beats the
    single appropriate factor."""

    def _rates(self, scenario, rule, events):
        return (CoherenceAuditor(rule).observe_all(events)
                .summary.coherence_rate())

    def test_receiver_sender_never_beats_plain_sender(self, scenario):
        registry = scenario.activity_registry
        rng = random.Random(13)
        events = exchange_events(registry, scenario.activities,
                                 scenario.all_names, rng, 300)
        plain = self._rates(scenario, RSender(registry), events)
        complex_rule = RFirstApplicable([RReceiver(registry),
                                         RSender(registry)])
        combined = self._rates(scenario, complex_rule, events)
        assert plain == 1.0
        assert combined <= plain

    def test_receiver_first_captures_homonyms(self, scenario):
        # The hazard: with the receiver tried first, a homonym bound
        # in the receiver's context CAPTURES the lookup — resolving to
        # the wrong entity, exactly like plain R(receiver).
        registry = scenario.activity_registry
        rng = random.Random(14)
        events = exchange_events(registry, scenario.activities,
                                 scenario.homonym_names, rng, 200)
        complex_rule = RFirstApplicable([RReceiver(registry),
                                         RSender(registry)])
        assert self._rates(scenario, complex_rule, events) == 0.0

    def test_sender_first_is_just_sender(self, scenario):
        registry = scenario.activity_registry
        rng = random.Random(15)
        events = exchange_events(registry, scenario.activities,
                                 scenario.all_names, rng, 200)
        complex_rule = RFirstApplicable([RSender(registry),
                                         RReceiver(registry)])
        assert self._rates(scenario, complex_rule, events) == \
            self._rates(scenario, RSender(registry), events) == 1.0

    def test_prediction_is_weakest_factor(self, scenario):
        registry = scenario.activity_registry
        rule = RFirstApplicable([RReceiver(registry), RSender(registry)])
        assert rule.coherence_prediction(NameSource.MESSAGE) == \
            "global-only"
        sender_only = RFirstApplicable([RSender(registry)])
        assert sender_only.coherence_prediction(NameSource.MESSAGE) == \
            "all"
        assert sender_only.coherence_prediction(NameSource.INTERNAL) == \
            "n/a"
