"""Tests for the §7 architecture: scopes and prefix mapping."""

from __future__ import annotations

import pytest

from repro.coherence.definitions import coherent, is_global_name
from repro.errors import FederationError
from repro.federation.mapping import PrefixMapping, mapping_burden
from repro.federation.scopes import FederationEnvironment
from repro.model.names import CompoundName


@pytest.fixture
def environment():
    env = FederationEnvironment()
    org1 = env.add_scope("org1")
    org2 = env.add_scope("org2")
    org1.publish("users").mkfile("alice/plan")
    org1.publish("services").mkfile("mail/endpoint")
    org2.publish("users").mkfile("bob/notes")
    return env, org1, org2


class TestScopes:
    def test_publish_and_resolve(self, environment):
        env, org1, _ = environment
        process = env.spawn(org1, "p")
        assert env.resolve_for(process, "/users/alice/plan").is_defined()
        assert env.resolve_for(process,
                               "/services/mail/endpoint").is_defined()

    def test_duplicate_scope_rejected(self, environment):
        env, *_ = environment
        with pytest.raises(FederationError):
            env.add_scope("org1")

    def test_duplicate_common_name_rejected(self, environment):
        env, org1, _ = environment
        with pytest.raises(FederationError):
            org1.publish("users")

    def test_unknown_space_rejected(self, environment):
        env, org1, _ = environment
        with pytest.raises(FederationError):
            org1.space("nothing")

    def test_nested_scope_sees_outer_spaces(self, environment):
        env, org1, _ = environment
        division = env.add_scope("org1-dev", parent=org1)
        division.publish("tools").mkfile("lint")
        process = env.spawn(division, "p")
        assert env.resolve_for(process, "/users/alice/plan").is_defined()
        assert env.resolve_for(process, "/tools/lint").is_defined()

    def test_inner_scope_shadows_outer(self, environment):
        env, org1, _ = environment
        division = env.add_scope("org1-dev", parent=org1)
        division.publish("users").mkfile("dev-only/plan")
        process = env.spawn(division, "p")
        assert env.resolve_for(process,
                               "/users/dev-only/plan").is_defined()
        assert not env.resolve_for(process,
                                   "/users/alice/plan").is_defined()

    def test_outer_scope_does_not_see_inner(self, environment):
        env, org1, _ = environment
        division = env.add_scope("org1-dev", parent=org1)
        division.publish("tools").mkfile("lint")
        outer = env.spawn(org1, "outer")
        assert not env.resolve_for(outer, "/tools/lint").is_defined()

    def test_scope_of(self, environment):
        env, org1, _ = environment
        process = env.spawn(org1, "p")
        assert env.scope_of(process) is org1
        from repro.model.entities import Activity

        with pytest.raises(FederationError):
            env.scope_of(Activity("stranger"))

    def test_chain_and_repr(self, environment):
        env, org1, _ = environment
        division = env.add_scope("d", parent=org1)
        assert division.chain() == [division, org1]
        assert "org1/d" in repr(division)


class TestCoherenceAcrossScopes:
    def test_within_scope_coherent(self, environment):
        env, org1, _ = environment
        processes = [env.spawn(org1, f"p{i}") for i in range(3)]
        assert is_global_name("/users/alice/plan", processes,
                              env.registry)

    def test_across_orgs_incoherent(self, environment):
        env, org1, org2 = environment
        p1, p2 = env.spawn(org1, "p1"), env.spawn(org2, "p2")
        assert not coherent("/users/alice/plan", [p1, p2], env.registry)
        # /users itself is a homonym: both orgs bind it differently.
        assert not coherent("/users", [p1, p2], env.registry)


class TestForeignImports:
    def test_import_makes_foreign_space_visible(self, environment):
        env, org1, org2 = environment
        process = env.spawn(org1, "p")
        env.import_foreign(org1, org2, "org2")
        assert env.resolve_for(process,
                               "/org2/users/bob/notes").is_defined()

    def test_import_applies_to_future_spawns(self, environment):
        env, org1, org2 = environment
        env.import_foreign(org1, org2, "org2")
        late = env.spawn(org1, "late")
        assert env.resolve_for(late, "/org2/users/bob/notes").is_defined()

    def test_import_applies_to_nested_scopes(self, environment):
        env, org1, org2 = environment
        division = env.add_scope("org1-dev", parent=org1)
        env.import_foreign(org1, org2, "org2")
        process = env.spawn(division, "p")
        assert env.resolve_for(process,
                               "/org2/users/bob/notes").is_defined()

    def test_alias_collision_rejected(self, environment):
        env, org1, org2 = environment
        with pytest.raises(FederationError):
            env.import_foreign(org1, org2, "users")

    def test_imported_names_agree_with_native_ones(self, environment):
        env, org1, org2 = environment
        env.import_foreign(org1, org2, "org2")
        p1, p2 = env.spawn(org1, "p1"), env.spawn(org2, "p2")
        assert env.resolve_for(p1, "/org2/users/bob/notes") is \
            env.resolve_for(p2, "/users/bob/notes")


class TestPrefixMapping:
    def test_apply_and_unapply(self):
        mapping = PrefixMapping("org2", "org1", "org2")
        name_ = CompoundName.parse("/users/bob/notes")
        mapped = mapping.apply(name_)
        assert str(mapped) == "/org2/users/bob/notes"
        assert mapping.unapply(mapped) == name_

    def test_unapply_without_prefix_is_identity(self):
        mapping = PrefixMapping("org2", "org1", "org2")
        name_ = CompoundName.parse("/users/x")
        assert mapping.unapply(name_) == name_

    def test_str(self):
        assert "add prefix /org2" in str(
            PrefixMapping("org2", "org1", "org2"))

    def test_mapping_burden(self):
        report = mapping_burden(["a", "b"], 10)
        assert report == {"crossing": 2.0, "total": 10.0, "burden": 0.2}
        assert mapping_burden([], 0)["burden"] == 0.0


class TestProbes:
    def test_probe_names_deduplicate_across_orgs(self, environment):
        env, *_ = environment
        probes = [str(p) for p in env.probe_names()]
        assert probes.count("/users") == 1
        assert "/users/alice/plan" in probes
        assert "/users/bob/notes" in probes
