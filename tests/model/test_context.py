"""Tests for contexts — functions from names to entities (section 2)."""

from __future__ import annotations

import pytest

from repro.errors import BindingError
from repro.model.context import Context, context_object
from repro.model.entities import Activity, ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import ROOT_NAME


@pytest.fixture
def entities():
    return ObjectEntity("x"), ObjectEntity("y"), Activity("p")


class TestTotality:
    def test_unbound_name_maps_to_undefined(self):
        assert Context()("anything") is UNDEFINED_ENTITY

    def test_bound_name_maps_to_entity(self, entities):
        x, _, _ = entities
        context = Context({"x": x})
        assert context("x") is x

    def test_resolve_atomic_alias(self, entities):
        x, _, _ = entities
        context = Context({"x": x})
        assert context.resolve_atomic("x") is x

    def test_binding_to_undefined_unbinds(self, entities):
        x, _, _ = entities
        context = Context({"x": x})
        context.bind("x", UNDEFINED_ENTITY)
        assert not context.binds("x")

    def test_activities_can_be_bound(self, entities):
        _, _, p = entities
        context = Context({"server": p})
        assert context("server") is p


class TestBindingManagement:
    def test_bind_validates_name(self, entities):
        x, _, _ = entities
        with pytest.raises(Exception):
            Context().bind("a/b", x)

    def test_bind_rejects_non_entity(self):
        with pytest.raises(BindingError):
            Context().bind("x", "not an entity")  # type: ignore[arg-type]

    def test_root_name_may_be_bound(self):
        root = context_object("root")
        context = Context()
        context.bind(ROOT_NAME, root)
        assert context(ROOT_NAME) is root

    def test_rebind_replaces(self, entities):
        x, y, _ = entities
        context = Context({"n": x})
        context.bind("n", y)
        assert context("n") is y

    def test_unbind_is_idempotent(self, entities):
        x, _, _ = entities
        context = Context({"n": x})
        context.unbind("n")
        context.unbind("n")
        assert context("n") is UNDEFINED_ENTITY

    def test_update_merges(self, entities):
        x, y, _ = entities
        first = Context({"a": x})
        second = Context({"b": y})
        first.update(second)
        assert first("a") is x and first("b") is y

    def test_clear(self, entities):
        x, _, _ = entities
        context = Context({"a": x})
        context.clear()
        assert len(context) == 0


class TestViews:
    def test_names_sorted(self, entities):
        x, y, _ = entities
        context = Context({"zeta": x, "alpha": y})
        assert context.names() == ["alpha", "zeta"]

    def test_entities_deduplicated(self, entities):
        x, _, _ = entities
        context = Context({"a": x, "b": x})
        assert context.entities() == [x]

    def test_iteration_and_membership(self, entities):
        x, _, _ = entities
        context = Context({"a": x})
        assert list(context) == ["a"]
        assert "a" in context
        assert "b" not in context

    def test_copy_is_independent(self, entities):
        x, y, _ = entities
        original = Context({"a": x})
        clone = original.copy()
        clone.bind("b", y)
        assert not original.binds("b")
        assert clone("a") is x


class TestExtensionalIdentity:
    def test_equal_bindings_equal_contexts(self, entities):
        x, _, _ = entities
        assert Context({"a": x}) == Context({"a": x})

    def test_different_entity_same_name_not_equal(self, entities):
        x, y, _ = entities
        assert Context({"a": x}) != Context({"a": y})

    def test_different_support_not_equal(self, entities):
        x, _, _ = entities
        assert Context({"a": x}) != Context({"a": x, "b": x})

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Context())

    def test_frozen_bindings_fingerprint(self, entities):
        x, _, _ = entities
        first, second = Context({"a": x}), Context({"a": x})
        assert first.frozen_bindings() == second.frozen_bindings()

    def test_eq_other_type(self):
        assert Context().__eq__(3) is NotImplemented


class TestAgreement:
    def test_agreement_on_shared_bindings(self, entities):
        x, y, _ = entities
        first = Context({"a": x, "b": x})
        second = Context({"a": x, "b": y})
        assert first.agreement(second) == {"a"}

    def test_disagreement(self, entities):
        x, y, _ = entities
        first = Context({"a": x, "b": x})
        second = Context({"a": x, "c": y})
        assert first.disagreement(second) == {"b", "c"}

    def test_identical_contexts_have_no_disagreement(self, entities):
        x, _, _ = entities
        context = Context({"a": x})
        assert context.disagreement(context.copy()) == set()


class TestContextObjectHelper:
    def test_creates_directory(self):
        directory = context_object("etc")
        assert directory.is_context_object()
        assert isinstance(directory.state, Context)

    def test_initial_bindings(self):
        leaf = ObjectEntity("passwd")
        directory = context_object("etc", {"passwd": leaf})
        assert directory.state("passwd") is leaf

    def test_repr_shows_bindings(self):
        leaf = ObjectEntity("passwd")
        directory = context_object("etc", {"passwd": leaf})
        assert "passwd" in repr(directory.state)
