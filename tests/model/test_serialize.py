"""Tests for naming-state serialisation (dump/load round trips)."""

from __future__ import annotations

import json
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.model.graph import NamingGraph
from repro.model.names import CompoundName
from repro.model.serialize import dump_state, load_state
from repro.model.state import GlobalState
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.model.resolution import resolve


def build_sample():
    sigma = GlobalState()
    tree = NamingTree("root", sigma=sigma, parent_links=True)
    passwd = tree.mkfile("etc/passwd")
    passwd.state = "root:x:0:0"
    tree.mkfile("home/alice/notes")
    return sigma, tree


class TestDump:
    def test_document_shape(self):
        sigma, tree = build_sample()
        document = dump_state(sigma)
        assert document["format"] == "repro-naming-state-v1"
        assert len(document["entities"]) == len(sigma)
        assert document["bindings"]

    def test_json_serialisable(self):
        sigma, _ = build_sample()
        encoded = json.dumps(dump_state(sigma))
        assert "passwd" in encoded

    def test_plain_states_preserved(self):
        sigma, tree = build_sample()
        document = dump_state(sigma)
        passwd_record = next(r for r in document["entities"]
                             if r["label"] == "passwd")
        assert passwd_record["state"] == "root:x:0:0"

    def test_bindings_to_outsiders_dropped(self):
        from repro.model.context import context_object
        from repro.model.entities import ObjectEntity

        sigma = GlobalState()
        directory = sigma.add(context_object("d"))
        outsider = ObjectEntity("ghost")  # never added to sigma
        directory.state.bind("ghost", outsider)
        document = dump_state(sigma)
        assert document["bindings"] == []


class TestLoad:
    def test_round_trip_resolution(self):
        sigma, tree = build_sample()
        fresh_sigma, mapping = load_state(dump_state(sigma))
        fresh_root = mapping[tree.root.uid]
        context = ProcessContext(fresh_root)  # type: ignore[arg-type]
        resolved = resolve(context, "/etc/passwd")
        assert resolved.is_defined()
        assert resolved.label == "passwd"
        assert resolved is mapping[tree.lookup("etc/passwd").uid]

    def test_round_trip_graph_isomorphic(self):
        sigma, tree = build_sample()
        fresh_sigma, _ = load_state(dump_state(sigma))
        original = {(o.label, n, e.label)
                    for o, n, e in NamingGraph(sigma).edges()}
        rebuilt = {(o.label, n, e.label)
                   for o, n, e in NamingGraph(fresh_sigma).edges()}
        assert original == rebuilt

    def test_fresh_uids_allocated(self):
        sigma, tree = build_sample()
        _, mapping = load_state(dump_state(sigma))
        assert all(original != fresh.uid
                   for original, fresh in mapping.items())

    def test_wrong_format_rejected(self):
        with pytest.raises(ReproError):
            load_state({"format": "something-else"})

    def test_dangling_binding_rejected(self):
        with pytest.raises(ReproError):
            load_state({"format": "repro-naming-state-v1",
                        "entities": [],
                        "bindings": [{"from": 1, "name": "x", "to": 2}]})

    def test_activities_round_trip(self):
        from repro.model.entities import Activity

        sigma = GlobalState()
        sigma.add(Activity("worker"))
        fresh, _ = load_state(dump_state(sigma))
        assert [a.label for a in fresh.activities()] == ["worker"]


atoms = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4)
paths = st.lists(atoms, min_size=1, max_size=4).map(CompoundName)


class TestRoundTripProperty:
    @settings(max_examples=40)
    @given(st.lists(paths, min_size=1, max_size=8, unique_by=str))
    def test_every_resolvable_path_survives(self, file_paths):
        sigma = GlobalState()
        tree = NamingTree("root", sigma=sigma, parent_links=True)
        built = []
        for path in file_paths:
            try:
                if not tree.exists(path):
                    tree.mkfile(path)
                    built.append(path)
            except Exception:
                continue
        fresh_sigma, mapping = load_state(dump_state(sigma))
        fresh_root = mapping[tree.root.uid]
        for path in built:
            original = tree.lookup(path)
            rebuilt = resolve(ProcessContext(fresh_root),  # type: ignore
                              path.as_rooted())
            assert rebuilt is mapping[original.uid]


class TestSchemeSystemsRoundTrip:
    """Whole scheme-built systems survive dump/load with isomorphic
    naming graphs."""

    def _edges(self, sigma):
        return {(o.label, n, e.label)
                for o, n, e in NamingGraph(sigma).edges()}

    def test_andrew_campus(self):
        from repro.workloads.organizations import build_campus

        campus = build_campus(clients=3, seed=1)
        fresh, _ = load_state(dump_state(campus.sigma))
        assert self._edges(campus.sigma) == self._edges(fresh)

    def test_newcastle(self):
        from repro.namespaces.newcastle import NewcastleSystem

        nc = NewcastleSystem()
        for machine in ("a", "b"):
            nc.add_machine(machine).mkfile("usr/data")
        fresh, mapping = load_state(dump_state(nc.sigma))
        assert self._edges(nc.sigma) == self._edges(fresh)
        # `..` edges included: the super-root structure is preserved.
        fresh_super = mapping[nc.super_root.uid]
        assert fresh_super.state("a").is_defined()
        assert fresh_super.state("a").state("..") is fresh_super

    def test_perprocess_namespaces(self):
        from repro.namespaces.perprocess import PerProcessSystem

        port = PerProcessSystem()
        port.add_machine("m1").mkfile("src/prog.c")
        port.spawn("m1", "dev", mounts=[("home", "m1")])
        fresh, _ = load_state(dump_state(port.sigma))
        assert self._edges(port.sigma) == self._edges(fresh)
