"""Property-based tests (hypothesis) for the model layer."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.context import Context
from repro.model.entities import ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import PARENT, CompoundName
from repro.model.resolution import resolve

# Atomic names: nonempty, no separator.  Keep the alphabet small so
# collisions (and therefore interesting overwrites) actually occur.
atoms = st.text(alphabet=string.ascii_lowercase + "._-", min_size=1,
                max_size=6).filter(lambda s: s not in (".",))
compounds = st.builds(CompoundName,
                      st.lists(atoms, min_size=0, max_size=6),
                      rooted=st.booleans())


class TestNameProperties:
    @given(compounds)
    def test_str_parse_roundtrip(self, name_):
        assert CompoundName.parse(str(name_)) == name_

    @given(compounds, compounds)
    def test_join_length(self, first, second):
        joined = first.join(second)
        if second.rooted:
            assert joined == second
        else:
            assert joined.parts == first.parts + second.parts
            assert joined.rooted == first.rooted

    @given(compounds, compounds)
    def test_prefix_strip_inverts_with_prefix(self, prefix, name_):
        prefixed = name_.relative().with_prefix(prefix)
        assert prefixed.starts_with(prefix)
        assert prefixed.strip_prefix(prefix) == name_.relative()

    @given(compounds)
    def test_normalized_is_idempotent(self, name_):
        once = name_.normalized()
        assert once.normalized() == once

    @given(compounds)
    def test_normalized_rooted_has_no_leading_parent(self, name_):
        normal = name_.normalized()
        if normal.rooted and len(normal) > 0:
            assert normal.parts[0] != PARENT

    @given(compounds)
    def test_ordering_consistent_with_equality(self, name_):
        assert not (name_ < name_)

    @given(st.lists(compounds, max_size=8))
    def test_sort_is_stable_total_order(self, names):
        ordered = sorted(names)
        for first, second in zip(ordered, ordered[1:]):
            assert first < second or first == second

    @given(compounds, atoms)
    def test_child_then_parent(self, name_, atom):
        assert name_.child(atom).parent == name_

    @given(compounds)
    def test_rest_shrinks(self, name_):
        if len(name_) > 0:
            assert len(name_.rest) == len(name_) - 1


class TestContextProperties:
    @given(st.lists(st.tuples(atoms, st.integers(0, 3)), max_size=12))
    def test_last_bind_wins(self, pairs):
        pool = [ObjectEntity(f"e{i}") for i in range(4)]
        context = Context()
        expected: dict[str, ObjectEntity] = {}
        for name_, index in pairs:
            context.bind(name_, pool[index])
            expected[name_] = pool[index]
        for name_, entity in expected.items():
            assert context(name_) is entity

    @given(st.lists(atoms, max_size=8))
    def test_unbound_names_are_undefined(self, names):
        context = Context()
        for name_ in names:
            assert context(name_) is UNDEFINED_ENTITY

    @given(st.lists(st.tuples(atoms, st.integers(0, 2)), max_size=10))
    def test_copy_preserves_extension(self, pairs):
        pool = [ObjectEntity(f"e{i}") for i in range(3)]
        context = Context()
        for name_, index in pairs:
            context.bind(name_, pool[index])
        assert context.copy() == context

    @given(st.lists(st.tuples(atoms, st.integers(0, 2)), max_size=10),
           st.lists(st.tuples(atoms, st.integers(0, 2)), max_size=10))
    def test_agreement_disagreement_partition(self, first_pairs,
                                              second_pairs):
        pool = [ObjectEntity(f"e{i}") for i in range(3)]
        first, second = Context(), Context()
        for name_, index in first_pairs:
            first.bind(name_, pool[index])
        for name_, index in second_pairs:
            second.bind(name_, pool[index])
        agree = first.agreement(second)
        disagree = first.disagreement(second)
        assert not (agree & disagree)
        support = set(first.names()) | set(second.names())
        assert agree | disagree == support


class TestResolutionProperties:
    @settings(max_examples=60)
    @given(st.lists(atoms, min_size=1, max_size=5), st.data())
    def test_chain_resolution_matches_manual_walk(self, parts, data):
        # Build a random directory chain binding the path, then check
        # the recursion agrees with a manual walk.
        from repro.model.context import context_object

        root = context_object("root")
        node = root
        for part in parts[:-1]:
            child = context_object(part)
            node.state.bind(part, child)
            node = child
        leaf = ObjectEntity("leaf")
        node.state.bind(parts[-1], leaf)
        assert resolve(root.state, CompoundName(parts)) is leaf

    @given(st.lists(atoms, min_size=1, max_size=5))
    def test_resolution_of_unbuilt_path_is_undefined(self, parts):
        from repro.model.context import context_object

        root = context_object("root")
        assert resolve(root.state, CompoundName(parts)) is UNDEFINED_ENTITY
