"""Tests for the naming graph (section 2)."""

from __future__ import annotations

from repro.model.context import context_object
from repro.model.entities import ObjectEntity
from repro.model.graph import NamingGraph
from repro.model.names import CompoundName
from repro.model.state import GlobalState


def build_world():
    sigma = GlobalState()
    root = sigma.add(context_object("root"))
    usr = sigma.add(context_object("usr"))
    bin_ = sigma.add(context_object("bin"))
    cc = sigma.add(ObjectEntity("cc"))
    root.state.bind("usr", usr)
    usr.state.bind("bin", bin_)
    bin_.state.bind("cc", cc)
    return sigma, root, usr, bin_, cc


class TestEdges:
    def test_edges_follow_context_object_states(self):
        sigma, root, usr, bin_, cc = build_world()
        graph = NamingGraph(sigma)
        edges = {(o.label, n, e.label) for o, n, e in graph.edges()}
        assert edges == {("root", "usr", "usr"), ("usr", "bin", "bin"),
                         ("bin", "cc", "cc")}

    def test_edges_are_live(self):
        sigma, root, usr, bin_, cc = build_world()
        graph = NamingGraph(sigma)
        extra = sigma.add(ObjectEntity("motd"))
        root.state.bind("motd", extra)
        assert ("motd", extra) in graph.out_edges(root)

    def test_out_edges_of_leaf_is_empty(self):
        sigma, *_, cc = build_world()
        assert NamingGraph(sigma).out_edges(cc) == []


class TestReachability:
    def test_reachable_from_root(self):
        sigma, root, usr, bin_, cc = build_world()
        graph = NamingGraph(sigma)
        assert graph.reachable_from(root) == {root, usr, bin_, cc}

    def test_reachable_from_middle(self):
        sigma, root, usr, bin_, cc = build_world()
        graph = NamingGraph(sigma)
        assert graph.reachable_from(usr) == {usr, bin_, cc}

    def test_cycles_terminate(self):
        sigma, root, usr, *_ = build_world()
        usr.state.bind("..", root)
        graph = NamingGraph(sigma)
        assert root in graph.reachable_from(usr)


class TestPaths:
    def test_paths_to(self):
        sigma, root, _, _, cc = build_world()
        graph = NamingGraph(sigma)
        assert graph.paths_to(root, cc) == [
            CompoundName.parse("usr/bin/cc")]

    def test_multiple_paths(self):
        sigma, root, usr, bin_, cc = build_world()
        root.state.bind("b2", bin_)  # second route to cc
        graph = NamingGraph(sigma)
        paths = {str(p) for p in graph.paths_to(root, cc)}
        assert paths == {"usr/bin/cc", "b2/cc"}

    def test_resolution_correspondence(self):
        # "Resolving a compound name corresponds to traversing a
        # directed path in the naming graph."
        sigma, root, *_ = build_world()
        graph = NamingGraph(sigma)
        for text in ("usr", "usr/bin", "usr/bin/cc", "usr/nope"):
            assert graph.verify_resolution_correspondence(
                root, CompoundName.parse(text))


class TestTreeCheck:
    def test_tree_is_tree(self):
        sigma, root, *_ = build_world()
        assert NamingGraph(sigma).is_tree(root)

    def test_shared_node_is_not_tree(self):
        sigma, root, usr, bin_, cc = build_world()
        root.state.bind("alias", bin_)
        assert not NamingGraph(sigma).is_tree(root)

    def test_dotdot_edges_ignored(self):
        sigma, root, usr, *_ = build_world()
        usr.state.bind("..", root)
        assert NamingGraph(sigma).is_tree(root)


class TestNetworkxExport:
    def test_snapshot_shape(self):
        sigma, root, usr, bin_, cc = build_world()
        nxg = NamingGraph(sigma).to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 3
        assert nxg.has_edge(root.uid, usr.uid)
        assert nxg.nodes[cc.uid]["label"] == "cc"
        assert nxg.nodes[root.uid]["context"] is True
        assert nxg.nodes[cc.uid]["context"] is False
