"""Tests for entities: activities, objects, ⊥E (paper section 2)."""

from __future__ import annotations

import pytest

from repro.errors import EntityError
from repro.model.context import Context, context_object
from repro.model.entities import (
    Activity,
    Obj,
    ObjectEntity,
    UNDEFINED_ENTITY,
    require_activity,
    require_object,
)
from repro.model.state import UNDEFINED_STATE


class TestEntityKinds:
    def test_activity_is_activity(self):
        activity = Activity("p")
        assert activity.is_activity()
        assert not activity.is_object()

    def test_object_is_object(self):
        obj = ObjectEntity("f")
        assert obj.is_object()
        assert not obj.is_activity()

    def test_obj_alias(self):
        assert Obj is ObjectEntity

    def test_sets_are_disjoint(self):
        # A ∩ O = ∅: no entity is both.
        entities = [Activity("a"), ObjectEntity("o")]
        assert not any(e.is_activity() and e.is_object() for e in entities)

    def test_uids_are_unique_and_monotonic(self):
        first, second = Activity("x"), ObjectEntity("y")
        assert first.uid < second.uid

    def test_default_labels(self):
        assert Activity().label.startswith("activity-")
        assert ObjectEntity().label.startswith("object-")

    def test_repr_contains_label(self):
        assert "motd" in repr(ObjectEntity("motd"))


class TestContextObjects:
    def test_plain_object_is_not_context_object(self):
        assert not ObjectEntity("f").is_context_object()

    def test_object_with_context_state_is_context_object(self):
        directory = ObjectEntity("d")
        directory.state = Context()
        assert directory.is_context_object()

    def test_context_object_helper(self):
        directory = context_object("home")
        assert directory.is_context_object()
        assert directory.label == "home"

    def test_activity_with_context_state_is_not_context_object(self):
        # Context objects are objects by definition (C ⊆ S_O).
        activity = Activity("a")
        activity.state = Context()
        assert not activity.is_context_object()


class TestUndefinedEntity:
    def test_is_singleton(self):
        assert type(UNDEFINED_ENTITY)() is UNDEFINED_ENTITY

    def test_not_in_a_or_o(self):
        assert not UNDEFINED_ENTITY.is_activity()
        assert not UNDEFINED_ENTITY.is_object()

    def test_not_defined(self):
        assert not UNDEFINED_ENTITY.is_defined()
        assert Activity("a").is_defined()

    def test_falsy(self):
        assert not UNDEFINED_ENTITY

    def test_state_is_undefined_state(self):
        assert UNDEFINED_ENTITY.state is UNDEFINED_STATE

    def test_state_is_immutable(self):
        with pytest.raises(EntityError):
            UNDEFINED_ENTITY.state = 42

    def test_repr(self):
        assert repr(UNDEFINED_ENTITY) == "UNDEFINED_ENTITY"


class TestRequireHelpers:
    def test_require_activity_passes(self):
        activity = Activity("a")
        assert require_activity(activity) is activity

    def test_require_activity_rejects_object(self):
        with pytest.raises(EntityError):
            require_activity(ObjectEntity("o"))

    def test_require_object_passes(self):
        obj = ObjectEntity("o")
        assert require_object(obj) is obj

    def test_require_object_rejects_undefined(self):
        with pytest.raises(EntityError):
            require_object(UNDEFINED_ENTITY)


class TestState:
    def test_state_roundtrip(self):
        obj = ObjectEntity("f")
        obj.state = "content"
        assert obj.state == "content"

    def test_state_defaults_to_none(self):
        assert ObjectEntity("f").state is None
