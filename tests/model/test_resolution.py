"""Tests for compound-name resolution — the section-2 recursion."""

from __future__ import annotations

import pytest

from repro.model.context import Context, context_object
from repro.model.entities import ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import ROOT_NAME, CompoundName
from repro.model.resolution import resolve, resolve_traced


@pytest.fixture
def world():
    """root(dir) → usr(dir) → bin(dir) → cc(file); plus etc(dir)."""
    root = context_object("root")
    usr = context_object("usr")
    bin_ = context_object("bin")
    etc = context_object("etc")
    cc = ObjectEntity("cc")
    root.state.bind("usr", usr)
    root.state.bind("etc", etc)
    usr.state.bind("bin", bin_)
    bin_.state.bind("cc", cc)
    return root, usr, bin_, etc, cc


class TestSimpleNames:
    def test_single_component(self, world):
        root, usr, *_ = world
        assert resolve(root.state, "usr") is usr

    def test_unbound_single_component(self, world):
        root, *_ = world
        assert resolve(root.state, "nope") is UNDEFINED_ENTITY


class TestRecursion:
    def test_two_components(self, world):
        root, _, bin_, _, _ = world
        assert resolve(root.state, "usr/bin") is bin_

    def test_three_components(self, world):
        root, *_, cc = world
        assert resolve(root.state, "usr/bin/cc") is cc

    def test_stuck_on_missing_intermediate(self, world):
        root, *_ = world
        assert resolve(root.state, "usr/nope/cc") is UNDEFINED_ENTITY

    def test_stuck_on_non_context_intermediate(self, world):
        # cc is a plain object: σ(c(n1)) ∉ C ⇒ ⊥E.
        root, *_ = world
        assert resolve(root.state, "usr/bin/cc/deeper") is UNDEFINED_ENTITY

    def test_result_depends_on_context_object_state(self, world):
        # Rebinding along the path changes the result (the paper: "the
        # result depends on the state of the context objects along the
        # resolution path").
        root, usr, bin_, etc, cc = world
        other = ObjectEntity("other-cc")
        bin_.state.bind("cc", other)
        assert resolve(root.state, "usr/bin/cc") is other

    def test_empty_name_is_undefined(self, world):
        root, *_ = world
        assert resolve(root.state, CompoundName()) is UNDEFINED_ENTITY


class TestRootedNames:
    def test_rooted_name_uses_root_binding(self, world):
        root, *_, cc = world
        process_context = Context()
        process_context.bind(ROOT_NAME, root)
        assert resolve(process_context, "/usr/bin/cc") is cc

    def test_bare_slash_resolves_to_root_object(self, world):
        root, *_ = world
        process_context = Context()
        process_context.bind(ROOT_NAME, root)
        assert resolve(process_context, "/") is root

    def test_rooted_name_without_root_binding_is_undefined(self, world):
        assert resolve(Context(), "/usr") is UNDEFINED_ENTITY

    def test_rooted_name_with_non_directory_root(self):
        context = Context()
        context.bind(ROOT_NAME, ObjectEntity("not-a-dir"))
        assert resolve(context, "/x") is UNDEFINED_ENTITY


class TestTraces:
    def test_trace_records_steps(self, world):
        root, usr, bin_, _, cc = world
        trace = resolve_traced(root.state, "usr/bin/cc")
        assert trace.succeeded
        assert [s.component for s in trace.steps] == ["usr", "bin", "cc"]
        assert trace.path_entities() == [usr, bin_, cc]
        assert trace.stuck_at is None

    def test_trace_marks_stuck_component(self, world):
        root, *_ = world
        trace = resolve_traced(root.state, "usr/nope/cc")
        assert not trace.succeeded
        assert trace.stuck_at == 1

    def test_trace_stuck_on_final_unbound(self, world):
        root, *_ = world
        trace = resolve_traced(root.state, "usr/bin/missing")
        assert trace.stuck_at == 2

    def test_rooted_trace_includes_root_step(self, world):
        root, *_ = world
        context = Context()
        context.bind(ROOT_NAME, root)
        trace = resolve_traced(context, "/usr")
        assert trace.steps[0].component == ROOT_NAME
        assert trace.steps[0].result is root

    def test_empty_trace(self, world):
        root, *_ = world
        trace = resolve_traced(root.state, CompoundName())
        assert trace.stuck_at == 0
        assert not trace.succeeded

    def test_repr(self, world):
        root, *_ = world
        assert "usr" in repr(resolve_traced(root.state, "usr"))


class TestCycles:
    def test_dotdot_cycles_are_just_bindings(self, world):
        # The model follows `..` like any other edge; a bounded name
        # always terminates.
        root, usr, *_ = world
        usr.state.bind("..", root)
        assert resolve(root.state, "usr/../usr/../usr") is usr
