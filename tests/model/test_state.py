"""Tests for states and the global state function σ (section 2)."""

from __future__ import annotations

from repro.model.context import Context, context_object
from repro.model.entities import Activity, ObjectEntity, UNDEFINED_ENTITY
from repro.model.state import GlobalState, UNDEFINED_STATE


class TestUndefinedState:
    def test_singleton(self):
        assert type(UNDEFINED_STATE)() is UNDEFINED_STATE

    def test_falsy(self):
        assert not UNDEFINED_STATE

    def test_repr(self):
        assert repr(UNDEFINED_STATE) == "UNDEFINED_STATE"


class TestSigma:
    def test_reads_live_state(self):
        obj = ObjectEntity("f")
        sigma = GlobalState([obj])
        obj.state = "v1"
        assert sigma(obj) == "v1"
        obj.state = "v2"
        assert sigma(obj) == "v2"

    def test_undefined_entity_maps_to_undefined_state(self):
        sigma = GlobalState()
        assert sigma(UNDEFINED_ENTITY) is UNDEFINED_STATE

    def test_unregistered_entity_maps_to_undefined_state(self):
        sigma = GlobalState()
        assert sigma(ObjectEntity("ghost")) is UNDEFINED_STATE

    def test_membership_and_len(self):
        obj = ObjectEntity("f")
        sigma = GlobalState([obj])
        assert obj in sigma
        assert len(sigma) == 1

    def test_add_returns_entity(self):
        sigma = GlobalState()
        obj = ObjectEntity("f")
        assert sigma.add(obj) is obj

    def test_add_undefined_is_noop(self):
        sigma = GlobalState()
        sigma.add(UNDEFINED_ENTITY)
        assert len(sigma) == 0

    def test_discard(self):
        obj = ObjectEntity("f")
        sigma = GlobalState([obj])
        sigma.discard(obj)
        assert obj not in sigma
        sigma.discard(obj)  # idempotent


class TestPartitions:
    def test_activities_and_objects(self):
        activity = Activity("p")
        obj = ObjectEntity("f")
        directory = context_object("d")
        sigma = GlobalState([activity, obj, directory])
        assert sigma.activities() == [activity]
        assert set(sigma.objects()) == {obj, directory}
        assert sigma.context_objects() == [directory]


class TestSnapshot:
    def test_snapshot_captures_plain_states(self):
        obj = ObjectEntity("f")
        obj.state = "v1"
        sigma = GlobalState([obj])
        picture = sigma.snapshot()
        obj.state = "v2"
        assert picture[obj.uid] == "v1"

    def test_snapshot_copies_contexts(self):
        directory = context_object("d")
        target = ObjectEntity("t")
        directory.state.bind("t", target)
        sigma = GlobalState([directory, target])
        picture = sigma.snapshot()
        directory.state.unbind("t")
        assert isinstance(picture[directory.uid], Context)
        assert picture[directory.uid]("t") is target
