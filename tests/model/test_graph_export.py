"""Tests for the DOT export and Pid text parsing (small utilities)."""

from __future__ import annotations

import pytest

from repro.errors import AddressError
from repro.model.context import context_object
from repro.model.entities import Activity, ObjectEntity
from repro.model.graph import NamingGraph
from repro.model.state import GlobalState
from repro.pqid.pid import Pid


class TestToDot:
    @pytest.fixture
    def world(self):
        sigma = GlobalState()
        root = sigma.add(context_object("root"))
        leaf = sigma.add(ObjectEntity("leaf"))
        actor = sigma.add(Activity("proc"))
        root.state.bind("leaf", leaf)
        root.state.bind("..", root)
        return sigma, root, leaf, actor

    def test_shapes_by_kind(self, world):
        sigma, root, leaf, actor = world
        dot = NamingGraph(sigma).to_dot()
        assert "shape=box" in dot        # directory
        assert "shape=ellipse" in dot    # leaf object
        assert "shape=diamond" in dot    # activity

    def test_parent_edges_dashed(self, world):
        sigma, *_ = world
        dot = NamingGraph(sigma).to_dot()
        assert "style=dashed" in dot

    def test_highlight(self, world):
        sigma, root, leaf, _ = world
        dot = NamingGraph(sigma).to_dot(highlight=leaf)
        assert "fillcolor=lightgrey" in dot

    def test_valid_structure(self, world):
        sigma, *_ = world
        dot = NamingGraph(sigma).to_dot()
        assert dot.startswith("digraph naming_graph {")
        assert dot.endswith("}")
        assert dot.count("->") == 2  # leaf edge + .. edge


class TestPidParse:
    def test_roundtrip(self):
        for pid in (Pid(0, 0, 0), Pid(0, 0, 5), Pid(0, 3, 5),
                    Pid(2, 3, 5)):
            assert Pid.parse(str(pid)) == pid

    def test_whitespace_tolerated(self):
        assert Pid.parse(" ( 1 , 2 , 3 ) ") == Pid(1, 2, 3)

    def test_bare_triple(self):
        assert Pid.parse("1,2,3") == Pid(1, 2, 3)

    def test_malformed_rejected(self):
        for bad in ("", "(1,2)", "(a,b,c)", "(1,2,3,4)", "1;2;3"):
            with pytest.raises(AddressError):
                Pid.parse(bad)

    def test_invalid_shape_rejected(self):
        with pytest.raises(AddressError):
            Pid.parse("(1,0,5)")

    def test_non_string_rejected(self):
        with pytest.raises(AddressError):
            Pid.parse(123)  # type: ignore[arg-type]
