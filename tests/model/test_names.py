"""Tests for atomic and compound names (paper section 2)."""

from __future__ import annotations

import pytest

from repro.errors import NameSyntaxError
from repro.model.names import (
    PARENT,
    ROOT_NAME,
    CompoundName,
    check_atomic_name,
    is_atomic_name,
    name,
)


class TestAtomicNames:
    def test_simple_string_is_atomic(self):
        assert is_atomic_name("usr")

    def test_empty_string_is_not_atomic(self):
        assert not is_atomic_name("")

    def test_separator_not_allowed(self):
        assert not is_atomic_name("usr/bin")

    def test_root_name_is_not_an_atomic_component(self):
        assert not is_atomic_name(ROOT_NAME)

    def test_non_string_is_not_atomic(self):
        assert not is_atomic_name(42)
        assert not is_atomic_name(None)

    def test_dotdot_is_atomic(self):
        assert is_atomic_name(PARENT)

    def test_check_returns_the_name(self):
        assert check_atomic_name("etc") == "etc"

    def test_check_raises_on_bad_name(self):
        with pytest.raises(NameSyntaxError):
            check_atomic_name("a/b")


class TestParsing:
    def test_parse_relative(self):
        parsed = CompoundName.parse("usr/bin/cc")
        assert parsed.parts == ("usr", "bin", "cc")
        assert not parsed.rooted

    def test_parse_rooted(self):
        parsed = CompoundName.parse("/etc/passwd")
        assert parsed.parts == ("etc", "passwd")
        assert parsed.rooted

    def test_parse_collapses_doubled_separators(self):
        assert CompoundName.parse("a//b").parts == ("a", "b")

    def test_parse_drops_self_components(self):
        assert CompoundName.parse("a/./b").parts == ("a", "b")

    def test_parse_trailing_separator(self):
        assert CompoundName.parse("a/b/").parts == ("a", "b")

    def test_parse_bare_slash_is_empty_rooted(self):
        parsed = CompoundName.parse("/")
        assert parsed.parts == ()
        assert parsed.rooted

    def test_parse_keeps_dotdot(self):
        assert CompoundName.parse("../m2/usr").parts == ("..", "m2", "usr")

    def test_parse_rejects_non_string(self):
        with pytest.raises(NameSyntaxError):
            CompoundName.parse(123)  # type: ignore[arg-type]

    def test_str_roundtrip(self):
        for text in ("/etc/passwd", "usr/bin/cc", "../m2/x", "/"):
            assert str(CompoundName.parse(text)) == text

    def test_coerce_accepts_all_forms(self):
        a = CompoundName.coerce("a/b")
        b = CompoundName.coerce(["a", "b"])
        c = CompoundName.coerce(a)
        assert a == b == c
        assert c is a


class TestStructure:
    def test_first_rest(self):
        parsed = CompoundName.parse("a/b/c")
        assert parsed.first == "a"
        assert parsed.rest == CompoundName.parse("b/c")

    def test_rest_of_rooted_is_relative(self):
        assert not CompoundName.parse("/a/b").rest.rooted

    def test_last_and_parent(self):
        parsed = CompoundName.parse("/a/b/c")
        assert parsed.last == "c"
        assert parsed.parent == CompoundName.parse("/a/b")

    def test_parent_keeps_rootedness(self):
        assert CompoundName.parse("/a/b").parent.rooted
        assert not CompoundName.parse("a/b").parent.rooted

    def test_empty_name_has_no_first(self):
        with pytest.raises(NameSyntaxError):
            _ = CompoundName().first

    def test_require_nonempty(self):
        with pytest.raises(NameSyntaxError):
            CompoundName().require_nonempty()
        assert CompoundName(["a"]).require_nonempty().parts == ("a",)

    def test_is_simple(self):
        assert CompoundName(["a"]).is_simple()
        assert not CompoundName(["a", "b"]).is_simple()

    def test_sequence_protocol(self):
        parsed = CompoundName.parse("a/b/c")
        assert len(parsed) == 3
        assert list(parsed) == ["a", "b", "c"]
        assert parsed[1] == "b"
        assert parsed[1:].parts == ("b", "c")
        assert "b" in parsed


class TestAlgebra:
    def test_child(self):
        assert CompoundName.parse("/a").child("b") == \
            CompoundName.parse("/a/b")

    def test_join_relative(self):
        joined = CompoundName.parse("/a").join("b/c")
        assert joined == CompoundName.parse("/a/b/c")

    def test_join_rooted_replaces(self):
        joined = CompoundName.parse("/a").join("/x")
        assert joined == CompoundName.parse("/x")

    def test_relative_and_as_rooted(self):
        rooted = CompoundName.parse("/a/b")
        assert not rooted.relative().rooted
        assert rooted.relative().as_rooted() == rooted
        # Idempotence returns self.
        assert rooted.as_rooted() is rooted
        relative = CompoundName.parse("a")
        assert relative.relative() is relative

    def test_starts_with(self):
        assert CompoundName.parse("/vice/usr").starts_with("/vice")
        assert not CompoundName.parse("vice/usr").starts_with("/vice")
        assert CompoundName.parse("a/b/c").starts_with("a/b")
        assert not CompoundName.parse("a/b").starts_with("a/b/c")

    def test_strip_prefix(self):
        stripped = CompoundName.parse("/vice/usr/f").strip_prefix("/vice")
        assert stripped == CompoundName.parse("usr/f")
        with pytest.raises(NameSyntaxError):
            CompoundName.parse("/a/b").strip_prefix("/x")

    def test_with_prefix(self):
        prefixed = CompoundName.parse("/users/bob").with_prefix("/org2")
        assert str(prefixed) == "/org2/users/bob"

    def test_normalized_collapses_dotdot(self):
        assert CompoundName.parse("a/b/../c").normalized() == \
            CompoundName.parse("a/c")

    def test_normalized_preserves_leading_dotdot_when_relative(self):
        assert CompoundName.parse("../../x").normalized().parts == \
            ("..", "..", "x")

    def test_normalized_drops_leading_dotdot_when_rooted(self):
        assert CompoundName.parse("/../x").normalized() == \
            CompoundName.parse("/x")


class TestIdentity:
    def test_equality_distinguishes_rootedness(self):
        assert CompoundName.parse("/a") != CompoundName.parse("a")

    def test_hashable(self):
        names = {CompoundName.parse("/a"), CompoundName.parse("a"),
                 CompoundName.parse("/a")}
        assert len(names) == 2

    def test_ordering_is_total_on_mixed_sets(self):
        names = [CompoundName.parse(t) for t in ("/b", "a", "/a", "b")]
        ordered = sorted(names)
        assert [str(n) for n in ordered] == ["/a", "/b", "a", "b"]

    def test_eq_other_type_is_not_implemented(self):
        assert CompoundName.parse("a").__eq__(42) is NotImplemented

    def test_repr_is_evalable_form(self):
        assert repr(CompoundName.parse("/a/b")) == \
            "CompoundName.parse('/a/b')"

    def test_module_level_name_helper(self):
        assert name("a/b") == CompoundName.parse("a/b")
