"""Integration tests: the simulator, schemes, closure rules and
coherence auditing working together end-to-end."""

from __future__ import annotations

import random

from repro.closure.meta import NameSource, ResolutionEvent
from repro.closure.rules import PerSourceRule, RActivity, RSender
from repro.coherence.auditor import CoherenceAuditor, Verdict
from repro.coherence.definitions import coherent
from repro.embedded.documents import flatten
from repro.embedded.objects import StructuredContent, structured_object
from repro.embedded.scoping import scope_rule
from repro.model.graph import NamingGraph
from repro.namespaces.newcastle import NewcastleSystem, RemoteRootPolicy
from repro.namespaces.shared_graph import SharedGraphSystem
from repro.namespaces.unix import UnixSystem
from repro.pqid.mapping import qualify
from repro.pqid.transport import PidPolicy, exchange_outcome, send_pid
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.workloads.scenarios import build_pqid_population


class TestSimulatedUnixMachine:
    """Simulator processes adopted as Unix-scheme activities."""

    def test_sim_processes_with_unix_contexts(self):
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        machine = simulator.machine(network, "box")
        unix = UnixSystem("box", sigma=simulator.sigma)
        unix.tree.mkfile("etc/passwd")
        parent = unix.spawn("init",
                            activity=simulator.spawn(machine, "init"))
        child = unix.fork(parent,
                          "sh", activity=simulator.spawn(machine, "sh"))
        # The child receives a file name in a message and resolves it
        # in its own context — coherent, because fork copied the
        # parent's context.
        parent.send(child, payload={"open": "/etc/passwd"})
        simulator.run()
        received = child.receive()
        assert received.payload["open"] == "/etc/passwd"
        resolved = unix.resolve_for(child, received.payload["open"])
        assert resolved is unix.resolve_for(parent, "/etc/passwd")

    def test_naming_graph_reflects_scheme_trees(self):
        simulator = Simulator(seed=0)
        unix = UnixSystem("box", sigma=simulator.sigma)
        unix.tree.mkfile("usr/bin/cc")
        graph = NamingGraph(simulator.sigma)
        cc = unix.tree.lookup("usr/bin/cc")
        assert cc in graph.reachable_from(unix.tree.root)


class TestNewcastleRemoteExecutionStory:
    """The full §5.1 story: remote execution across the Newcastle
    Connection with both root policies, audited."""

    def test_invoker_variant_supports_argument_passing(self):
        nc = NewcastleSystem()
        for machine in ("a", "b"):
            nc.add_machine(machine).mkfile("usr/lib/shared")
        nc.machine_tree("a").mkfile("home/user/input.txt")
        parent = nc.spawn("a", "shell")
        child = nc.remote_spawn(parent, "b", "job",
                                RemoteRootPolicy.INVOKER)
        auditor = CoherenceAuditor(RActivity(nc.registry))
        events = [ResolutionEvent(
            name="/home/user/input.txt", source=NameSource.MESSAGE,
            resolver=child, sender=parent,
            intended=nc.resolve_for(parent, "/home/user/input.txt"))]
        auditor.observe_all(events)
        assert auditor.summary.coherence_rate() == 1.0

    def test_sender_rule_repairs_target_variant(self):
        # Even with target-root binding, resolving received names in
        # the SENDER's context (solution I) restores coherence.
        nc = NewcastleSystem()
        for machine in ("a", "b"):
            nc.add_machine(machine).mkfile("data/file")
        parent = nc.spawn("a", "shell")
        child = nc.remote_spawn(parent, "b", "job",
                                RemoteRootPolicy.TARGET)
        event = ResolutionEvent(
            name="/data/file", source=NameSource.MESSAGE,
            resolver=child, sender=parent,
            intended=nc.resolve_for(parent, "/data/file"))
        receiver_audit = CoherenceAuditor(RActivity(nc.registry))
        sender_audit = CoherenceAuditor(RSender(nc.registry))
        assert receiver_audit.observe(event).verdict is Verdict.INCOHERENT
        assert sender_audit.observe(event).verdict is Verdict.COHERENT


class TestAndrewDocumentPipeline:
    """Structured documents stored in the shared graph keep their
    meaning for every client (§5.2 + §6 Example 2 combined)."""

    def test_document_in_shared_graph(self):
        campus = SharedGraphSystem()
        chapter = campus.shared.mkfile("book/ch1")
        chapter.state = "CHAPTER ONE"
        campus.shared.add("book/main", structured_object(
            "main", StructuredContent().include("ch1"),
            sigma=campus.sigma))
        for label in ("ws1", "ws2"):
            campus.add_client(label)
        readers = [campus.client(c).spawn(f"{c}-reader")
                   for c in ("ws1", "ws2")]
        main = campus.shared.lookup("book/main")
        rule = scope_rule(campus.sigma)
        texts = {flatten(main, reader, rule) for reader in readers}
        assert texts == {"CHAPTER ONE"}

    def test_document_in_local_tree_breaks_across_clients(self):
        campus = SharedGraphSystem()
        ws1 = campus.add_client("ws1")
        ws2 = campus.add_client("ws2")
        part = ws1.tree.mkfile("doc/part")
        part.state = "PART"
        ws1.tree.add("doc/main", structured_object(
            "main", StructuredContent().include("part"),
            sigma=campus.sigma))
        readers = [ws1.spawn("r1"), ws2.spawn("r2")]
        # Under R(activity), resolving the embedded name relative to
        # each reader's own root: ws2's reader fails.
        rule = RActivity(campus.registry)
        main = ws1.tree.lookup("doc/main")
        texts = [flatten(main, reader, rule) for reader in readers]
        assert "⊥" in texts[0] or texts[0] != texts[1]
        # Under the Figure-6 R(file) rule both agree.
        fixed = scope_rule(campus.sigma)
        assert len({flatten(main, r, fixed) for r in readers}) == 1


class TestPidProtocolUnderChurn:
    """Pid exchange stays coherent through renumbering when mapped."""

    def test_mapped_exchange_after_renumbering(self):
        population = build_pqid_population(seed=9)
        simulator = population.simulator
        injector = FailureInjector(simulator)
        rng = random.Random(9)
        injector.renumber_machine(population.machines[0], 71)
        injector.renumber_network(population.networks[0], 72)
        outcomes = set()
        for _ in range(40):
            sender, receiver = population.random_pair(rng)
            target = rng.choice(population.processes)
            exchange = send_pid(sender, receiver, target,
                                PidPolicy.MAPPED)
            simulator.run()
            outcomes.add(exchange_outcome(exchange))
        assert outcomes == {"coherent"}

    def test_partition_drops_but_does_not_corrupt(self):
        population = build_pqid_population(seed=4)
        simulator = population.simulator
        net1, net2 = population.networks
        simulator.partition(net1, net2)
        sender = net1.machines()[0].processes()[0]
        receiver = net2.machines()[0].processes()[0]
        target = sender.machine.processes()[1]
        exchange = send_pid(sender, receiver, target, PidPolicy.MAPPED)
        simulator.run()
        assert exchange.message.dropped
        # The mapped wire pid is still the correct one.
        assert exchange.wire == qualify(target, receiver)


class TestPerSourceDesign:
    """The §7 overall design: a per-source rule table over a real
    scheme keeps every source coherent except internal homonyms."""

    def test_full_rule_table_over_unix(self):
        unix = UnixSystem("box")
        unix.tree.mkfile("etc/passwd")
        report = unix.tree.mkfile("report/body")
        report.state = "BODY"
        doc = unix.tree.add("report/main", structured_object(
            "main", StructuredContent().include("body"),
            sigma=unix.sigma))
        parent = unix.spawn("parent")
        child = unix.fork(parent, "child")
        rule = PerSourceRule({
            NameSource.INTERNAL: RActivity(unix.registry),
            NameSource.MESSAGE: RSender(unix.registry),
            NameSource.OBJECT: scope_rule(unix.sigma),
        })
        events = [
            ResolutionEvent(name="/etc/passwd",
                            source=NameSource.INTERNAL, resolver=child,
                            intended=unix.resolve_for(parent,
                                                      "/etc/passwd")),
            ResolutionEvent(name="/etc/passwd",
                            source=NameSource.MESSAGE, resolver=child,
                            sender=parent,
                            intended=unix.resolve_for(parent,
                                                      "/etc/passwd")),
            ResolutionEvent(name="body", source=NameSource.OBJECT,
                            resolver=child, source_object=doc,
                            intended=report),
        ]
        auditor = CoherenceAuditor(rule)
        auditor.observe_all(events)
        assert auditor.summary.coherence_rate() == 1.0
