"""Scale tests: the claims hold on larger-than-toy populations."""

from __future__ import annotations

import random

from repro.closure.rules import RReceiver, RSender
from repro.coherence.auditor import CoherenceAuditor
from repro.coherence.definitions import is_global_name
from repro.coherence.metrics import measure_degree
from repro.workloads.generators import exchange_events
from repro.workloads.organizations import (
    OrgSpec,
    build_campus,
    build_federation,
)
from repro.workloads.scenarios import build_pqid_population


class TestLargeCampus:
    def test_ten_clients_full_shared_coherence(self):
        campus = build_campus(clients=10, local_files_per_client=5,
                              shared_files=20, replicated_commands=5,
                              processes_per_client=3, seed=3)
        activities = campus.activities()
        assert len(activities) == 30
        degree = measure_degree(activities, campus.shared_probe_names(),
                                campus.registry)
        assert degree.coherent_fraction == 1.0
        assert degree.global_fraction == 1.0

    def test_local_names_never_cross_clients(self):
        campus = build_campus(clients=6, local_files_per_client=4,
                              shared_files=4, replicated_commands=0,
                              processes_per_client=2, seed=4)
        degree = measure_degree(campus.activities(),
                                campus.local_probe_names(),
                                campus.registry)
        assert degree.coherent_fraction == 0.0
        for client in campus.clients():
            members = [a for a in campus.activities()
                       if a.label.startswith(client.label)]
            local = [p.as_rooted() for p in client.tree.all_paths()
                     if not p.starts_with(campus.shared_prefix)]
            inner = measure_degree(members, local, campus.registry)
            assert inner.coherent_fraction == 1.0


class TestLargeFederation:
    def test_five_orgs(self):
        specs = [OrgSpec(f"org{i}", divisions=3, users_per_division=4,
                         services=2, activities_per_division=2)
                 for i in range(5)]
        env, orgs = build_federation(specs, seed=5)
        assert len(env.activities()) == 5 * 3 * 2
        # Within each org: full coherence for its shared spaces.
        for org in orgs:
            degree = measure_degree(org.activities,
                                    org.user_names + org.service_names,
                                    env.registry)
            assert degree.coherent_fraction == 1.0
        # Across all orgs: /users itself never global.
        everyone = [a for org in orgs for a in org.activities]
        assert not is_global_name("/users", everyone, env.registry)

    def test_sender_rule_scales(self):
        specs = [OrgSpec(f"org{i}", divisions=2, users_per_division=3,
                         services=1) for i in range(3)]
        env, orgs = build_federation(specs, seed=6)
        everyone = [a for org in orgs for a in org.activities]
        names = [n for org in orgs for n in org.user_names]
        rng = random.Random(6)
        events = exchange_events(env.registry, everyone, names, rng, 600)
        sender_rate = (CoherenceAuditor(RSender(env.registry))
                       .observe_all(events).summary.coherence_rate())
        receiver_rate = (CoherenceAuditor(RReceiver(env.registry))
                         .observe_all(events).summary.coherence_rate())
        assert sender_rate == 1.0
        assert receiver_rate < 1.0


class TestLargePidPopulation:
    def test_minimality_over_hundreds_of_pairs(self):
        from repro.pqid.mapping import map_pid, qualify, resolve_pid

        population = build_pqid_population(seed=7, n_networks=4,
                                           machines_per_network=4,
                                           processes_per_machine=4)
        assert len(population.processes) == 64
        rng = random.Random(7)
        for _ in range(300):
            sender, receiver = population.random_pair(rng)
            target = rng.choice(population.processes)
            pid = qualify(target, sender)
            mapped = map_pid(pid, sender, receiver)
            assert resolve_pid(mapped, receiver) is target
            assert mapped == qualify(target, receiver)
