"""Every Python snippet in docs/tutorial.md must actually run.

Keeps the tutorial honest: the code blocks are extracted and executed
top to bottom in one shared namespace per block.
"""

from __future__ import annotations

import re
from pathlib import Path


TUTORIAL = Path(__file__).resolve().parents[2] / "docs" / "tutorial.md"


def python_blocks() -> list[str]:
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


BLOCKS = python_blocks()


def test_tutorial_has_snippets():
    assert len(BLOCKS) >= 6


def test_snippets_run_in_order():
    # The tutorial reads top to bottom; later blocks may use names
    # introduced earlier, so all blocks share one namespace.
    namespace: dict = {}
    for index, code in enumerate(BLOCKS):
        exec(compile(code, f"tutorial-block-{index}", "exec"), namespace)


def test_key_claims_in_snippets_hold():
    """Re-run the load-bearing snippets with assertions attached."""
    from repro import CompoundName, coherent
    from repro.namespaces import UnixSystem

    path = CompoundName.parse("/usr/bin/cc")
    assert path.rooted and path.parts == ("usr", "bin", "cc")

    unix = UnixSystem("box")
    unix.tree.mkfile("home/alice/notes")
    shell = unix.spawn("shell", cwd="home/alice")
    editor = unix.fork(shell, "editor")
    assert coherent("notes", [shell, editor], unix.registry)
    unix.chdir(editor, "/")
    assert not coherent("notes", [shell, editor], unix.registry)
