"""Tests for the public API surface and the exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name_ in repro.__all__:
            assert hasattr(repro, name_), f"repro.{name_} missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_readme_quickstart_works(self):
        from repro import coherent, is_global_name
        from repro.namespaces import UnixSystem

        unix = UnixSystem("demo")
        unix.tree.mkfile("etc/passwd")
        init = unix.spawn("init")
        shell = unix.fork(init, "shell")
        jailed = unix.spawn("jailed")
        unix.chroot(jailed, "/etc")
        everyone = unix.activities()
        assert coherent("/etc/passwd", [init, shell], unix.registry)
        assert not coherent("/etc/passwd", everyone, unix.registry)
        assert not is_global_name("/etc/passwd", everyone, unix.registry)

    def test_subpackage_all_exports_resolve(self):
        import repro.closure
        import repro.coherence
        import repro.embedded
        import repro.federation
        import repro.model
        import repro.namespaces
        import repro.nameservice
        import repro.obs
        import repro.pqid
        import repro.remote
        import repro.replication
        import repro.sim
        import repro.transport
        import repro.workloads

        for module in (repro.model, repro.closure, repro.coherence,
                       repro.sim, repro.namespaces, repro.pqid,
                       repro.embedded, repro.replication, repro.remote,
                       repro.federation, repro.workloads,
                       repro.nameservice, repro.obs, repro.transport):
            for name_ in module.__all__:
                assert hasattr(module, name_), \
                    f"{module.__name__}.{name_} missing"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for klass in (errors.NameSyntaxError, errors.BindingError,
                      errors.EntityError, errors.ResolutionRuleError,
                      errors.SchemeError, errors.SimulationError,
                      errors.AddressError, errors.FederationError):
            assert issubclass(klass, errors.ReproError)

    def test_name_syntax_error_is_value_error(self):
        assert issubclass(errors.NameSyntaxError, ValueError)

    def test_catching_the_base_catches_everything(self):
        from repro.model.names import CompoundName

        with pytest.raises(errors.ReproError):
            CompoundName.parse(None)  # type: ignore[arg-type]


class TestDocstrings:
    def test_every_public_module_has_a_docstring(self):
        import importlib
        import pkgutil

        package = importlib.import_module("repro")
        missing = []
        for info in pkgutil.walk_packages(package.__path__, "repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_have_docstrings(self):
        import inspect

        from repro import coherence, closure, model

        for module in (model, closure, coherence):
            for name_ in module.__all__:
                member = getattr(module, name_)
                if inspect.isclass(member) or inspect.isfunction(member):
                    assert (member.__doc__ or "").strip(), \
                        f"{module.__name__}.{name_} lacks a docstring"
