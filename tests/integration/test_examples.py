"""Every shipped example must run and print its headline output."""

from __future__ import annotations

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["R(sender) on a sent relative name: coherent",
                      "'/etc/passwd' is a global name: True"],
    "remote_execution.py": ["per-process/import",
                            "newcastle/invoker-root"],
    "structured_documents.py": ["Same meaning for every reader",
                                "THESIS: [thesis intro] + [thesis body]"],
    "pid_relocation.py": ["Phase 2", "partially qualified"],
    "federated_organizations.py": ["Mapping burden",
                                   "under R(file):     <WELCOME>"],
    "name_service_costs.py": ["Server load after the workload",
                              "/vice/usr/alice/thesis"],
    "service_registry_caching.py": ["what the app sees across a "
                                    "redeploy", "STALE"],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs_and_prints(script):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    output = buffer.getvalue()
    for snippet in EXPECTED_SNIPPETS[script]:
        assert snippet in output, (
            f"{script} output missing {snippet!r}:\n{output[:2000]}")


def test_every_example_is_covered():
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    assert shipped == set(EXPECTED_SNIPPETS)
