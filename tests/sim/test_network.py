"""Tests for the network/machine topology and renumbering."""

from __future__ import annotations

import pytest

from repro.errors import AddressError
from repro.sim.kernel import Simulator
from repro.sim.network import Internetwork, Machine, Network


class TestAddressAllocation:
    def test_network_addresses_are_dense(self):
        internet = Internetwork()
        first = Network(internet)
        second = Network(internet)
        assert (first.naddr, second.naddr) == (1, 2)

    def test_explicit_network_address(self):
        internet = Internetwork()
        network = Network(internet, naddr=7)
        assert network.naddr == 7
        assert Network(internet).naddr == 8  # allocation continues past

    def test_duplicate_network_address_rejected(self):
        internet = Internetwork()
        Network(internet, naddr=3)
        with pytest.raises(AddressError):
            Network(internet, naddr=3)

    def test_nonpositive_addresses_rejected(self):
        internet = Internetwork()
        with pytest.raises(AddressError):
            Network(internet, naddr=0)
        network = Network(internet)
        with pytest.raises(AddressError):
            Machine(network, maddr=-1)

    def test_machine_addresses_per_network(self):
        internet = Internetwork()
        network = Network(internet)
        first, second = Machine(network), Machine(network)
        assert (first.maddr, second.maddr) == (1, 2)

    def test_lookup_by_address(self):
        internet = Internetwork()
        network = Network(internet)
        machine = Machine(network)
        assert internet.by_naddr(network.naddr) is network
        assert network.by_maddr(machine.maddr) is machine
        assert internet.by_naddr(999) is None
        assert network.by_maddr(999) is None


class TestRenumbering:
    def test_network_renumber_rekeys_lookup(self):
        internet = Internetwork()
        network = Network(internet)
        old = network.naddr
        internet.renumber(network, 42)
        assert network.naddr == 42
        assert internet.by_naddr(42) is network
        assert internet.by_naddr(old) is None

    def test_network_renumber_to_used_address_rejected(self):
        internet = Internetwork()
        first, second = Network(internet), Network(internet)
        with pytest.raises(AddressError):
            internet.renumber(first, second.naddr)

    def test_network_renumber_to_own_address_ok(self):
        internet = Internetwork()
        network = Network(internet)
        internet.renumber(network, network.naddr)
        assert internet.by_naddr(network.naddr) is network

    def test_machine_renumber(self):
        internet = Internetwork()
        network = Network(internet)
        machine = Machine(network)
        old = machine.maddr
        network.renumber_machine(machine, 9)
        assert machine.maddr == 9
        assert network.by_maddr(9) is machine
        assert network.by_maddr(old) is None

    def test_machine_renumber_wrong_network_rejected(self):
        internet = Internetwork()
        first, second = Network(internet), Network(internet)
        machine = Machine(first)
        with pytest.raises(Exception):
            second.renumber_machine(machine, 5)

    def test_processes_keep_laddrs_through_renumber(self):
        simulator = Simulator()
        network = simulator.network()
        machine = simulator.machine(network)
        process = simulator.spawn(machine)
        old_laddr = process.laddr
        network.renumber_machine(machine, 50)
        assert process.laddr == old_laddr
        assert machine.by_laddr(old_laddr) is process
        assert process.full_address == (network.naddr, 50, old_laddr)


class TestListings:
    def test_networks_ordered_by_current_address(self):
        internet = Internetwork()
        first = Network(internet)
        second = Network(internet)
        internet.renumber(first, 99)
        assert internet.networks() == [second, first]

    def test_machines_ordered(self):
        internet = Internetwork()
        network = Network(internet)
        first, second = Machine(network), Machine(network)
        network.renumber_machine(first, 88)
        assert network.machines() == [second, first]

    def test_len(self):
        internet = Internetwork()
        Network(internet)
        assert len(internet) == 1

    def test_reprs(self):
        internet = Internetwork()
        network = Network(internet, label="lan")
        machine = Machine(network, label="box")
        assert "lan" in repr(network)
        assert "box" in repr(machine)
