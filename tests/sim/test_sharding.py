"""Sharded directory placement: routing, splits, migration, and the
load/epoch bugfixes the million-name workload exposed.

Pins, in one place:

* the :class:`~repro.nameservice.sharding.ShardMap` invariants —
  contiguous ranges, exactly-one-owner (property-tested over random
  split sequences), member conservation across splits;
* uid-keyed load accounting — label-summed ``resolver.load`` is
  reporting-only; decisions key on :meth:`load_by_uid` /
  :meth:`load_of_machine`, which label collisions cannot corrupt;
* epoch discipline — ``place_subtree`` bumps the epoch exactly once
  and re-placing never resurrects stale marks;
* the mid-batch epoch bump — a shard split landing inside
  ``resolve_many`` makes later batch items re-route instead of using
  the pre-split map (the batch route memo is epoch-guarded);
* commit-last migration — an unreachable target aborts the split
  with the old map and the old epoch intact;
* replicated shards — ``place_sharded(..., replicas=N)`` gives every
  shard a replica set, so resolution fails over past a crashed shard
  primary, rebinds fan out to shard secondaries with missed writes
  marked stale, and anti-entropy on restart resyncs from a fellow
  shard replica;
* shard merging — adjacent cold ranges fold back together under the
  same commit-last/epoch discipline, inverse of a split;
* the crash-during-migration fault-point sweep — killing source or
  target at every batch boundary either aborts cleanly or commits,
  never leaving a binding with other than exactly one owner range.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemeError
from repro.model.resolution import resolve as local_resolve
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver
from repro.nameservice.sharding import (
    HASH_SPACE,
    ShardManager,
    ShardMap,
    binding_hash,
)
from repro.nameservice.retry import RetryPolicy
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.workloads.zipf import ZipfSampler, build_zipf_namespace


def make_deployment(names=2000, pool_size=4, seed=0, sharded=True,
                    shards=1, manager=False, check_every=100,
                    min_window=50, replicas=1, migration_batch=100_000,
                    retry=False):
    """A hot directory of *names* bindings under ``/hot``, either on a
    single machine or sharded over the first *shards* pool machines
    (each shard replicated *replicas*-deep), optionally with the live
    split policy wired in."""
    simulator = Simulator(seed=seed)
    network = simulator.network("lan")
    pool = [simulator.machine(network, f"s{i}") for i in range(pool_size)]
    client_m = simulator.machine(network, "client-m")
    tree = NamingTree("root", sigma=simulator.sigma)
    namespace = build_zipf_namespace(tree, "hot", count=names,
                                     distinct=64)
    placement = DirectoryPlacement()
    placement.place(tree.root, client_m)
    if sharded:
        shard_map = placement.place_sharded(namespace.directory,
                                            *pool[:shards],
                                            replicas=replicas)
    else:
        placement.place(namespace.directory, pool[0])
        shard_map = None
    client = simulator.spawn(client_m, "client")
    resolver = DistributedResolver(
        simulator, placement, migration_batch=migration_batch,
        retry_policy=(RetryPolicy(max_attempts=2, base_backoff=0.1,
                                  jitter=0.0) if retry else None))
    if manager:
        resolver.shard_manager = ShardManager(
            resolver, pool=pool, split_fraction=0.3,
            check_every=check_every, min_window=min_window)
    return {
        "simulator": simulator, "resolver": resolver,
        "placement": placement, "client": client,
        "context": ProcessContext(tree.root), "tree": tree,
        "namespace": namespace, "pool": pool, "client_m": client_m,
        "shard_map": shard_map,
    }


class TestShardMap:
    """Structural invariants of the hash-range partition."""

    def test_initial_ranges_tile_the_space(self):
        world = make_deployment(names=500, shards=3)
        shard_map = world["shard_map"]
        assert len(shard_map) == 3
        assert shard_map.is_partition()
        assert shard_map.shards[0].lo == 0
        assert shard_map.shards[-1].hi == HASH_SPACE

    def test_every_binding_is_a_member_of_its_owner(self):
        world = make_deployment(names=500, shards=3)
        shard_map = world["shard_map"]
        names = world["namespace"].names
        assert sum(len(s.members) for s in shard_map.shards) == 500
        for name_ in names[:50]:
            owner = shard_map.owner_of(name_)
            assert name_ in owner.members
            assert shard_map.owners_of(name_) == [owner]

    def test_split_conserves_members_and_partition(self):
        world = make_deployment(names=800, shards=1)
        shard_map = world["shard_map"]
        [shard] = shard_map.shards
        before = set(shard.members)
        plan = shard_map.plan_split(shard, world["pool"][1])
        new = shard_map.apply_split(plan)
        assert shard_map.is_partition()
        assert shard.hi == new.lo == plan.split_at
        assert all(binding_hash(n) >= plan.split_at for n in new.members)
        assert all(binding_hash(n) < plan.split_at for n in shard.members)
        assert shard.members | new.members == before
        assert not shard.members & new.members

    def test_plan_split_rejects_foreign_shard_and_bad_point(self):
        world = make_deployment(names=100, shards=2)
        other = make_deployment(names=100, shards=1)
        shard_map = world["shard_map"]
        shard = shard_map.shards[0]
        with pytest.raises(SchemeError):
            shard_map.plan_split(other["shard_map"].shards[0],
                                 world["pool"][1])
        with pytest.raises(SchemeError):
            shard_map.plan_split(shard, world["pool"][1],
                                 at=shard.hi + 1)
        with pytest.raises(SchemeError):
            shard_map.plan_split(shard, world["pool"][1], at=shard.lo)

    def test_rebind_tracks_new_members(self):
        world = make_deployment(names=100, shards=2)
        world["resolver"].rebind(world["namespace"].directory, "fresh",
                                 world["namespace"].shared_leaf)
        shard_map = world["shard_map"]
        assert "fresh" in shard_map.owner_of("fresh").members


class TestUidKeyedLoad:
    """Satellite: label-aggregated load is reporting-only; decisions
    key on uid, which label collisions cannot corrupt."""

    def _collide(self):
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        # Two distinct machines with the SAME label: the label-keyed
        # report lumps their servers into one bucket.
        m_a = simulator.machine(network, "dup")
        m_b = simulator.machine(network, "dup")
        client_m = simulator.machine(network, "client-m")
        tree = NamingTree("root", sigma=simulator.sigma)
        tree.mkdir("a")
        tree.mkdir("b")
        tree.mkfile("a/x")
        tree.mkfile("b/y")
        placement = DirectoryPlacement()
        placement.place(tree.root, client_m)
        placement.place(tree.directory("a"), m_a)
        placement.place(tree.directory("b"), m_b)
        client = simulator.spawn(client_m, "client")
        resolver = DistributedResolver(simulator, placement)
        context = ProcessContext(tree.root)
        return resolver, client, context, m_a, m_b

    def test_label_collision_merges_report_but_not_uid_view(self):
        resolver, client, context, m_a, m_b = self._collide()
        for _ in range(3):
            resolver.resolve(client, context, "/a/x")
        resolver.resolve(client, context, "/b/y")
        # The label view is ambiguous by construction...
        assert resolver.load["dirserver@dup"] >= 4
        # ...the uid views are not.
        assert resolver.load_of_machine(m_a) == 3
        assert resolver.load_of_machine(m_b) == 1
        by_uid = resolver.load_by_uid()
        assert sorted(
            count for uid, count in by_uid.items()
            if uid != resolver.server_for(client.machine).uid
        ) == [1, 3]

    def test_split_decisions_survive_label_collisions(self):
        """A pool of same-labelled machines still splits correctly —
        the policy counts shards per machine identity and loads per
        shard, never per label."""
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        pool = [simulator.machine(network, "shard") for _ in range(3)]
        client_m = simulator.machine(network, "client-m")
        tree = NamingTree("root", sigma=simulator.sigma)
        namespace = build_zipf_namespace(tree, "hot", count=400,
                                         distinct=16)
        placement = DirectoryPlacement()
        placement.place(tree.root, client_m)
        shard_map = placement.place_sharded(namespace.directory, pool[0])
        client = simulator.spawn(client_m, "client")
        resolver = DistributedResolver(simulator, placement)
        resolver.shard_manager = ShardManager(
            resolver, pool=pool, split_fraction=0.3,
            check_every=60, min_window=30)
        context = ProcessContext(tree.root)
        sampler = ZipfSampler(400, rng=__import__("random").Random(0))
        for rank in sampler.sample_many(300):
            resolver.resolve(client, context,
                             "/hot/" + namespace.names[rank])
        assert resolver.shard_splits > 0
        assert shard_map.is_partition()
        assert len(shard_map.machines()) >= 2


class TestEpochDiscipline:
    """Satellite: place_subtree bumps exactly once; re-placement
    never resurrects stale marks."""

    def _tree_world(self):
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        m1 = simulator.machine(network, "m1")
        m2 = simulator.machine(network, "m2")
        tree = NamingTree("root", sigma=simulator.sigma)
        tree.mkdir("a/b/c")
        tree.mkdir("a/d")
        placement = DirectoryPlacement()
        return placement, tree, m1, m2

    def test_place_subtree_bumps_epoch_exactly_once(self):
        placement, tree, m1, _ = self._tree_world()
        before = placement.epoch
        placed = placement.place_subtree(tree.root, m1)
        assert placed == 5  # root, a, a/b, a/b/c, a/d
        assert placement.epoch == before + 1

    def test_noop_place_subtree_leaves_epoch_alone(self):
        placement, tree, m1, m2 = self._tree_world()
        placement.place_subtree(tree.directory("a/b"), m2)
        before = placement.epoch
        # Every directory under a/b already belongs to m2: re-rooting
        # the walk there for m1 places nothing and must not bump.
        assert placement.place_subtree(tree.directory("a/b"), m1) == 0
        assert placement.epoch == before

    def test_replacement_prunes_stale_marks(self):
        placement, tree, m1, m2 = self._tree_world()
        a = tree.directory("a")
        placement.place_replicated(a, m1, m2)
        placement.mark_stale(a, m2)
        assert placement.is_stale(a, m2)
        placement.place(a, m1)  # m2 is no longer a replica
        assert not placement.is_stale(a, m2)
        # Re-adding m2 later must not resurrect the old mark.
        placement.add_replica(a, m2)
        assert not placement.is_stale(a, m2)
        assert placement.stale_count() == 0

    def test_place_subtree_prunes_stale_of_dropped_replicas(self):
        placement, tree, m1, m2 = self._tree_world()
        b = tree.directory("a/b")
        placement.place_replicated(b, m1, m2)
        placement.mark_stale(b, m2)
        placement.place_subtree(tree.root, m1)
        assert not placement.is_stale(b, m2)
        assert placement.stale_count() == 0

    def test_surviving_replica_keeps_its_stale_mark(self):
        """Pruning removes marks of *dropped* replicas only — a stale
        replica that stays placed stays stale until anti-entropy."""
        placement, tree, m1, m2 = self._tree_world()
        a = tree.directory("a")
        placement.place_replicated(a, m1, m2)
        placement.mark_stale(a, m2)
        placement.add_replica(a, m2)  # no-op membership change
        assert placement.is_stale(a, m2)

    def test_place_sharded_clears_replica_state(self):
        placement, tree, m1, m2 = self._tree_world()
        a = tree.directory("a")
        placement.place_replicated(a, m1, m2)
        placement.mark_stale(a, m2)
        before = placement.epoch
        placement.place_sharded(a, m1, m2)
        assert placement.epoch == before + 1
        assert placement.is_sharded(a)
        assert placement.replicas_of(a) == ()
        assert not placement.is_stale(a, m2)


class TestMidBatchEpochBump:
    """Satellite: a split landing inside resolve_many re-routes the
    rest of the batch instead of using the pre-split ShardMap."""

    def test_route_memo_is_epoch_guarded(self):
        """The precise pin: a memoized route dies with the epoch."""
        world = make_deployment(names=600, shards=1)
        resolver = world["resolver"]
        placement = world["placement"]
        directory = world["namespace"].directory
        shard_map = world["shard_map"]
        name_ = next(n for n in world["namespace"].names
                     if 0 < binding_hash(n) < HASH_SPACE - 1)
        routes = {"epoch": placement.epoch}
        old_host = resolver._route_host(directory, name_, routes)
        assert old_host is shard_map.owner_of(name_).machine
        assert (directory.uid, name_) in routes  # memoized
        # Split exactly at the name's hash: it moves to pool[1].
        [shard] = shard_map.shards
        plan = shard_map.plan_split(shard, world["pool"][1],
                                    at=binding_hash(name_))
        placement.apply_split(plan)
        new_host = shard_map.owner_of(name_).machine
        assert new_host is world["pool"][1]
        assert new_host is not old_host
        # The stale-epoch memo must NOT win: the guarded lookup drops
        # the pre-split routes and re-consults live placement.
        assert resolver._route_host(directory, name_, routes) is new_host
        assert routes["epoch"] == placement.epoch

    def test_split_mid_batch_reroutes_later_items(self):
        world = make_deployment(names=1500, shards=1, manager=True,
                                check_every=80, min_window=40)
        resolver = world["resolver"]
        namespace = world["namespace"]
        shard_map = world["shard_map"]
        sampler = ZipfSampler(1500, rng=__import__("random").Random(7))
        names = ["/hot/" + namespace.names[rank]
                 for rank in sampler.sample_many(600)]
        epoch_before = world["placement"].epoch
        results = resolver.resolve_many(world["client"],
                                        world["context"], names)
        # The split landed while the batch was running...
        assert resolver.shard_splits > 0
        assert world["placement"].epoch > epoch_before
        # ...and every item, before and after the bump, is correct.
        assert len(results) == len(names)
        for name_, (entity, _cost) in zip(names, results):
            assert entity is local_resolve(world["context"], name_)
        # Later items were actually served by the new owners: machines
        # that gained shards gained load (a stale pre-split memo would
        # have kept charging pool[0]'s server).
        gained = [m for m in shard_map.machines()
                  if m is not world["pool"][0]]
        assert gained
        assert any(resolver.load_of_machine(m) > 0 for m in gained)

    def test_sequential_resolves_see_splits_immediately(self):
        world = make_deployment(names=1500, shards=1, manager=True,
                                check_every=80, min_window=40)
        resolver = world["resolver"]
        namespace = world["namespace"]
        sampler = ZipfSampler(1500, rng=__import__("random").Random(3))
        for rank in sampler.sample_many(400):
            entity, _ = resolver.resolve(
                world["client"], world["context"],
                "/hot/" + namespace.names[rank])
            assert entity.is_defined()
        assert resolver.shard_splits > 0
        assert world["shard_map"].is_partition()


class TestMigrationFailure:
    """Commit-last: an undeliverable migration aborts the split with
    the old map and old epoch intact."""

    def test_dead_target_aborts_split(self):
        world = make_deployment(names=400, shards=1)
        resolver = world["resolver"]
        placement = world["placement"]
        shard_map = world["shard_map"]
        target = world["pool"][1]
        FailureInjector(world["simulator"]).crash_machine(target)
        [shard] = shard_map.shards
        epoch_before = placement.epoch
        assert not resolver.split_shard(
            world["namespace"].directory, shard, target)
        assert resolver.shard_split_aborts == 1
        assert resolver.shard_splits == 0
        assert len(shard_map) == 1
        assert placement.epoch == epoch_before
        assert shard_map.is_partition()

    def test_manager_survives_dead_pool_machines(self):
        world = make_deployment(names=1200, shards=1, manager=True,
                                check_every=80, min_window=40)
        injector = FailureInjector(world["simulator"])
        for machine in world["pool"][1:3]:
            injector.crash_machine(machine)
        resolver = world["resolver"]
        namespace = world["namespace"]
        sampler = ZipfSampler(1200, rng=__import__("random").Random(1))
        for rank in sampler.sample_many(400):
            resolver.resolve(world["client"], world["context"],
                             "/hot/" + namespace.names[rank])
        # Splits still happen, but only onto live machines.
        assert resolver.shard_splits > 0
        for shard in world["shard_map"].shards:
            assert shard.machine.alive


@st.composite
def split_sequences(draw):
    """(shard_count, [(shard_index_seed, fraction)]) split scripts."""
    initial = draw(st.integers(min_value=1, max_value=4))
    steps = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=10 ** 6),
                  st.floats(min_value=0.01, max_value=0.99)),
        max_size=12))
    return initial, steps


@st.composite
def split_merge_sequences(draw):
    """(shard_count, replicas, [(op, shard_index_seed, fraction)])
    interleaved split/merge scripts."""
    initial = draw(st.integers(min_value=1, max_value=4))
    replicas = draw(st.integers(min_value=1, max_value=3))
    steps = draw(st.lists(
        st.tuples(st.sampled_from(["split", "merge"]),
                  st.integers(min_value=0, max_value=10 ** 6),
                  st.floats(min_value=0.01, max_value=0.99)),
        max_size=12))
    return initial, replicas, steps


class TestOwnershipProperty:
    """Property: after ANY split sequence, every binding is owned by
    exactly one shard, and membership matches ownership."""

    @given(script=split_sequences(),
           probes=st.lists(st.text(min_size=1, max_size=12),
                           max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_exactly_one_owner_after_any_split_sequence(self, script,
                                                        probes):
        initial, steps = script
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        pool = [simulator.machine(network, f"s{i}") for i in range(4)]
        tree = NamingTree("root", sigma=simulator.sigma)
        namespace = build_zipf_namespace(tree, "hot", count=200,
                                         distinct=8)
        shard_map = ShardMap(namespace.directory, pool[:initial])
        all_members = {name_ for shard in shard_map.shards
                       for name_ in shard.members}
        for index_seed, fraction in steps:
            shard = shard_map.shards[index_seed % len(shard_map)]
            if shard.span < 2:
                continue
            at = shard.lo + max(1, int(shard.span * fraction))
            if not shard.lo < at < shard.hi:
                continue
            machine = pool[index_seed % len(pool)]
            shard_map.apply_split(
                shard_map.plan_split(shard, machine, at=at))
        assert shard_map.is_partition()
        member_union = set()
        for shard in shard_map.shards:
            assert not member_union & shard.members
            member_union |= shard.members
            for name_ in shard.members:
                assert shard_map.owner_of(name_) is shard
        assert member_union == all_members
        for probe in probes + list(namespace.names[:5]):
            assert len(shard_map.owners_of(probe)) == 1
            assert shard_map.owners_of(probe)[0] is \
                shard_map.owner_of(probe)

    @given(script=split_merge_sequences(),
           probes=st.lists(st.text(min_size=1, max_size=12),
                           max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_exactly_one_owner_after_splits_and_merges(self, script,
                                                       probes):
        initial, replicas, steps = script
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        pool = [simulator.machine(network, f"s{i}") for i in range(4)]
        tree = NamingTree("root", sigma=simulator.sigma)
        namespace = build_zipf_namespace(tree, "hot", count=200,
                                         distinct=8)
        shard_map = ShardMap(namespace.directory, pool[:initial],
                             replicas=replicas)
        all_members = {name_ for shard in shard_map.shards
                       for name_ in shard.members}
        for op, index_seed, fraction in steps:
            if op == "merge":
                if len(shard_map) < 2:
                    continue
                left = shard_map.shards[index_seed
                                        % (len(shard_map) - 1)]
                right = shard_map.shards[
                    shard_map.shards.index(left) + 1]
                shard_map.apply_merge(
                    shard_map.plan_merge(left, right))
                continue
            shard = shard_map.shards[index_seed % len(shard_map)]
            if shard.span < 2:
                continue
            at = shard.lo + max(1, int(shard.span * fraction))
            if not shard.lo < at < shard.hi:
                continue
            machine = pool[index_seed % len(pool)]
            shard_map.apply_split(
                shard_map.plan_split(shard, machine, at=at))
        assert shard_map.is_partition()
        member_union = set()
        for shard in shard_map.shards:
            assert not member_union & shard.members
            member_union |= shard.members
            assert 1 <= len(shard.replicas) <= min(replicas, initial)
            for name_ in shard.members:
                assert shard_map.owner_of(name_) is shard
        assert member_union == all_members
        for probe in probes + list(namespace.names[:5]):
            assert len(shard_map.owners_of(probe)) == 1


class TestReplicatedShards:
    """Tentpole: every shard carries a replica set, and the replica
    failover / stale-mark / anti-entropy machinery works per shard."""

    def test_ring_assignment_and_degree_clamp(self):
        world = make_deployment(names=300, shards=3, replicas=2)
        shard_map = world["shard_map"]
        pool = world["pool"]
        assert shard_map.replication == 2
        for index, shard in enumerate(shard_map.shards):
            assert shard.replicas == (pool[index],
                                      pool[(index + 1) % 3])
            assert shard.machine is shard.replicas[0]
        # Degree is clamped to the pool size — the same machine twice
        # is not replication.
        clamped = make_deployment(names=100, shards=2, replicas=5)
        assert clamped["shard_map"].replication == 2

    def test_replicas_for_binding_returns_the_shard_set(self):
        world = make_deployment(names=300, shards=3, replicas=2)
        placement = world["placement"]
        directory = world["namespace"].directory
        name_ = world["namespace"].names[0]
        shard = world["shard_map"].owner_of(name_)
        assert placement.replicas_for_binding(directory, name_) == \
            shard.replicas
        assert placement.host_of_binding(directory, name_) is \
            shard.machine

    def test_resolution_fails_over_past_crashed_primary(self):
        world = make_deployment(names=400, shards=2, replicas=2,
                                retry=True)
        resolver = world["resolver"]
        shard_map = world["shard_map"]
        namespace = world["namespace"]
        # Warm the servers up, then crash one shard primary.
        for name_ in namespace.names[:20]:
            resolver.resolve(world["client"], world["context"],
                             "/hot/" + name_)
        victim = shard_map.shards[0].machine
        FailureInjector(world["simulator"]).crash_machine(victim)
        hit = 0
        for name_ in namespace.names[:60]:
            if shard_map.owner_of(name_).machine is not victim:
                continue
            hit += 1
            entity, cost = resolver.resolve(
                world["client"], world["context"], "/hot/" + name_)
            assert entity is local_resolve(world["context"],
                                           "/hot/" + name_)
            assert not cost.failed
            assert cost.failovers >= 1
        assert hit > 0  # the dead range was actually exercised

    def test_single_owner_shard_goes_dark_when_primary_dies(self):
        """The contrast case the replica set exists to fix."""
        world = make_deployment(names=400, shards=2, replicas=1,
                                retry=True)
        resolver = world["resolver"]
        shard_map = world["shard_map"]
        namespace = world["namespace"]
        for name_ in namespace.names[:20]:
            resolver.resolve(world["client"], world["context"],
                             "/hot/" + name_)
        victim = shard_map.shards[0].machine
        FailureInjector(world["simulator"]).crash_machine(victim)
        name_ = next(n for n in namespace.names
                     if shard_map.owner_of(n).machine is victim)
        _entity, cost = resolver.resolve(
            world["client"], world["context"], "/hot/" + name_)
        assert cost.failed

    def test_rebind_fans_out_to_shard_secondaries(self):
        world = make_deployment(names=300, shards=2, replicas=2)
        resolver = world["resolver"]
        directory = world["namespace"].directory
        before = resolver.replication_messages
        resolver.rebind(directory, "fresh",
                        world["namespace"].shared_leaf)
        assert resolver.replication_messages == before + 1
        shard = world["shard_map"].owner_of("fresh")
        assert "fresh" in shard.members
        assert not world["placement"].is_stale(directory,
                                               shard.replicas[1])

    def test_rebind_marks_dead_secondary_stale_and_restart_resyncs(self):
        world = make_deployment(names=300, shards=2, replicas=2)
        resolver = world["resolver"]
        placement = world["placement"]
        directory = world["namespace"].directory
        injector = FailureInjector(world["simulator"])
        injector.on_restart(resolver.handle_restart)
        shard = world["shard_map"].owner_of("fresh")
        secondary = shard.replicas[1]
        injector.crash_machine(secondary)
        resolver.rebind(directory, "fresh",
                        world["namespace"].shared_leaf)
        assert placement.is_stale(directory, secondary)
        # Restart: anti-entropy syncs from a live fellow shard replica
        # (there is no directory-wide primary to sync from).
        injector.restart_machine(secondary)
        assert not placement.is_stale(directory, secondary)
        assert placement.stale_count() == 0
        assert resolver.anti_entropy_messages >= 1

    def test_stale_shard_replica_stays_stale_without_live_source(self):
        world = make_deployment(names=300, shards=2, replicas=2)
        resolver = world["resolver"]
        placement = world["placement"]
        directory = world["namespace"].directory
        injector = FailureInjector(world["simulator"])
        injector.on_restart(resolver.handle_restart)
        shard = world["shard_map"].owner_of("fresh")
        primary, secondary = shard.replicas
        injector.crash_machine(secondary)
        resolver.rebind(directory, "fresh",
                        world["namespace"].shared_leaf)
        # Now the only fresh copy dies too.
        injector.crash_machine(primary)
        injector.restart_machine(secondary)
        assert placement.is_stale(directory, secondary)
        # Once the fresh replica is back, the next restart cycle syncs.
        injector.restart_machine(primary)
        injector.crash_machine(secondary)
        injector.restart_machine(secondary)
        assert not placement.is_stale(directory, secondary)

    def test_mark_stale_rejects_non_hosting_machine(self):
        world = make_deployment(names=100, shards=2, replicas=2)
        with pytest.raises(SchemeError):
            world["placement"].mark_stale(world["namespace"].directory,
                                          world["client_m"])

    def test_split_inherits_secondaries_from_source_replicas(self):
        world = make_deployment(names=400, shards=2, replicas=2,
                                pool_size=4)
        shard_map = world["shard_map"]
        resolver = world["resolver"]
        shard = shard_map.shards[0]
        target = world["pool"][2]
        assert resolver.split_shard(world["namespace"].directory,
                                    shard, target)
        new = shard_map.shards[1]
        assert new.replicas[0] is target
        # The fill secondary already held the range's data as a source
        # replica — replication degree carries over with no extra
        # migration traffic.
        assert new.replicas[1] in shard.replicas
        assert len(new.replicas) == 2
        assert shard_map.is_partition()


class TestShardMerging:
    """Satellite: adjacent cold ranges fold back together under the
    same commit-last / epoch discipline as splits."""

    def test_plan_and_apply_merge_conserve_members(self):
        world = make_deployment(names=600, shards=3)
        shard_map = world["shard_map"]
        left, right = shard_map.shards[0], shard_map.shards[1]
        before = set(left.members) | set(right.members)
        hi_before = right.hi
        plan = shard_map.plan_merge(left, right)
        merged = shard_map.apply_merge(plan)
        assert merged is left
        assert len(shard_map) == 2
        assert left.hi == hi_before
        assert set(left.members) == before
        assert shard_map.is_partition()
        for name_ in list(before)[:20]:
            assert shard_map.owner_of(name_) is left

    def test_plan_merge_rejects_non_adjacent_and_foreign(self):
        world = make_deployment(names=300, shards=3)
        other = make_deployment(names=100, shards=1)
        shard_map = world["shard_map"]
        with pytest.raises(SchemeError):
            shard_map.plan_merge(shard_map.shards[0],
                                 shard_map.shards[2])
        with pytest.raises(SchemeError):
            shard_map.plan_merge(shard_map.shards[1],
                                 shard_map.shards[0])
        with pytest.raises(SchemeError):
            shard_map.plan_merge(shard_map.shards[0],
                                 other["shard_map"].shards[0])

    def test_merge_shards_migrates_and_bumps_epoch_once(self):
        world = make_deployment(names=600, shards=3)
        resolver = world["resolver"]
        placement = world["placement"]
        shard_map = world["shard_map"]
        left, right = shard_map.shards[1], shard_map.shards[2]
        epoch_before = placement.epoch
        messages_before = resolver.migration_messages
        assert resolver.merge_shards(world["namespace"].directory,
                                     left, right)
        assert resolver.shard_merges == 1
        assert placement.epoch == epoch_before + 1
        assert resolver.migration_messages > messages_before
        assert len(shard_map) == 2
        assert shard_map.is_partition()

    def test_merge_aborts_against_dead_receiver(self):
        world = make_deployment(names=600, shards=3)
        resolver = world["resolver"]
        placement = world["placement"]
        shard_map = world["shard_map"]
        left, right = shard_map.shards[0], shard_map.shards[1]
        FailureInjector(world["simulator"]).crash_machine(left.machine)
        epoch_before = placement.epoch
        assert not resolver.merge_shards(world["namespace"].directory,
                                         left, right)
        assert resolver.shard_merge_aborts == 1
        assert placement.epoch == epoch_before
        assert len(shard_map) == 3
        assert shard_map.is_partition()

    def test_merged_range_still_resolves(self):
        world = make_deployment(names=600, shards=3)
        resolver = world["resolver"]
        shard_map = world["shard_map"]
        namespace = world["namespace"]
        right = shard_map.shards[1]
        probe = next(iter(right.members))
        assert resolver.merge_shards(namespace.directory,
                                     shard_map.shards[0], right)
        entity, cost = resolver.resolve(
            world["client"], world["context"], "/hot/" + probe)
        assert entity is local_resolve(world["context"],
                                       "/hot/" + probe)
        assert not cost.failed

    def test_manager_merges_cold_adjacent_pair(self):
        world = make_deployment(names=600, shards=4)
        resolver = world["resolver"]
        shard_map = world["shard_map"]
        manager = ShardManager(resolver, pool=world["pool"],
                               split_fraction=0.6, merge_fraction=0.1,
                               check_every=10, min_window=50)
        resolver.shard_manager = manager
        # A window where the two upper ranges are nearly cold.
        shard_map.shards[0].load = 60
        shard_map.shards[1].load = 60
        shard_map.shards[2].load = 5
        shard_map.shards[3].load = 5
        assert manager.check() == 1
        assert manager.merges == 1
        assert len(shard_map) == 3
        assert shard_map.is_partition()
        # Post-merge loads reset: a second check has no window yet.
        assert manager.check() == 0
        assert manager.merges == 1

    def test_merge_fraction_zero_never_merges(self):
        world = make_deployment(names=600, shards=4, manager=True)
        manager = world["resolver"].shard_manager
        shard_map = world["shard_map"]
        for shard in shard_map.shards:
            shard.load = 30
        assert manager.check() == 0
        assert manager.merges == 0
        assert len(shard_map) == 4
        assert "merges" in manager.stats()


class TestPickTarget:
    """Satellite: split targets are chosen by measured load and never
    point at a down machine or an open breaker."""

    def _manager(self, world, **kwargs):
        manager = ShardManager(world["resolver"], pool=world["pool"],
                               **kwargs)
        world["resolver"].shard_manager = manager
        return manager

    def test_picks_least_loaded_live_machine(self):
        world = make_deployment(names=400, shards=1, pool_size=4)
        resolver = world["resolver"]
        manager = self._manager(world)
        # Drive measurable load onto pool[1] so pool[2] (untouched)
        # is the least-loaded candidate.
        tree = world["tree"]
        tree.mkdir("warm")
        tree.mkfile("warm/x")
        world["placement"].place(tree.directory("warm"),
                                 world["pool"][1])
        for _ in range(5):
            resolver.resolve(world["client"], world["context"],
                             "/warm/x")
        assert resolver.load_of_machine(world["pool"][1]) == 5
        [hot] = world["shard_map"].shards
        target = manager._pick_target(world["shard_map"], hot)
        assert target is world["pool"][2]

    def test_skips_down_machines(self):
        world = make_deployment(names=400, shards=1, pool_size=3)
        manager = self._manager(world)
        FailureInjector(world["simulator"]).crash_machine(
            world["pool"][1])
        [hot] = world["shard_map"].shards
        assert manager._pick_target(world["shard_map"], hot) is \
            world["pool"][2]

    def test_skips_open_breakers(self):
        world = make_deployment(names=400, shards=1, pool_size=3)
        resolver = world["resolver"]
        manager = self._manager(world)
        now = world["simulator"].clock.now
        breaker = resolver.breaker_of(world["pool"][1])
        for _ in range(resolver.breaker_threshold):
            breaker.record_failure(now)
        assert not resolver.breaker_allows(world["pool"][1])
        [hot] = world["shard_map"].shards
        assert manager._pick_target(world["shard_map"], hot) is \
            world["pool"][2]

    def test_breaker_allows_again_after_cooldown(self):
        world = make_deployment(names=400, shards=1, pool_size=3)
        resolver = world["resolver"]
        simulator = world["simulator"]
        breaker = resolver.breaker_of(world["pool"][1])
        for _ in range(resolver.breaker_threshold):
            breaker.record_failure(simulator.clock.now)
        assert not resolver.breaker_allows(world["pool"][1])
        simulator.run(until=simulator.clock.now
                      + resolver.breaker_cooldown + 1)
        # Pure read: eligible again, but the breaker state itself is
        # untouched (no premature half-open transition).
        assert resolver.breaker_allows(world["pool"][1])
        assert breaker.state.value == "open"

    def test_excludes_all_replicas_of_the_hot_shard(self):
        world = make_deployment(names=400, shards=2, replicas=2,
                                pool_size=2)
        manager = self._manager(world)
        hot = world["shard_map"].shards[0]
        # Both pool machines are replicas of the hot shard; fallback
        # is the hot primary itself (narrowing beats nothing).
        assert manager._pick_target(world["shard_map"], hot) is \
            hot.machine


class TestMigrationFaultPoints:
    """Tentpole: a crash of source or target at ANY fault point of
    the commit-last migration either aborts cleanly (old map, old
    epoch) or completes, and every binding keeps exactly one owner
    range throughout — on a replicated map the affected range keeps
    resolving either way."""

    def _world(self):
        return make_deployment(names=400, shards=2, replicas=2,
                               pool_size=4, migration_batch=20,
                               retry=True)

    def _sample(self, shard_map, namespace, shard):
        return [n for n in namespace.names
                if shard_map.owner_of(n) is shard][:10]

    @pytest.mark.parametrize("victim_role", ["source", "target"])
    def test_crash_at_every_batch_boundary(self, victim_role):
        # Discover the batch count once (pure plan, fresh world).
        probe = self._world()
        shard = probe["shard_map"].shards[0]
        plan = probe["shard_map"].plan_split(shard, probe["pool"][2])
        batches = -(-len(plan.moved) // 20)
        assert batches >= 3  # the sweep must have interior points
        for fault_point in range(batches + 1):
            world = self._world()
            simulator = world["simulator"]
            resolver = world["resolver"]
            placement = world["placement"]
            shard_map = world["shard_map"]
            shard = shard_map.shards[0]
            target = world["pool"][2]
            victim = (shard.machine if victim_role == "source"
                      else target)
            moved_probe = self._sample(shard_map,
                                       world["namespace"], shard)
            injector = FailureInjector(simulator)
            # Each batch hop is one message at latency 1.0, streamed
            # sequentially: batch k is in flight over (t0+k, t0+k+1).
            # fault_point == batches crashes after the final delivery.
            crash_at = simulator.clock.now + fault_point + 0.5
            injector.schedule(crash_at, "crash", victim)
            epoch_before = placement.epoch
            committed = resolver.split_shard(
                world["namespace"].directory, shard, target)
            # A crashed *target* drops the in-flight batch, so the
            # final fault point inside the stream still aborts; a
            # crashed *source* cannot recall a batch already in
            # flight, so a crash during the last batch commits.
            commit_from = (batches - 1 if victim_role == "source"
                           else batches)
            if fault_point < commit_from:
                assert not committed
                assert placement.epoch == epoch_before
                assert len(shard_map) == 2
            else:
                assert committed
                assert placement.epoch == epoch_before + 1
                assert len(shard_map) == 3
            simulator.run()  # let a post-commit crash land
            # Exactly-one-owner holds at every fault point...
            assert shard_map.is_partition()
            for name_ in moved_probe:
                assert len(shard_map.owners_of(name_)) == 1
            # ...and the replicated range never goes dark: aborted →
            # the old shard's surviving replica serves it; committed →
            # the new shard's set does.
            for name_ in moved_probe[:3]:
                entity, cost = resolver.resolve(
                    world["client"], world["context"],
                    "/hot/" + name_)
                assert entity is local_resolve(world["context"],
                                               "/hot/" + name_)
                assert not cost.failed

    def test_aborted_split_retries_after_restart(self):
        world = self._world()
        resolver = world["resolver"]
        simulator = world["simulator"]
        shard_map = world["shard_map"]
        shard = shard_map.shards[0]
        target = world["pool"][2]
        injector = FailureInjector(simulator)
        injector.on_restart(resolver.handle_restart)
        injector.schedule(simulator.clock.now + 1.5, "crash", target)
        assert not resolver.split_shard(world["namespace"].directory,
                                        shard, target)
        injector.restart_machine(target)
        assert resolver.split_shard(world["namespace"].directory,
                                    shard, target)
        assert shard_map.is_partition()
        assert len(shard_map) == 3
