"""Sharded directory placement: routing, splits, migration, and the
load/epoch bugfixes the million-name workload exposed.

Pins, in one place:

* the :class:`~repro.nameservice.sharding.ShardMap` invariants —
  contiguous ranges, exactly-one-owner (property-tested over random
  split sequences), member conservation across splits;
* uid-keyed load accounting — label-summed ``resolver.load`` is
  reporting-only; decisions key on :meth:`load_by_uid` /
  :meth:`load_of_machine`, which label collisions cannot corrupt;
* epoch discipline — ``place_subtree`` bumps the epoch exactly once
  and re-placing never resurrects stale marks;
* the mid-batch epoch bump — a shard split landing inside
  ``resolve_many`` makes later batch items re-route instead of using
  the pre-split map (the batch route memo is epoch-guarded);
* commit-last migration — an unreachable target aborts the split
  with the old map and the old epoch intact.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemeError
from repro.model.resolution import resolve as local_resolve
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver
from repro.nameservice.sharding import (
    HASH_SPACE,
    ShardManager,
    ShardMap,
    binding_hash,
)
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.workloads.zipf import ZipfSampler, build_zipf_namespace


def make_deployment(names=2000, pool_size=4, seed=0, sharded=True,
                    shards=1, manager=False, check_every=100,
                    min_window=50):
    """A hot directory of *names* bindings under ``/hot``, either on a
    single machine or sharded over the first *shards* pool machines,
    optionally with the live split policy wired in."""
    simulator = Simulator(seed=seed)
    network = simulator.network("lan")
    pool = [simulator.machine(network, f"s{i}") for i in range(pool_size)]
    client_m = simulator.machine(network, "client-m")
    tree = NamingTree("root", sigma=simulator.sigma)
    namespace = build_zipf_namespace(tree, "hot", count=names,
                                     distinct=64)
    placement = DirectoryPlacement()
    placement.place(tree.root, client_m)
    if sharded:
        shard_map = placement.place_sharded(namespace.directory,
                                            *pool[:shards])
    else:
        placement.place(namespace.directory, pool[0])
        shard_map = None
    client = simulator.spawn(client_m, "client")
    resolver = DistributedResolver(simulator, placement)
    if manager:
        resolver.shard_manager = ShardManager(
            resolver, pool=pool, split_fraction=0.3,
            check_every=check_every, min_window=min_window)
    return {
        "simulator": simulator, "resolver": resolver,
        "placement": placement, "client": client,
        "context": ProcessContext(tree.root), "tree": tree,
        "namespace": namespace, "pool": pool, "client_m": client_m,
        "shard_map": shard_map,
    }


class TestShardMap:
    """Structural invariants of the hash-range partition."""

    def test_initial_ranges_tile_the_space(self):
        world = make_deployment(names=500, shards=3)
        shard_map = world["shard_map"]
        assert len(shard_map) == 3
        assert shard_map.is_partition()
        assert shard_map.shards[0].lo == 0
        assert shard_map.shards[-1].hi == HASH_SPACE

    def test_every_binding_is_a_member_of_its_owner(self):
        world = make_deployment(names=500, shards=3)
        shard_map = world["shard_map"]
        names = world["namespace"].names
        assert sum(len(s.members) for s in shard_map.shards) == 500
        for name_ in names[:50]:
            owner = shard_map.owner_of(name_)
            assert name_ in owner.members
            assert shard_map.owners_of(name_) == [owner]

    def test_split_conserves_members_and_partition(self):
        world = make_deployment(names=800, shards=1)
        shard_map = world["shard_map"]
        [shard] = shard_map.shards
        before = set(shard.members)
        plan = shard_map.plan_split(shard, world["pool"][1])
        new = shard_map.apply_split(plan)
        assert shard_map.is_partition()
        assert shard.hi == new.lo == plan.split_at
        assert all(binding_hash(n) >= plan.split_at for n in new.members)
        assert all(binding_hash(n) < plan.split_at for n in shard.members)
        assert shard.members | new.members == before
        assert not shard.members & new.members

    def test_plan_split_rejects_foreign_shard_and_bad_point(self):
        world = make_deployment(names=100, shards=2)
        other = make_deployment(names=100, shards=1)
        shard_map = world["shard_map"]
        shard = shard_map.shards[0]
        with pytest.raises(SchemeError):
            shard_map.plan_split(other["shard_map"].shards[0],
                                 world["pool"][1])
        with pytest.raises(SchemeError):
            shard_map.plan_split(shard, world["pool"][1],
                                 at=shard.hi + 1)
        with pytest.raises(SchemeError):
            shard_map.plan_split(shard, world["pool"][1], at=shard.lo)

    def test_rebind_tracks_new_members(self):
        world = make_deployment(names=100, shards=2)
        world["resolver"].rebind(world["namespace"].directory, "fresh",
                                 world["namespace"].shared_leaf)
        shard_map = world["shard_map"]
        assert "fresh" in shard_map.owner_of("fresh").members


class TestUidKeyedLoad:
    """Satellite: label-aggregated load is reporting-only; decisions
    key on uid, which label collisions cannot corrupt."""

    def _collide(self):
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        # Two distinct machines with the SAME label: the label-keyed
        # report lumps their servers into one bucket.
        m_a = simulator.machine(network, "dup")
        m_b = simulator.machine(network, "dup")
        client_m = simulator.machine(network, "client-m")
        tree = NamingTree("root", sigma=simulator.sigma)
        tree.mkdir("a")
        tree.mkdir("b")
        tree.mkfile("a/x")
        tree.mkfile("b/y")
        placement = DirectoryPlacement()
        placement.place(tree.root, client_m)
        placement.place(tree.directory("a"), m_a)
        placement.place(tree.directory("b"), m_b)
        client = simulator.spawn(client_m, "client")
        resolver = DistributedResolver(simulator, placement)
        context = ProcessContext(tree.root)
        return resolver, client, context, m_a, m_b

    def test_label_collision_merges_report_but_not_uid_view(self):
        resolver, client, context, m_a, m_b = self._collide()
        for _ in range(3):
            resolver.resolve(client, context, "/a/x")
        resolver.resolve(client, context, "/b/y")
        # The label view is ambiguous by construction...
        assert resolver.load["dirserver@dup"] >= 4
        # ...the uid views are not.
        assert resolver.load_of_machine(m_a) == 3
        assert resolver.load_of_machine(m_b) == 1
        by_uid = resolver.load_by_uid()
        assert sorted(
            count for uid, count in by_uid.items()
            if uid != resolver.server_for(client.machine).uid
        ) == [1, 3]

    def test_split_decisions_survive_label_collisions(self):
        """A pool of same-labelled machines still splits correctly —
        the policy counts shards per machine identity and loads per
        shard, never per label."""
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        pool = [simulator.machine(network, "shard") for _ in range(3)]
        client_m = simulator.machine(network, "client-m")
        tree = NamingTree("root", sigma=simulator.sigma)
        namespace = build_zipf_namespace(tree, "hot", count=400,
                                         distinct=16)
        placement = DirectoryPlacement()
        placement.place(tree.root, client_m)
        shard_map = placement.place_sharded(namespace.directory, pool[0])
        client = simulator.spawn(client_m, "client")
        resolver = DistributedResolver(simulator, placement)
        resolver.shard_manager = ShardManager(
            resolver, pool=pool, split_fraction=0.3,
            check_every=60, min_window=30)
        context = ProcessContext(tree.root)
        sampler = ZipfSampler(400, rng=__import__("random").Random(0))
        for rank in sampler.sample_many(300):
            resolver.resolve(client, context,
                             "/hot/" + namespace.names[rank])
        assert resolver.shard_splits > 0
        assert shard_map.is_partition()
        assert len(shard_map.machines()) >= 2


class TestEpochDiscipline:
    """Satellite: place_subtree bumps exactly once; re-placement
    never resurrects stale marks."""

    def _tree_world(self):
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        m1 = simulator.machine(network, "m1")
        m2 = simulator.machine(network, "m2")
        tree = NamingTree("root", sigma=simulator.sigma)
        tree.mkdir("a/b/c")
        tree.mkdir("a/d")
        placement = DirectoryPlacement()
        return placement, tree, m1, m2

    def test_place_subtree_bumps_epoch_exactly_once(self):
        placement, tree, m1, _ = self._tree_world()
        before = placement.epoch
        placed = placement.place_subtree(tree.root, m1)
        assert placed == 5  # root, a, a/b, a/b/c, a/d
        assert placement.epoch == before + 1

    def test_noop_place_subtree_leaves_epoch_alone(self):
        placement, tree, m1, m2 = self._tree_world()
        placement.place_subtree(tree.directory("a/b"), m2)
        before = placement.epoch
        # Every directory under a/b already belongs to m2: re-rooting
        # the walk there for m1 places nothing and must not bump.
        assert placement.place_subtree(tree.directory("a/b"), m1) == 0
        assert placement.epoch == before

    def test_replacement_prunes_stale_marks(self):
        placement, tree, m1, m2 = self._tree_world()
        a = tree.directory("a")
        placement.place_replicated(a, m1, m2)
        placement.mark_stale(a, m2)
        assert placement.is_stale(a, m2)
        placement.place(a, m1)  # m2 is no longer a replica
        assert not placement.is_stale(a, m2)
        # Re-adding m2 later must not resurrect the old mark.
        placement.add_replica(a, m2)
        assert not placement.is_stale(a, m2)
        assert placement.stale_count() == 0

    def test_place_subtree_prunes_stale_of_dropped_replicas(self):
        placement, tree, m1, m2 = self._tree_world()
        b = tree.directory("a/b")
        placement.place_replicated(b, m1, m2)
        placement.mark_stale(b, m2)
        placement.place_subtree(tree.root, m1)
        assert not placement.is_stale(b, m2)
        assert placement.stale_count() == 0

    def test_surviving_replica_keeps_its_stale_mark(self):
        """Pruning removes marks of *dropped* replicas only — a stale
        replica that stays placed stays stale until anti-entropy."""
        placement, tree, m1, m2 = self._tree_world()
        a = tree.directory("a")
        placement.place_replicated(a, m1, m2)
        placement.mark_stale(a, m2)
        placement.add_replica(a, m2)  # no-op membership change
        assert placement.is_stale(a, m2)

    def test_place_sharded_clears_replica_state(self):
        placement, tree, m1, m2 = self._tree_world()
        a = tree.directory("a")
        placement.place_replicated(a, m1, m2)
        placement.mark_stale(a, m2)
        before = placement.epoch
        placement.place_sharded(a, m1, m2)
        assert placement.epoch == before + 1
        assert placement.is_sharded(a)
        assert placement.replicas_of(a) == ()
        assert not placement.is_stale(a, m2)


class TestMidBatchEpochBump:
    """Satellite: a split landing inside resolve_many re-routes the
    rest of the batch instead of using the pre-split ShardMap."""

    def test_route_memo_is_epoch_guarded(self):
        """The precise pin: a memoized route dies with the epoch."""
        world = make_deployment(names=600, shards=1)
        resolver = world["resolver"]
        placement = world["placement"]
        directory = world["namespace"].directory
        shard_map = world["shard_map"]
        name_ = next(n for n in world["namespace"].names
                     if 0 < binding_hash(n) < HASH_SPACE - 1)
        routes = {"epoch": placement.epoch}
        old_host = resolver._route_host(directory, name_, routes)
        assert old_host is shard_map.owner_of(name_).machine
        assert (directory.uid, name_) in routes  # memoized
        # Split exactly at the name's hash: it moves to pool[1].
        [shard] = shard_map.shards
        plan = shard_map.plan_split(shard, world["pool"][1],
                                    at=binding_hash(name_))
        placement.apply_split(plan)
        new_host = shard_map.owner_of(name_).machine
        assert new_host is world["pool"][1]
        assert new_host is not old_host
        # The stale-epoch memo must NOT win: the guarded lookup drops
        # the pre-split routes and re-consults live placement.
        assert resolver._route_host(directory, name_, routes) is new_host
        assert routes["epoch"] == placement.epoch

    def test_split_mid_batch_reroutes_later_items(self):
        world = make_deployment(names=1500, shards=1, manager=True,
                                check_every=80, min_window=40)
        resolver = world["resolver"]
        namespace = world["namespace"]
        shard_map = world["shard_map"]
        sampler = ZipfSampler(1500, rng=__import__("random").Random(7))
        names = ["/hot/" + namespace.names[rank]
                 for rank in sampler.sample_many(600)]
        epoch_before = world["placement"].epoch
        results = resolver.resolve_many(world["client"],
                                        world["context"], names)
        # The split landed while the batch was running...
        assert resolver.shard_splits > 0
        assert world["placement"].epoch > epoch_before
        # ...and every item, before and after the bump, is correct.
        assert len(results) == len(names)
        for name_, (entity, _cost) in zip(names, results):
            assert entity is local_resolve(world["context"], name_)
        # Later items were actually served by the new owners: machines
        # that gained shards gained load (a stale pre-split memo would
        # have kept charging pool[0]'s server).
        gained = [m for m in shard_map.machines()
                  if m is not world["pool"][0]]
        assert gained
        assert any(resolver.load_of_machine(m) > 0 for m in gained)

    def test_sequential_resolves_see_splits_immediately(self):
        world = make_deployment(names=1500, shards=1, manager=True,
                                check_every=80, min_window=40)
        resolver = world["resolver"]
        namespace = world["namespace"]
        sampler = ZipfSampler(1500, rng=__import__("random").Random(3))
        for rank in sampler.sample_many(400):
            entity, _ = resolver.resolve(
                world["client"], world["context"],
                "/hot/" + namespace.names[rank])
            assert entity.is_defined()
        assert resolver.shard_splits > 0
        assert world["shard_map"].is_partition()


class TestMigrationFailure:
    """Commit-last: an undeliverable migration aborts the split with
    the old map and old epoch intact."""

    def test_dead_target_aborts_split(self):
        world = make_deployment(names=400, shards=1)
        resolver = world["resolver"]
        placement = world["placement"]
        shard_map = world["shard_map"]
        target = world["pool"][1]
        FailureInjector(world["simulator"]).crash_machine(target)
        [shard] = shard_map.shards
        epoch_before = placement.epoch
        assert not resolver.split_shard(
            world["namespace"].directory, shard, target)
        assert resolver.shard_split_aborts == 1
        assert resolver.shard_splits == 0
        assert len(shard_map) == 1
        assert placement.epoch == epoch_before
        assert shard_map.is_partition()

    def test_manager_survives_dead_pool_machines(self):
        world = make_deployment(names=1200, shards=1, manager=True,
                                check_every=80, min_window=40)
        injector = FailureInjector(world["simulator"])
        for machine in world["pool"][1:3]:
            injector.crash_machine(machine)
        resolver = world["resolver"]
        namespace = world["namespace"]
        sampler = ZipfSampler(1200, rng=__import__("random").Random(1))
        for rank in sampler.sample_many(400):
            resolver.resolve(world["client"], world["context"],
                             "/hot/" + namespace.names[rank])
        # Splits still happen, but only onto live machines.
        assert resolver.shard_splits > 0
        for shard in world["shard_map"].shards:
            assert shard.machine.alive


@st.composite
def split_sequences(draw):
    """(shard_count, [(shard_index_seed, fraction)]) split scripts."""
    initial = draw(st.integers(min_value=1, max_value=4))
    steps = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=10 ** 6),
                  st.floats(min_value=0.01, max_value=0.99)),
        max_size=12))
    return initial, steps


class TestOwnershipProperty:
    """Property: after ANY split sequence, every binding is owned by
    exactly one shard, and membership matches ownership."""

    @given(script=split_sequences(),
           probes=st.lists(st.text(min_size=1, max_size=12),
                           max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_exactly_one_owner_after_any_split_sequence(self, script,
                                                        probes):
        initial, steps = script
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        pool = [simulator.machine(network, f"s{i}") for i in range(4)]
        tree = NamingTree("root", sigma=simulator.sigma)
        namespace = build_zipf_namespace(tree, "hot", count=200,
                                         distinct=8)
        shard_map = ShardMap(namespace.directory, pool[:initial])
        all_members = {name_ for shard in shard_map.shards
                       for name_ in shard.members}
        for index_seed, fraction in steps:
            shard = shard_map.shards[index_seed % len(shard_map)]
            if shard.span < 2:
                continue
            at = shard.lo + max(1, int(shard.span * fraction))
            if not shard.lo < at < shard.hi:
                continue
            machine = pool[index_seed % len(pool)]
            shard_map.apply_split(
                shard_map.plan_split(shard, machine, at=at))
        assert shard_map.is_partition()
        member_union = set()
        for shard in shard_map.shards:
            assert not member_union & shard.members
            member_union |= shard.members
            for name_ in shard.members:
                assert shard_map.owner_of(name_) is shard
        assert member_union == all_members
        for probe in probes + list(namespace.names[:5]):
            assert len(shard_map.owners_of(probe)) == 1
            assert shard_map.owners_of(probe)[0] is \
                shard_map.owner_of(probe)
