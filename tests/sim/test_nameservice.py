"""Tests for the distributed name service (placement + resolver)."""

from __future__ import annotations

import pytest

from repro.errors import SchemeError
from repro.model.entities import ObjectEntity
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import (
    DistributedResolver,
    ResolutionStyle,
    check_semantics_preserved,
)
from repro.sim.kernel import Simulator


@pytest.fixture
def deployment():
    """A three-server chain: client machine hosts `a`, second machine
    hosts `b`, third hosts `c`; path a/b/c/leaf crosses all three."""
    simulator = Simulator(seed=0)
    network = simulator.network("lan")
    m_client = simulator.machine(network, "client-m")
    m_b = simulator.machine(network, "b-m")
    m_c = simulator.machine(network, "c-m")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("a/b/c")
    leaf = tree.mkfile("a/b/c/leaf")
    placement = DirectoryPlacement()
    placement.place(tree.root, m_client)
    placement.place(tree.directory("a"), m_client)
    placement.place(tree.directory("a/b"), m_b)
    placement.place(tree.directory("a/b/c"), m_c)
    client = simulator.spawn(m_client, "client")
    context = ProcessContext(tree.root)
    resolver = DistributedResolver(simulator, placement)
    return simulator, resolver, client, context, tree, leaf


class TestPlacement:
    def test_place_rejects_non_directory(self):
        placement = DirectoryPlacement()
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        with pytest.raises(SchemeError):
            placement.place(ObjectEntity("file"), machine)

    def test_place_subtree_counts(self):
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        tree = NamingTree("r", parent_links=True)
        tree.mkdir("a/b")
        tree.mkfile("a/f")
        placement = DirectoryPlacement()
        assert placement.place_subtree(tree.root, machine) == 3
        assert placement.placed_count() == 3

    def test_place_subtree_stops_at_foreign_placement(self):
        simulator = Simulator()
        network = simulator.network()
        m1, m2 = simulator.machine(network), simulator.machine(network)
        tree = NamingTree("r", parent_links=True)
        mounted = NamingTree("shared", parent_links=True)
        mounted.mkdir("deep")
        tree.attach("mnt", mounted.root, set_parent=False)
        placement = DirectoryPlacement()
        placement.place_subtree(mounted.root, m2)
        placement.place_subtree(tree.root, m1)
        assert placement.host_of(mounted.root) is m2
        assert placement.host_of(mounted.directory("deep")) is m2
        assert placement.host_of(tree.root) is m1

    def test_require_host(self):
        placement = DirectoryPlacement()
        tree = NamingTree("r")
        with pytest.raises(SchemeError):
            placement.require_host(tree.root)


class TestResolverSemantics:
    def test_matches_local_resolution(self, deployment):
        simulator, resolver, client, context, tree, leaf = deployment
        for text in ("/a/b/c/leaf", "/a/b", "/a/nope", "/missing",
                     "a/b/c/leaf", "/"):
            assert check_semantics_preserved(resolver, client, context,
                                             text)

    def test_resolves_leaf(self, deployment):
        simulator, resolver, client, context, tree, leaf = deployment
        entity, cost = resolver.resolve(client, context, "/a/b/c/leaf")
        assert entity is leaf
        assert cost.steps == 5  # root + a,b,c,leaf

    def test_undefined_result_costs_partial_walk(self, deployment):
        simulator, resolver, client, context, tree, leaf = deployment
        entity, cost = resolver.resolve(client, context, "/a/zzz/x")
        assert not entity.is_defined()
        assert cost.steps >= 2


class TestResolverCosts:
    def test_local_resolution_is_free(self, deployment):
        simulator, resolver, client, context, tree, leaf = deployment
        _, cost = resolver.resolve(client, context, "/a")
        assert cost.messages == 0
        assert cost.latency == 0.0

    def test_remote_walk_counts_messages(self, deployment):
        simulator, resolver, client, context, tree, leaf = deployment
        _, cost = resolver.resolve(client, context, "/a/b/c/leaf")
        assert cost.messages > 0
        assert cost.latency > 0
        assert cost.remote_steps >= 2
        assert cost.servers_touched == {"dirserver@b-m", "dirserver@c-m"}

    def test_recursive_cheaper_than_iterative_on_chains(self, deployment):
        simulator, resolver, client, context, tree, leaf = deployment
        _, iterative = resolver.resolve(client, context, "/a/b/c/leaf",
                                        ResolutionStyle.ITERATIVE)
        _, recursive = resolver.resolve(client, context, "/a/b/c/leaf",
                                        ResolutionStyle.RECURSIVE)
        assert recursive.messages < iterative.messages

    def test_load_accounting(self, deployment):
        simulator, resolver, client, context, tree, leaf = deployment
        resolver.resolve(client, context, "/a/b/c/leaf")
        assert resolver.load.get("dirserver@b-m", 0) >= 1
        assert resolver.load.get("dirserver@c-m", 0) >= 1
        resolver.reset_load()
        assert resolver.load == {}

    def test_unplaced_directories_resolve_in_place(self, deployment):
        simulator, resolver, client, context, tree, leaf = deployment
        # Per-process private dirs have no placement: no messages.
        private = NamingTree("ns", sigma=simulator.sigma)
        private.mkfile("x/y")
        private_context = ProcessContext(private.root)
        _, cost = resolver.resolve(client, private_context, "/x/y")
        assert cost.messages == 0

    def test_cost_str(self, deployment):
        simulator, resolver, client, context, tree, leaf = deployment
        _, cost = resolver.resolve(client, context, "/a/b/c/leaf")
        assert "steps=5" in str(cost)

    def test_server_processes_are_reused(self, deployment):
        simulator, resolver, client, context, tree, leaf = deployment
        first = resolver.server_for(client.machine)
        second = resolver.server_for(client.machine)
        assert first is second
