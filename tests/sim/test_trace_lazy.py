"""Tests for lazy trace details, the record-time kind filter, and the
lazily built per-kind index (PR 6 performance work)."""

from __future__ import annotations

from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


class TestLazyDetails:
    def test_callable_detail_resolved_once(self):
        log = TraceLog()
        calls = []

        def fmt() -> str:
            calls.append(True)
            return "formatted"

        entry = log.record(1.0, "send", fmt)
        assert calls == []  # nothing formatted at record time
        assert entry.detail == "formatted"
        assert entry.detail == "formatted"
        assert calls == [True]  # resolved exactly once, then cached

    def test_tuple_detail_resolved_lazily(self):
        log = TraceLog()
        calls = []

        def fmt(arg) -> str:
            calls.append(arg)
            return f"msg#{arg}"

        entry = log.record(1.0, "send", (fmt, 7))
        assert calls == []
        assert entry.detail == "msg#7"
        assert calls == [7]
        assert entry.detail == "msg#7"
        assert calls == [7]

    def test_string_detail_unchanged(self):
        log = TraceLog()
        entry = log.record(1.0, "send", "plain")
        assert entry.detail == "plain"

    def test_repr_and_to_dict_resolve(self):
        log = TraceLog()
        entry = log.record(2.0, "send", lambda: "lazy", data=7)
        assert "lazy" in repr(entry)
        assert entry.to_dict() == {"time": 2.0, "kind": "send",
                                   "detail": "lazy", "data": 7}


class TestKindFilter:
    def test_filtered_kinds_are_dropped(self):
        log = TraceLog(kinds=("drop",))
        assert log.record(1.0, "send", "a") is None
        kept = log.record(2.0, "drop", "b")
        assert kept is not None
        assert [e.kind for e in log] == ["drop"]
        assert log.kind_filter == frozenset({"drop"})

    def test_unfiltered_log_records_everything(self):
        log = TraceLog()
        assert log.kind_filter is None
        log.record(1.0, "send", "a")
        log.record(1.0, "deliver", "b")
        assert len(log) == 2

    def test_simulator_accepts_prebuilt_trace(self):
        filtered = Simulator(
            seed=5, trace=TraceLog(kinds=("drop", "failure")))
        network = filtered.network("lan")
        a = filtered.spawn(filtered.machine(network), "a")
        b = filtered.spawn(filtered.machine(network), "b")
        a.send(b, payload="x")
        filtered.run()
        # Sends/delivers were filtered out of the log ...
        assert len(filtered.trace) == 0
        # ... but the simulation itself is unaffected.
        assert filtered.messages_delivered == 1
        assert b.receive().payload == "x"

    def test_filtered_run_matches_default_run(self):
        def drive(simulator: Simulator) -> list:
            network = simulator.network("lan")
            procs = [simulator.spawn(simulator.machine(network), f"p{i}")
                     for i in range(4)]
            for index in range(40):
                procs[index % 4].send(procs[(index + 1) % 4],
                                      payload=index)
            simulator.run()
            return [(p.label, len(p.mailbox)) for p in procs]

        default = drive(Simulator(seed=9))
        filtered = drive(Simulator(seed=9, trace=TraceLog(kinds=())))
        assert default == filtered


class TestLazyIndex:
    def test_of_kind_after_new_records(self):
        log = TraceLog()
        log.record(1.0, "send", "a")
        assert [e.detail for e in log.of_kind("send")] == ["a"]
        log.record(2.0, "send", "b")  # index must pick up the tail
        assert [e.detail for e in log.of_kind("send")] == ["a", "b"]

    def test_index_entries_are_the_recorded_objects(self):
        log = TraceLog()
        first = log.record(1.0, "send", "a")
        second = log.record(2.0, "deliver", "b")
        assert log.of_kind("send")[0] is first
        assert log.of_kind("deliver")[0] is second

    def test_eviction_rebuilds_index(self):
        log = TraceLog(max_entries=3)
        log.record(1.0, "send", "a")
        log.record(2.0, "deliver", "b")
        assert log.kinds() == ["send", "deliver"]  # index built
        log.record(3.0, "deliver", "c")
        log.record(4.0, "deliver", "d")  # evicts the only "send"
        assert log.evicted == 1
        assert log.of_kind("send") == []
        assert [e.detail for e in log.of_kind("deliver")] == ["b", "c", "d"]
        assert log.kinds() == ["deliver"]

    def test_kernel_trace_kinds_reachable(self):
        simulator = Simulator(seed=3)
        network = simulator.network("lan")
        a = simulator.spawn(simulator.machine(network), "a")
        b = simulator.spawn(simulator.machine(network), "b")
        a.send(b, payload=1)
        simulator.run()
        assert len(simulator.trace.of_kind("send")) == 1
        assert len(simulator.trace.of_kind("deliver")) == 1
        send = simulator.trace.of_kind("send")[0]
        assert send.detail == "a → b msg#1"
