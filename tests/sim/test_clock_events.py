"""Tests for the virtual clock and the event queue."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_is_fine(self):
        clock = VirtualClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_cannot_go_backwards(self):
        clock = VirtualClock(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)

    def test_repr(self):
        assert "t=0.0" in repr(VirtualClock())


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        queue = EventQueue()
        order = []
        for tag in ("first", "second", "third"):
            queue.push(1.0, lambda t=tag: order.append(t))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["first", "second", "third"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        ran = []
        keep = queue.push(1.0, lambda: ran.append("keep"))
        drop = queue.push(0.5, lambda: ran.append("drop"))
        drop.cancel()
        while (event := queue.pop()) is not None:
            event.action()
        assert ran == ["keep"]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        drop = queue.push(0.5, lambda: None)
        queue.push(2.0, lambda: None)
        drop.cancel()
        assert queue.peek_time() == 2.0

    def test_len_counts_live_events(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert len(queue) == 1

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert not queue

    def test_repr_mentions_note(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, note="deliver")
        assert "deliver" in repr(event)
