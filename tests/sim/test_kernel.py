"""Tests for the simulator kernel: determinism, delivery, scheduling."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


def two_processes(simulator: Simulator):
    network = simulator.network("lan")
    sender = simulator.spawn(simulator.machine(network, "m1"), "sender")
    receiver = simulator.spawn(simulator.machine(network, "m2"),
                               "receiver")
    return sender, receiver


class TestMessaging:
    def test_roundtrip(self):
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        sender.send(receiver, payload="ping")
        simulator.run()
        message = receiver.receive()
        assert message.payload == "ping"
        assert simulator.messages_delivered == 1

    def test_latency_orders_delivery(self):
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        sender.send(receiver, payload="slow", latency=5.0)
        sender.send(receiver, payload="fast", latency=1.0)
        simulator.run()
        assert receiver.receive().payload == "fast"
        assert receiver.receive().payload == "slow"

    def test_clock_advances_to_delivery_time(self):
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        sender.send(receiver, latency=4.5)
        simulator.run()
        assert simulator.clock.now == 4.5

    def test_handler_invoked_on_delivery(self):
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        seen = []
        receiver.on_message(lambda proc, msg: seen.append(msg.payload))
        sender.send(receiver, payload=1)
        simulator.run()
        assert seen == [1]

    def test_negative_latency_rejected(self):
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        with pytest.raises(SimulationError):
            sender.send(receiver, latency=-1.0)

    def test_dead_sender_rejected(self):
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        sender.exit()
        with pytest.raises(SimulationError):
            sender.send(receiver)

    def test_message_to_dead_receiver_is_dropped(self):
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        sender.send(receiver)
        receiver.machine.alive = False
        simulator.run()
        assert simulator.messages_dropped == 1
        assert receiver.receive() is None

    def test_crossing_predicates(self):
        simulator = Simulator()
        net1, net2 = simulator.network(), simulator.network()
        m1 = simulator.machine(net1)
        a = simulator.spawn(m1)
        b = simulator.spawn(m1)
        c = simulator.spawn(simulator.machine(net2))
        same = a.send(b)
        cross = a.send(c)
        assert not same.crosses_machines()
        assert cross.crosses_machines() and cross.crosses_networks()


class TestPartitions:
    def test_partition_drops_cross_network_messages(self):
        simulator = Simulator()
        net1, net2 = simulator.network("n1"), simulator.network("n2")
        a = simulator.spawn(simulator.machine(net1))
        b = simulator.spawn(simulator.machine(net2))
        simulator.partition(net1, net2)
        a.send(b)
        simulator.run()
        assert simulator.messages_dropped == 1

    def test_heal_restores_delivery(self):
        simulator = Simulator()
        net1, net2 = simulator.network(), simulator.network()
        a = simulator.spawn(simulator.machine(net1))
        b = simulator.spawn(simulator.machine(net2))
        simulator.partition(net1, net2)
        simulator.heal(net1, net2)
        a.send(b)
        simulator.run()
        assert simulator.messages_delivered == 1

    def test_partition_is_symmetric(self):
        simulator = Simulator()
        net1, net2 = simulator.network(), simulator.network()
        simulator.partition(net1, net2)
        assert simulator.partitioned(net2, net1)


class TestScheduling:
    def test_scheduled_action_runs_at_time(self):
        simulator = Simulator()
        ran_at = []
        simulator.schedule(3.0, lambda: ran_at.append(simulator.clock.now))
        simulator.run()
        assert ran_at == [3.0]

    def test_run_until_leaves_future_events(self):
        simulator = Simulator()
        ran = []
        simulator.schedule(1.0, lambda: ran.append(1))
        simulator.schedule(10.0, lambda: ran.append(10))
        simulator.run(until=5.0)
        assert ran == [1]
        assert simulator.clock.now == 5.0
        simulator.run()
        assert ran == [1, 10]

    def test_cannot_schedule_in_past(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)

    def test_max_events_guard(self):
        simulator = Simulator()

        def reschedule():
            simulator.schedule(1.0, reschedule)

        simulator.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            simulator.run(max_events=10)

    def test_run_returns_processed_count(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        assert simulator.run() == 2


class TestBoundedPump:
    """run_next / run_until_settled: the kernel fast path."""

    def test_run_next_processes_exactly_one_event(self):
        simulator = Simulator()
        ran = []
        simulator.schedule(1.0, lambda: ran.append(1))
        simulator.schedule(2.0, lambda: ran.append(2))
        assert simulator.run_next() is True
        assert ran == [1]
        assert simulator.clock.now == 1.0
        assert len(simulator.queue) == 1

    def test_run_next_on_empty_queue(self):
        simulator = Simulator()
        assert simulator.run_next() is False
        assert simulator.clock.now == 0.0

    def test_settles_message_without_draining_future_events(self):
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        fired = []
        simulator.schedule(100.0, lambda: fired.append(True))
        message = sender.send(receiver, payload="ping", latency=2.0)
        processed = simulator.run_until_settled(message)
        assert message.delivered and message.settled
        assert processed == 1
        assert not fired
        assert len(simulator.queue) == 1
        assert simulator.clock.now == 2.0
        simulator.run()
        assert fired == [True]

    def test_runs_intervening_events_in_order(self):
        """Events scheduled *before* the awaited delivery still run —
        the pump stops early, it never reorders."""
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        ran = []
        simulator.schedule(1.0, lambda: ran.append("early"))
        message = sender.send(receiver, latency=3.0)
        simulator.run_until_settled(message)
        assert ran == ["early"]

    def test_accepts_an_iterable_of_messages(self):
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        batch = [sender.send(receiver, payload=i, latency=float(i + 1))
                 for i in range(3)]
        simulator.run_until_settled(batch)
        assert all(message.settled for message in batch)
        assert simulator.messages_delivered == 3

    def test_dropped_message_counts_as_settled(self):
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        message = sender.send(receiver)
        receiver.machine.alive = False
        simulator.run_until_settled(message)
        assert message.dropped and message.settled
        assert not message.delivered

    def test_exhausted_queue_ends_the_pump(self):
        """An unsettleable message (nothing queued can deliver it)
        returns instead of spinning."""
        simulator = Simulator()
        sender, receiver = two_processes(simulator)
        ghost = sender.send(receiver)
        simulator.queue.pop()  # lose the delivery event
        assert simulator.run_until_settled(ghost) == 0
        assert not ghost.settled

    def test_max_events_guard(self):
        simulator = Simulator()
        sender, receiver = two_processes(simulator)

        def reschedule():
            simulator.schedule(0.5, reschedule)

        simulator.schedule(0.0, reschedule)
        message = sender.send(receiver, latency=1e9)
        with pytest.raises(SimulationError):
            simulator.run_until_settled(message, max_events=10)

    def test_equivalent_order_to_full_run(self):
        """Pumping bounded then draining gives the same trace as one
        full run()."""

        def build():
            simulator = Simulator(seed=3)
            sender, receiver = two_processes(simulator)
            messages = [sender.send(receiver, payload=i,
                                    latency=simulator.latency_jitter())
                        for i in range(10)]
            return simulator, messages

        bounded, messages = build()
        for message in messages:
            bounded.run_until_settled(message)
        full, _ = build()
        full.run()
        assert ([e.detail for e in bounded.trace]
                == [e.detail for e in full.trace])


class TestDeterminism:
    def _digest(self, seed: int) -> list[str]:
        simulator = Simulator(seed=seed)
        network = simulator.network("lan")
        processes = [simulator.spawn(simulator.machine(network), f"p{i}")
                     for i in range(3)]
        for index in range(20):
            sender = processes[index % 3]
            receiver = processes[(index + 1) % 3]
            sender.send(receiver,
                        latency=simulator.latency_jitter())
        simulator.run()
        return [entry.detail for entry in simulator.trace]

    def test_same_seed_same_trace(self):
        assert self._digest(5) == self._digest(5)

    def test_different_seed_different_latencies(self):
        first = Simulator(seed=1).latency_jitter()
        second = Simulator(seed=2).latency_jitter()
        assert first != second

    def test_spawn_registers_in_sigma(self):
        simulator = Simulator()
        process = simulator.spawn(
            simulator.machine(simulator.network()))
        assert process in simulator.sigma

    def test_spawn_on_dead_machine_rejected(self):
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        machine.alive = False
        with pytest.raises(SimulationError):
            simulator.spawn(machine)

    def test_repr(self):
        assert "sent=0" in repr(Simulator())


class TestOrderingProperties:
    def test_fifo_per_pair_with_equal_latency(self):
        """Messages between one sender/receiver pair with equal
        latencies are delivered in send order."""
        simulator = Simulator(seed=0)
        machine = simulator.machine(simulator.network())
        sender = simulator.spawn(machine, "s")
        receiver = simulator.spawn(machine, "r")
        for index in range(50):
            sender.send(receiver, payload=index, latency=2.0)
        simulator.run()
        received = []
        while (message := receiver.receive()) is not None:
            received.append(message.payload)
        assert received == list(range(50))

    def test_handler_sends_are_processed_same_run(self):
        """A handler that replies keeps the kernel draining until
        quiescence in a single run() call."""
        simulator = Simulator(seed=0)
        machine = simulator.machine(simulator.network())
        ping = simulator.spawn(machine, "ping")
        pong = simulator.spawn(machine, "pong")
        volleys = []

        def pong_handler(process, message):
            if message.payload < 3:
                volleys.append(message.payload)
                process.send(ping, payload=message.payload)

        def ping_handler(process, message):
            process.send(pong, payload=message.payload + 1)

        pong.on_message(pong_handler)
        ping.on_message(ping_handler)
        ping.send(pong, payload=0)
        simulator.run()
        assert volleys == [0, 1, 2]
