"""Tests for the two-lane event queue and the kernel fast paths
introduced by the PR 6 performance work: FIFO/heap lane merging,
message payloads on the queue, cancellation bookkeeping with
compaction, and the pure ``next_time`` peek."""

from __future__ import annotations

import random

from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.kernel import Simulator


def _noop() -> None:
    pass


class TestLaneMerging:
    def test_monotone_pushes_stay_in_fifo_lane(self):
        queue = EventQueue()
        for time in (1.0, 2.0, 2.0, 3.0):
            queue.push(time, _noop)
        assert len(queue._fifo) == 4
        assert queue._heap == []

    def test_out_of_order_push_goes_to_heap_lane(self):
        queue = EventQueue()
        queue.push(5.0, _noop)
        queue.push(2.0, _noop)  # before the FIFO tail -> heap
        assert len(queue._fifo) == 1
        assert len(queue._heap) == 1

    def test_pop_merges_lanes_in_time_seq_order(self):
        queue = EventQueue()
        times = [3.0, 1.0, 2.0, 1.0, 5.0, 4.0, 2.0]
        for time in times:
            queue.push(time, _noop)
        popped = []
        while queue:
            popped.append(queue.pop())
        assert [e.time for e in popped] == sorted(times)
        # Equal times dequeue in scheduling (seq) order.
        seqs_at_1 = [e.seq for e in popped if e.time == 1.0]
        assert seqs_at_1 == sorted(seqs_at_1)

    def test_random_interleaving_matches_sorted_order(self):
        rng = random.Random(11)
        queue = EventQueue()
        keys = []
        for _ in range(500):
            time = rng.choice([0.5, 1.0, 1.5, 2.0, 4.0, 8.0])
            event = queue.push(time, _noop)
            keys.append((time, event.seq))
        popped = []
        while queue:
            event = queue.pop()
            popped.append((event.time, event.seq))
        assert popped == sorted(keys)

    def test_interleaved_push_and_pop(self):
        queue = EventQueue()
        queue.push(2.0, _noop)
        queue.push(1.0, _noop)
        assert queue.pop().time == 1.0
        queue.push(0.5, _noop)  # earlier than everything queued
        assert queue.pop().time == 0.5
        assert queue.pop().time == 2.0
        assert queue.pop() is None


class TestDeferredMessages:
    def test_kernel_send_enqueues_message_payload(self):
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        a = simulator.spawn(simulator.machine(network), "a")
        b = simulator.spawn(simulator.machine(network), "b")
        message = a.send(b, payload="hi")
        entry = simulator.queue._fifo[0]
        assert entry[2] is message

    def test_pop_wraps_message_into_firing_event(self):
        # External consumers popping the queue still see the one
        # ScheduledEvent API; firing the wrapped action delivers.
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        a = simulator.spawn(simulator.machine(network), "a")
        b = simulator.spawn(simulator.machine(network), "b")
        message = a.send(b, payload="hi")
        event = simulator.queue.pop()
        assert isinstance(event, ScheduledEvent)
        assert event.time == message.deliver_time
        event.action()
        assert message.delivered
        assert b.receive() is message

    def test_defer_callable_still_supported(self):
        queue = EventQueue()
        fired = []
        queue.defer(1.0, lambda: fired.append(True))
        event = queue.pop()
        event.action()
        assert fired == [True]


class TestCancellationBookkeeping:
    def test_len_is_live_count(self):
        queue = EventQueue()
        events = [queue.push(float(i), _noop) for i in range(10)]
        assert len(queue) == 10
        events[3].cancel()
        events[7].cancel()
        assert len(queue) == 8
        assert queue.cancelled_len() <= 2  # compaction may have run

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        keep = queue.push(1.0, _noop)
        drop = queue.push(2.0, _noop)
        last = queue.push(3.0, _noop)
        drop.cancel()
        assert queue.pop() is keep
        assert queue.pop() is last
        assert queue.pop() is None

    def test_compaction_triggers_past_half_cancelled(self):
        queue = EventQueue()
        events = [queue.push(float(i), _noop) for i in range(20)]
        for event in events[:11]:
            event.cancel()
        # More than half cancelled -> automatic compact() dropped them.
        assert queue.cancelled_len() == 0
        assert queue.approx_len() == len(queue) == 9

    def test_compaction_covers_both_lanes(self):
        queue = EventQueue()
        fifo_events = [queue.push(float(i + 10), _noop) for i in range(6)]
        heap_events = [queue.push(float(i), _noop) for i in range(6)]
        for event in fifo_events[:4] + heap_events[:4]:
            event.cancel()
        queue.compact()
        assert queue.cancelled_len() == 0
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(
            e.time for e in fifo_events[4:] + heap_events[4:])

    def test_cancel_after_pop_is_harmless(self):
        queue = EventQueue()
        event = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        assert queue.pop() is event
        live_before = len(queue)
        event.cancel()  # already popped: only the flag flips
        assert event.cancelled
        assert len(queue) == live_before
        assert queue.cancelled_len() == 0


class TestPurePeek:
    def test_next_time_does_not_mutate(self):
        queue = EventQueue()
        first = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        first.cancel()
        depth = queue.approx_len()
        assert queue.next_time() == 2.0
        # The cancelled head is still parked in the queue: a pure read.
        assert queue.approx_len() == depth
        assert queue.cancelled_len() == 1

    def test_next_time_scans_both_lanes(self):
        queue = EventQueue()
        tail = queue.push(5.0, _noop)
        queue.push(2.0, _noop)  # heap lane
        assert queue.next_time() == 2.0
        assert tail.time == 5.0

    def test_next_time_empty(self):
        assert EventQueue().next_time() is None

    def test_peek_time_discards_cancelled_heads(self):
        queue = EventQueue()
        first = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        first.cancel()
        depth = queue.approx_len()
        assert queue.peek_time() == 2.0
        assert queue.approx_len() == depth - 1  # head lazily dropped
        assert queue.cancelled_len() == 0


class TestRunPumpIntegration:
    def test_run_until_bound_pushes_head_back(self):
        simulator = Simulator(seed=0)
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(5.0, lambda: fired.append(5))
        assert simulator.run(until=2.0) == 1
        assert fired == [1]
        assert len(simulator.queue) == 1
        assert simulator.run() == 1
        assert fired == [1, 5]

    def test_same_instant_batch_preserves_seq_order(self):
        simulator = Simulator(seed=0)
        order = []
        for index in range(50):
            simulator.schedule(1.0, lambda i=index: order.append(i))
        simulator.run()
        assert order == list(range(50))

    def test_mid_batch_cancellation_and_compaction(self):
        # An action cancels most of the still-queued same-instant
        # events, pushing the queue past the compaction threshold mid
        # batch; the in-place rebuild must stay visible to the pump.
        simulator = Simulator(seed=0)
        fired = []
        events = []

        def cancel_rest() -> None:
            fired.append("cancel")
            for event in events:
                event.cancel()

        simulator.schedule(1.0, cancel_rest)
        events.extend(
            simulator.schedule(1.0, lambda i=i: fired.append(i))
            for i in range(40))
        survivor = simulator.schedule(2.0, lambda: fired.append("end"))
        assert survivor.cancelled is False
        simulator.run()
        assert fired == ["cancel", "end"]
        assert len(simulator.queue) == 0
