"""TraceLog per-kind index, ring-buffer mode and export safety."""

from __future__ import annotations

import json

import pytest

from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


class TestKindIndex:
    def test_of_kind_returns_in_order(self):
        log = TraceLog()
        log.record(0.0, "send", "a")
        log.record(1.0, "deliver", "b")
        log.record(2.0, "send", "c")
        assert [e.detail for e in log.of_kind("send")] == ["a", "c"]
        assert log.of_kind("nope") == []

    def test_kinds_in_first_seen_order(self):
        log = TraceLog()
        log.record(0.0, "send", "a")
        log.record(1.0, "deliver", "b")
        log.record(2.0, "send", "c")
        assert log.kinds() == ["send", "deliver"]

    def test_index_matches_scan(self):
        log = TraceLog()
        for index in range(50):
            log.record(float(index), f"k{index % 3}", str(index))
        for kind in log.kinds():
            assert log.of_kind(kind) == [e for e in log
                                         if e.kind == kind]


class TestRingBuffer:
    def test_oldest_evicted(self):
        log = TraceLog(max_entries=3)
        for index in range(5):
            log.record(float(index), "send", str(index))
        assert len(log) == 3
        assert log.evicted == 2
        assert [e.detail for e in log] == ["2", "3", "4"]

    def test_index_follows_eviction(self):
        log = TraceLog(max_entries=2)
        log.record(0.0, "send", "a")
        log.record(1.0, "deliver", "b")
        log.record(2.0, "deliver", "c")  # evicts the only "send"
        assert log.of_kind("send") == []
        assert "send" not in log.kinds()
        assert [e.detail for e in log.of_kind("deliver")] == ["b", "c"]

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            TraceLog(max_entries=0)

    def test_unbounded_by_default(self):
        log = TraceLog()
        for index in range(1000):
            log.record(float(index), "send", str(index))
        assert len(log) == 1000
        assert log.evicted == 0


class TestExportSafety:
    def test_to_dict_summarizes_payloads(self):
        log = TraceLog()
        log.record(0.0, "send", "scalar", data=7)
        log.record(1.0, "send", "object", data=object())
        dicts = log.to_dicts()
        json.dumps(dicts)
        assert dicts[0]["data"] == 7
        assert isinstance(dicts[1]["data"], str)

    def test_tail(self):
        log = TraceLog()
        for index in range(10):
            log.record(float(index), "send", str(index))
        assert [e.detail for e in log.tail(3)] == ["7", "8", "9"]
        assert log.tail(0) == []


class TestKernelIntegration:
    def test_simulator_trace_still_records_messages(self):
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        machine = simulator.machine(network, "m")
        sender = simulator.spawn(machine, "p1")
        receiver = simulator.spawn(machine, "p2")
        sender.send(receiver, payload="ping")
        simulator.run()
        assert simulator.trace.of_kind("send")
        assert simulator.trace.of_kind("deliver")
