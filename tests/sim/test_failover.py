"""Tests for the fault-tolerance layer of the name service.

Covers the retry/backoff/circuit policy objects, replicated placement
with stale marks, failover resolution across a replica set, degraded
(weak-coherence) stale reads, and the crash → restart → resolve cycle
through the injector's respawn hooks with anti-entropy.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SchemeError, SimulationError
from repro.model.entities import ObjectEntity
from repro.model.resolution import resolve as local_resolve
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.cache import CachePolicy
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver
from repro.nameservice.retry import (
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
)
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=5, base_backoff=0.5,
                             backoff_factor=2.0, max_backoff=3.0,
                             jitter=0.0)
        rng = random.Random(0)
        waits = [policy.backoff(k, rng) for k in (1, 2, 3, 4, 5)]
        assert waits == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_backoff=1.0, jitter=0.25)
        rng = random.Random(7)
        for _ in range(50):
            wait = policy.backoff(1, rng)
            assert 1.0 <= wait <= 1.25

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(jitter=0.5)
        first = [policy.backoff(1, random.Random(3)) for _ in range(3)]
        assert len(set(first)) == 1

    def test_validation(self):
        with pytest.raises(SimulationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SimulationError):
            RetryPolicy(base_backoff=-1.0)
        with pytest.raises(SimulationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(SimulationError):
            RetryPolicy().backoff(0, random.Random(0))


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0)
        for now in (1.0, 2.0):
            breaker.record_failure(now)
            assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(3.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(5.0)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0)
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow(5.0)  # cooldown elapsed: half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure(5.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(9.0)  # cooldown restarted

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0)
        breaker.record_failure(0.0)
        assert breaker.allow(6.0)
        breaker.record_success(6.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.transitions == 3  # open, half-open, closed

    def test_reset_closes(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure(0.0)
        breaker.reset(1.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(SimulationError):
            CircuitBreaker(cooldown=-1.0)


class TestReplicatedPlacement:
    @pytest.fixture
    def world(self):
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        machines = [simulator.machine(network, f"m{i}") for i in range(3)]
        tree = NamingTree("root", sigma=simulator.sigma)
        tree.mkdir("svc")
        return tree.directory("svc"), machines

    def test_place_replicated_orders_primary_first(self, world):
        directory, (m0, m1, m2) = world
        placement = DirectoryPlacement()
        placement.place_replicated(directory, m0, m1, m2, m1)
        assert placement.host_of(directory) is m0
        assert placement.replicas_of(directory) == (m0, m1, m2)

    def test_membership_changes_bump_epoch_stale_marks_do_not(self, world):
        directory, (m0, m1, _m2) = world
        placement = DirectoryPlacement()
        placement.place_replicated(directory, m0, m1)
        epoch = placement.epoch
        placement.mark_stale(directory, m1)
        assert placement.epoch == epoch
        placement.add_replica(directory, m1)  # already a member: no-op
        assert placement.epoch == epoch
        placement.remove_replica(directory, m1)
        assert placement.epoch == epoch + 1

    def test_remove_primary_promotes_next(self, world):
        directory, (m0, m1, _m2) = world
        placement = DirectoryPlacement()
        placement.place_replicated(directory, m0, m1)
        placement.remove_replica(directory, m0)
        assert placement.host_of(directory) is m1
        placement.remove_replica(directory, m1)
        assert placement.host_of(directory) is None

    def test_remove_replica_discards_its_stale_mark(self, world):
        directory, (m0, m1, _m2) = world
        placement = DirectoryPlacement()
        placement.place_replicated(directory, m0, m1)
        placement.mark_stale(directory, m1)
        assert placement.stale_count() == 1
        placement.remove_replica(directory, m1)
        assert placement.stale_count() == 0

    def test_stale_bookkeeping(self, world):
        directory, (m0, m1, _m2) = world
        placement = DirectoryPlacement()
        placement.place_replicated(directory, m0, m1)
        with pytest.raises(SchemeError):
            placement.mark_stale(directory, _m2)  # not a replica
        placement.mark_stale(directory, m1)
        assert placement.is_stale(directory, m1)
        assert not placement.is_stale(directory, m0)
        assert placement.stale_uids_of(m1) == [directory.uid]
        assert placement.clear_stale(directory.uid, m1)
        assert not placement.clear_stale(directory.uid, m1)
        assert placement.stale_uids_of(m1) == []
        assert placement.primary_of_uid(directory.uid) is m0


def make_world(cache_policy=CachePolicy.NONE, retry=True,
               serve_stale=False, seed=0, jitter=0.25):
    """A replicated deployment: /svc hosted on m1 (primary) + m2,
    root on the client's machine, servers behind their own network."""
    simulator = Simulator(seed=seed)
    lan = simulator.network("lan")
    srv = simulator.network("srv")
    client_machine = simulator.machine(lan, "client-m")
    m1 = simulator.machine(srv, "m1")
    m2 = simulator.machine(srv, "m2")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("svc")
    files = [tree.mkfile(f"svc/f{i}") for i in range(2)]
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    placement.place_replicated(tree.directory("svc"), m1, m2)
    client = simulator.spawn(client_machine, "client")
    context = ProcessContext(tree.root)
    policy = RetryPolicy(max_attempts=2, base_backoff=0.1,
                         max_backoff=0.4, jitter=jitter) if retry else None
    resolver = DistributedResolver(
        simulator, placement, cache_policy=cache_policy, cache_ttl=20.0,
        retry_policy=policy, serve_stale=serve_stale,
        breaker_threshold=2, breaker_cooldown=5.0)
    return {"simulator": simulator, "resolver": resolver,
            "client": client, "context": context, "tree": tree,
            "files": files, "placement": placement,
            "machines": (client_machine, m1, m2),
            "networks": (lan, srv),
            "injector": FailureInjector(simulator)}


class TestFailoverResolution:
    def test_crashed_primary_fails_over_to_secondary(self):
        world = make_world()
        resolver = world["resolver"]
        _c, m1, _m2 = world["machines"]
        entity, warm = resolver.resolve(world["client"], world["context"],
                                        "/svc/f0")
        assert entity is world["files"][0] and not warm.failed
        world["injector"].crash_machine(m1)
        entity, cost = resolver.resolve(world["client"], world["context"],
                                        "/svc/f0")
        assert entity is world["files"][0]
        assert not cost.failed
        assert cost.failovers == 1
        assert cost.retries >= 1  # the primary was retried first
        assert not cost.weak and cost.coherence == "coherent"

    def test_fail_fast_resolver_fails_and_is_never_weak(self):
        world = make_world(retry=False)
        resolver = world["resolver"]
        _c, m1, _m2 = world["machines"]
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        world["injector"].crash_machine(m1)
        _entity, cost = resolver.resolve(world["client"],
                                         world["context"], "/svc/f0")
        assert cost.failed
        assert cost.failovers == 0 and cost.retries == 0
        assert not cost.weak

    def test_cold_crashed_replica_is_skipped_without_messages(self):
        # m1 goes down before any resolution ever spawned its server:
        # there is no process to address, so failover skips it for free.
        world = make_world()
        _c, m1, _m2 = world["machines"]
        world["injector"].crash_machine(m1)
        entity, cost = world["resolver"].resolve(
            world["client"], world["context"], "/svc/f0")
        assert entity is world["files"][0]
        assert cost.failovers == 1 and cost.retries == 0
        assert cost.failed_hops == 0

    def test_crash_restart_resolve_roundtrip(self):
        # Satellite (a): crash → restart → resolve, with the respawn
        # hook reviving the directory server.
        world = make_world()
        resolver = world["resolver"]
        injector = world["injector"]
        _c, m1, m2 = world["machines"]
        injector.on_restart(resolver.handle_restart)
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        injector.crash_machine(m1)
        assert not resolver.server_for(m1).alive
        entity, down = resolver.resolve(world["client"],
                                        world["context"], "/svc/f0")
        assert entity is world["files"][0] and down.failovers == 1
        injector.restart_machine(m1)
        assert resolver.server_for(m1).alive
        # Fresh server process ⇒ fresh (closed) circuit breaker.
        assert resolver.breaker_of(m1).state is BreakerState.CLOSED
        entity, back = resolver.resolve(world["client"],
                                        world["context"], "/svc/f1")
        assert entity is world["files"][1]
        assert not back.failed and back.failovers == 0

    def test_breaker_opens_then_recovers_after_cooldown(self):
        world = make_world(jitter=0.0)
        resolver = world["resolver"]
        simulator = world["simulator"]
        injector = world["injector"]
        lan, srv = world["networks"]
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        injector.flaky_link(lan, srv, drop_prob=1.0)
        _e, cost = resolver.resolve(world["client"], world["context"],
                                    "/svc/f0")
        # Every attempt against both replicas dropped: the walk failed
        # and both breakers tripped (threshold 2 == max_attempts).
        assert cost.failed
        _c, m1, m2 = world["machines"]
        assert resolver.breaker_of(m1).state is BreakerState.OPEN
        assert resolver.breaker_of(m2).state is BreakerState.OPEN
        # While open, the replicas are skipped without any messages.
        _e, skipped = resolver.resolve(world["client"], world["context"],
                                       "/svc/f0")
        assert skipped.failed and skipped.messages == 0
        injector.steady_link(lan, srv)
        simulator.run(until=simulator.clock.now + 5.0)  # cooldown
        entity, cost = resolver.resolve(world["client"],
                                        world["context"], "/svc/f0")
        assert entity is world["files"][0] and not cost.failed
        assert resolver.breaker_of(m1).state is BreakerState.CLOSED

    def test_failover_is_deterministic_per_seed(self):
        def signature(seed):
            world = make_world(seed=seed)
            resolver = world["resolver"]
            resolver.resolve(world["client"], world["context"], "/svc/f0")
            world["injector"].flaky_link(*world["networks"],
                                         drop_prob=0.5, extra_latency=1.0)
            costs = [resolver.resolve(world["client"], world["context"],
                                      f"/svc/f{i % 2}")[1]
                     for i in range(6)]
            return [(c.messages, c.retries, c.failovers, c.failed_hops,
                     round(c.latency, 9)) for c in costs]

        assert signature(3) == signature(3)
        assert signature(3) != signature(4)  # the faults really bite


class TestDegradedReads:
    def test_partition_served_from_stale_cache_tagged_weak(self):
        world = make_world(cache_policy=CachePolicy.TTL, serve_stale=True)
        resolver = world["resolver"]
        lan, srv = world["networks"]
        entity, warm = resolver.resolve(world["client"], world["context"],
                                        "/svc/f0")
        assert not warm.weak
        world["injector"].partition(lan, srv)
        entity, cost = resolver.resolve(world["client"], world["context"],
                                        "/svc/f0")
        assert entity is world["files"][0]
        assert not cost.failed
        assert cost.weak and cost.stale_steps >= 1
        assert cost.coherence == "weak"
        assert resolver.cache_stats()["stale_hits"] >= 1

    def test_degraded_answers_stay_weak_on_repeat(self):
        # A degraded walk must not memoize its prefixes as coherent:
        # the next resolution through the outage is weak again.
        world = make_world(cache_policy=CachePolicy.TTL, serve_stale=True)
        resolver = world["resolver"]
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        world["injector"].partition(*world["networks"])
        for _ in range(2):
            _e, cost = resolver.resolve(world["client"],
                                        world["context"], "/svc/f0")
            assert cost.weak and not cost.failed

    def test_cold_cache_cannot_serve_stale(self):
        world = make_world(cache_policy=CachePolicy.TTL, serve_stale=True)
        world["injector"].partition(*world["networks"])
        _e, cost = world["resolver"].resolve(
            world["client"], world["context"], "/svc/f0")
        assert cost.failed
        assert not cost.weak and cost.stale_steps == 0

    def test_without_gate_partition_fails_the_walk(self):
        world = make_world(cache_policy=CachePolicy.TTL, serve_stale=False)
        resolver = world["resolver"]
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        world["injector"].partition(*world["networks"])
        _e, cost = resolver.resolve(world["client"], world["context"],
                                    "/svc/f0")
        assert cost.failed and not cost.weak

    def test_heal_restores_coherent_answers(self):
        world = make_world(cache_policy=CachePolicy.TTL, serve_stale=True)
        resolver = world["resolver"]
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        world["injector"].partition(*world["networks"])
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        world["injector"].heal(*world["networks"])
        # The breakers tripped during the outage; wait out their
        # cooldown (healing the network does not close them).
        simulator = world["simulator"]
        simulator.run(until=simulator.clock.now + 5.0)
        _e, cost = resolver.resolve(world["client"], world["context"],
                                    "/svc/f1")
        assert not cost.failed and not cost.weak


class TestReplicationAndAntiEntropy:
    def test_rebind_propagates_to_live_secondary(self):
        world = make_world()
        resolver = world["resolver"]
        simulator = world["simulator"]
        svc = world["tree"].directory("svc")
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        replacement = ObjectEntity("f0-v2")
        simulator.sigma.add(replacement)
        resolver.rebind(svc, "f0", replacement)
        assert resolver.replication_messages == 1
        assert world["placement"].stale_count() == 0
        entity, _cost = resolver.resolve(world["client"],
                                         world["context"], "/svc/f0")
        assert entity is replacement

    def test_unreachable_secondary_marked_stale_and_skipped(self):
        world = make_world()
        resolver = world["resolver"]
        placement = world["placement"]
        injector = world["injector"]
        _c, m1, m2 = world["machines"]
        svc = world["tree"].directory("svc")
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        injector.crash_machine(m2)
        replacement = ObjectEntity("f0-v2")
        world["simulator"].sigma.add(replacement)
        resolver.rebind(svc, "f0", replacement)
        assert placement.is_stale(svc, m2)
        # The stale secondary must not serve reads: with the primary
        # also down and no stale-serve gate, the walk fails rather
        # than failing over to pre-write state.
        injector.restart_machine(m2)  # no hooks: still stale
        injector.crash_machine(m1)
        _e, cost = resolver.resolve(world["client"], world["context"],
                                    "/svc/f0")
        assert cost.failed

    def test_restart_runs_anti_entropy_and_clears_the_mark(self):
        world = make_world()
        resolver = world["resolver"]
        placement = world["placement"]
        injector = world["injector"]
        _c, _m1, m2 = world["machines"]
        svc = world["tree"].directory("svc")
        injector.on_restart(resolver.handle_restart)
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        injector.crash_machine(m2)
        replacement = ObjectEntity("f0-v2")
        world["simulator"].sigma.add(replacement)
        resolver.rebind(svc, "f0", replacement)
        assert placement.is_stale(svc, m2)
        injector.restart_machine(m2)
        assert not placement.is_stale(svc, m2)
        assert resolver.anti_entropy_messages == 1

    def test_anti_entropy_with_dead_primary_stays_stale(self):
        world = make_world()
        resolver = world["resolver"]
        placement = world["placement"]
        injector = world["injector"]
        _c, m1, m2 = world["machines"]
        svc = world["tree"].directory("svc")
        injector.on_restart(resolver.handle_restart)
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        injector.crash_machine(m2)
        resolver.rebind(svc, "f0", ObjectEntity("f0-v2"))
        injector.crash_machine(m1)
        injector.restart_machine(m2)  # primary down: sync impossible
        assert placement.is_stale(svc, m2)
        injector.restart_machine(m1)
        injector.crash_machine(m2)
        injector.restart_machine(m2)  # primary back: sync succeeds
        assert not placement.is_stale(svc, m2)

    def test_dead_primary_marks_every_secondary_stale(self):
        world = make_world()
        resolver = world["resolver"]
        injector = world["injector"]
        _c, m1, m2 = world["machines"]
        svc = world["tree"].directory("svc")
        resolver.resolve(world["client"], world["context"], "/svc/f0")
        injector.crash_machine(m1)
        resolver.rebind(svc, "f0", ObjectEntity("f0-v2"))
        assert world["placement"].is_stale(svc, m2)
        assert resolver.replication_messages == 0

    def test_semantics_preserved_through_failover(self):
        world = make_world()
        resolver = world["resolver"]
        world["resolver"].resolve(world["client"], world["context"],
                                  "/svc/f0")
        world["injector"].crash_machine(world["machines"][1])
        for name_ in ("/svc/f0", "/svc/f1", "/svc/zzz", "/zzz"):
            entity, cost = resolver.resolve(world["client"],
                                            world["context"], name_)
            assert entity is local_resolve(world["context"], name_), name_
            assert not cost.failed
