"""Determinism goldens for shard splitting and migration.

Live splits are placement mutations driven by observed load, with
migrations travelling as simulated messages — so they must be exactly
as deterministic as any other kernel workload: for a fixed seed, the
same splits at the same points, the same migration traffic, and a
byte-identical trace log.  These tests pin sha256 digests of a
canonical split-and-migrate scenario (including an aborted split onto
a crashed machine) and of the A10 experiment's full result dict at
reduced scale, across seeds 0/1/7/42.

Regenerate (only when a change is *intended* to alter observable
behaviour)::

    PYTHONPATH=src python tests/sim/test_sharding_golden.py
"""

from __future__ import annotations

import hashlib
import json
import random

import pytest

from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver
from repro.nameservice.sharding import ShardManager
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.workloads.zipf import ZipfSampler, build_zipf_namespace

SEEDS = (0, 1, 7, 42)

#: sha256 of the canonical split scenario's formatted trace log.
TRACE_GOLDENS = {
    0: "922a609510d40aa830472410a4241052eea60e37b5baff1aa8af8907fd5a30c4",
    1: "354395eab007f5da8f199eaeae5fdc4c48485674ff879a51fb541a66ff4fec57",
    7: "c7122d3a7dcd670b917b3abe7ac1a46f42d9288d89deca5d022109d69d5d4b07",
    42: "c239add344287e0a0ed7f1fb4224d58ecba3458f1e7ee0f0b007a31912840fb3",
}

#: sha256 of A10's full ``ExperimentResult.to_dict()`` (reduced scale).
EXPERIMENT_GOLDENS = {
    0: "f61fb49d5035a3bd75e7a0af1c4700ef21567ca4fc100fa3f6f4dab00d2f971a",
    1: "d8402009bfaa9f44bd8e5079295512b0ccf5fafa9552d745f24b07e38e251461",
    7: "26d40c97ae07137c40f48ac3471defbf5960c250902b94cf42d9ed37661edd4c",
    42: "160d372730df68cbbc0b5cc5c48abf0890a5628c9d7076adf0bc4e1d943d20a4",
}


def run_split_scenario(seed: int) -> Simulator:
    """A fixed sharding workload touching every migration path: a
    Zipf run hot enough to trigger several live splits, a rebind into
    a shard, and a split aborted against a crashed target."""
    simulator = Simulator(seed=seed)
    network = simulator.network("lan")
    pool = [simulator.machine(network, f"s{i}") for i in range(4)]
    client_m = simulator.machine(network, "client-m")
    tree = NamingTree("root", sigma=simulator.sigma)
    namespace = build_zipf_namespace(tree, "hot", count=3000,
                                     distinct=64)
    placement = DirectoryPlacement()
    placement.place(tree.root, client_m)
    shard_map = placement.place_sharded(namespace.directory, pool[0])
    client = simulator.spawn(client_m, "client")
    resolver = DistributedResolver(simulator, placement)
    resolver.shard_manager = ShardManager(
        resolver, pool=pool, split_fraction=0.3,
        check_every=100, min_window=50)
    context = ProcessContext(tree.root)
    sampler = ZipfSampler(3000, rng=random.Random(seed))
    for rank in sampler.sample_many(800):
        resolver.resolve(client, context,
                         "/hot/" + namespace.names[rank])
    resolver.rebind(namespace.directory, "fresh",
                    namespace.shared_leaf)
    # One split against a crashed target: commit-last must abort it
    # without disturbing the map (and the abort is itself traced).
    victim = pool[3]
    FailureInjector(simulator).crash_machine(victim)
    widest = max(shard_map.shards, key=lambda s: (s.span, -s.lo))
    committed = resolver.split_shard(namespace.directory, widest,
                                     victim)
    assert not committed
    assert shard_map.is_partition()
    assert resolver.shard_splits > 0
    return simulator


def trace_digest(simulator: Simulator) -> str:
    lines = [f"{entry.time:g}|{entry.kind}|{entry.detail}"
             for entry in simulator.trace]
    lines.append(f"sent={simulator.messages_sent}"
                 f"|delivered={simulator.messages_delivered}"
                 f"|dropped={simulator.messages_dropped}"
                 f"|t={simulator.clock.now:g}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def run_a10_reduced(seed: int):
    from repro.bench.experiments_sharding import run_a10_sharding
    return run_a10_sharding(seed=seed, names=20_000,
                            resolutions=3_000)


def experiment_digest(result) -> str:
    payload = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestSplitTraceGoldens:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_trace_log_matches_pinned_digest(self, seed):
        assert trace_digest(run_split_scenario(seed)) == \
            TRACE_GOLDENS[seed]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_repeated_runs_are_bit_identical(self, seed):
        first = run_split_scenario(seed)
        second = run_split_scenario(seed)
        assert [entry.detail for entry in first.trace] == \
            [entry.detail for entry in second.trace]
        assert trace_digest(first) == trace_digest(second)


class TestA10Goldens:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_a10_matches_pinned_digest(self, seed):
        result = run_a10_reduced(seed)
        assert result.all_checks_pass(), result.failed_checks()
        assert experiment_digest(result) == EXPERIMENT_GOLDENS[seed]


def _regenerate() -> None:  # pragma: no cover - maintenance helper
    print("TRACE_GOLDENS = {")
    for seed in SEEDS:
        print(f'    {seed}: "{trace_digest(run_split_scenario(seed))}",')
    print("}")
    print("EXPERIMENT_GOLDENS = {")
    for seed in SEEDS:
        print(f'    {seed}: "{experiment_digest(run_a10_reduced(seed))}",')
    print("}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
