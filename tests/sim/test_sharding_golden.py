"""Determinism goldens for shard splitting and migration.

Live splits are placement mutations driven by observed load, with
migrations travelling as simulated messages — so they must be exactly
as deterministic as any other kernel workload: for a fixed seed, the
same splits at the same points, the same migration traffic, and a
byte-identical trace log.  These tests pin sha256 digests of a
canonical split-and-migrate scenario (including an aborted split onto
a crashed machine) and of the A10 experiment's full result dict at
reduced scale, across seeds 0/1/7/42.

Regenerate (only when a change is *intended* to alter observable
behaviour)::

    PYTHONPATH=src python tests/sim/test_sharding_golden.py
"""

from __future__ import annotations

import hashlib
import json
import random

import pytest

from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver
from repro.nameservice.sharding import ShardManager
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.workloads.zipf import ZipfSampler, build_zipf_namespace

SEEDS = (0, 1, 7, 42)

#: sha256 of the canonical split scenario's formatted trace log.
TRACE_GOLDENS = {
    0: "4b80051d6b8c41865314a260139d6653d0721b1b555075af7b70b40775c0d2cc",
    1: "a41b3a4ee27dc9f8eccd248c2d4cd3cd8b63c08dbe73c60c42cd03052ad48e15",
    7: "2debda8461e8bd4e9d5e92d970c9b25c0ec2f93079629b3336629118307a935a",
    42: "0b5b6ae2ca8b56b00dc229f49589ed339cec6e77364682ac75597603b52ced04",
}

#: sha256 of A10's full ``ExperimentResult.to_dict()`` (reduced scale).
EXPERIMENT_GOLDENS = {
    0: "db768d30b727a93a2f607b1c6d01b856b78edcd80335f397896b9d64047a1a9d",
    1: "114db4f87d48bd03851525a58b0ee800bc58c44f875877b82c0061c2e26fb4f5",
    7: "d9b0ef279612d30eab606948017258c9f92436ee7f620dd7cbf0c55a5d08c50e",
    42: "cc90f2c9b14b741c3b70bdd22e593954caefdc5e01adc8b6c63d5a67df023996",
}


def run_split_scenario(seed: int) -> Simulator:
    """A fixed sharding workload touching every migration path: a
    Zipf run hot enough to trigger several live splits, a rebind into
    a shard, and a split aborted against a crashed target."""
    simulator = Simulator(seed=seed)
    network = simulator.network("lan")
    pool = [simulator.machine(network, f"s{i}") for i in range(4)]
    client_m = simulator.machine(network, "client-m")
    tree = NamingTree("root", sigma=simulator.sigma)
    namespace = build_zipf_namespace(tree, "hot", count=3000,
                                     distinct=64)
    placement = DirectoryPlacement()
    placement.place(tree.root, client_m)
    shard_map = placement.place_sharded(namespace.directory, pool[0])
    client = simulator.spawn(client_m, "client")
    resolver = DistributedResolver(simulator, placement)
    resolver.shard_manager = ShardManager(
        resolver, pool=pool, split_fraction=0.3,
        check_every=100, min_window=50)
    context = ProcessContext(tree.root)
    sampler = ZipfSampler(3000, rng=random.Random(seed))
    for rank in sampler.sample_many(800):
        resolver.resolve(client, context,
                         "/hot/" + namespace.names[rank])
    resolver.rebind(namespace.directory, "fresh",
                    namespace.shared_leaf)
    # One split against a crashed target: commit-last must abort it
    # without disturbing the map (and the abort is itself traced).
    victim = pool[3]
    FailureInjector(simulator).crash_machine(victim)
    widest = max(shard_map.shards, key=lambda s: (s.span, -s.lo))
    committed = resolver.split_shard(namespace.directory, widest,
                                     victim)
    assert not committed
    assert shard_map.is_partition()
    assert resolver.shard_splits > 0
    return simulator


def trace_digest(simulator: Simulator) -> str:
    lines = [f"{entry.time:g}|{entry.kind}|{entry.detail}"
             for entry in simulator.trace]
    lines.append(f"sent={simulator.messages_sent}"
                 f"|delivered={simulator.messages_delivered}"
                 f"|dropped={simulator.messages_dropped}"
                 f"|t={simulator.clock.now:g}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def run_a10_reduced(seed: int):
    from repro.bench.experiments_sharding import run_a10_sharding
    return run_a10_sharding(seed=seed, names=20_000,
                            resolutions=3_000)


def experiment_digest(result) -> str:
    payload = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestSplitTraceGoldens:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_trace_log_matches_pinned_digest(self, seed):
        assert trace_digest(run_split_scenario(seed)) == \
            TRACE_GOLDENS[seed]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_repeated_runs_are_bit_identical(self, seed):
        first = run_split_scenario(seed)
        second = run_split_scenario(seed)
        assert [entry.detail for entry in first.trace] == \
            [entry.detail for entry in second.trace]
        assert trace_digest(first) == trace_digest(second)


class TestA10Goldens:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_a10_matches_pinned_digest(self, seed):
        result = run_a10_reduced(seed)
        assert result.all_checks_pass(), result.failed_checks()
        assert experiment_digest(result) == EXPERIMENT_GOLDENS[seed]


def _regenerate() -> None:  # pragma: no cover - maintenance helper
    print("TRACE_GOLDENS = {")
    for seed in SEEDS:
        print(f'    {seed}: "{trace_digest(run_split_scenario(seed))}",')
    print("}")
    print("EXPERIMENT_GOLDENS = {")
    for seed in SEEDS:
        print(f'    {seed}: "{experiment_digest(run_a10_reduced(seed))}",')
    print("}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
