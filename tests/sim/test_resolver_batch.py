"""Tests for prefix-cached, batched distributed resolution.

The load-bearing property: `resolve_many` is entity-for-entity
identical to N sequential `resolve` calls — and both match the local
section-2 recursion — across both interaction styles, all three cache
policies, and with a rebind injected mid-batch (where TTL's staleness
window is asserted exactly).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.context import context_object
from repro.model.entities import ObjectEntity
from repro.model.names import ROOT_NAME
from repro.model.resolution import resolve as local_resolve
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.cache import CachePolicy, PrefixCache
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import (
    DistributedResolver,
    ResolutionCost,
    ResolutionStyle,
    check_semantics_preserved,
)
from repro.sim.kernel import Simulator

TTL = 30.0

#: Names that exercise every walk outcome: deep hits, directory hits,
#: misses at each depth, stepping "through" a file, relative names,
#: the bare root, and the empty name.
NAME_POOL = [
    "/a/b/c/leaf", "/a/b/c", "/a/b", "/a", "/", "/a/b/c/zzz",
    "/a/zzz/x", "/zzz", "a/b/c/leaf", "a/b", "a/zzz", "zzz",
    "/a/f1", "/a/b/f2", "/a/f1/too-deep", "/x/y/g", "x/y", "",
]


def make_deployment(policy=CachePolicy.NONE, ttl=TTL):
    """Client machine + three server machines; /a on the client's
    machine, /a/b and /a/b/c on their own servers, a second branch
    /x/y on server1, and a pre-placed alternate `c` directory (same
    leaf name, different entity) so rebinds don't disturb placement."""
    simulator = Simulator(seed=0)
    network = simulator.network("lan")
    m_client = simulator.machine(network, "client-m")
    m_b = simulator.machine(network, "b-m")
    m_c = simulator.machine(network, "c-m")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("a/b/c")
    tree.mkdir("x/y")
    leaf = tree.mkfile("a/b/c/leaf")
    tree.mkfile("a/f1")
    tree.mkfile("a/b/f2")
    tree.mkfile("x/y/g")
    placement = DirectoryPlacement()
    placement.place(tree.root, m_client)
    placement.place(tree.directory("a"), m_client)
    placement.place(tree.directory("a/b"), m_b)
    placement.place(tree.directory("a/b/c"), m_c)
    placement.place(tree.directory("x"), m_b)
    placement.place(tree.directory("x/y"), m_b)
    c_v2 = context_object("c-v2")
    simulator.sigma.add(c_v2)
    leaf_v2 = ObjectEntity("leaf-v2")
    simulator.sigma.add(leaf_v2)
    c_v2.state.bind("leaf", leaf_v2)
    placement.place(c_v2, m_c)
    client = simulator.spawn(m_client, "client")
    context = ProcessContext(tree.root)
    resolver = DistributedResolver(simulator, placement,
                                   cache_policy=policy, cache_ttl=ttl)
    return {
        "simulator": simulator, "resolver": resolver, "client": client,
        "context": context, "tree": tree, "leaf": leaf,
        "c_v2": c_v2, "leaf_v2": leaf_v2, "placement": placement,
    }


STYLES = list(ResolutionStyle)
POLICIES = list(CachePolicy)


class TestBatchEquivalence:
    """resolve_many ≡ N × resolve ≡ the local section-2 recursion."""

    @pytest.mark.parametrize("style", STYLES)
    @pytest.mark.parametrize("policy", POLICIES)
    @given(names=st.lists(st.sampled_from(NAME_POOL), max_size=12))
    @settings(max_examples=15, deadline=None)
    def test_batch_matches_local_and_sequential(self, style, policy,
                                                names):
        batch_world = make_deployment(policy)
        results = batch_world["resolver"].resolve_many(
            batch_world["client"], batch_world["context"], names, style)
        assert len(results) == len(names)
        sequential_world = make_deployment(policy)
        for name_, (entity, cost) in zip(names, results):
            assert entity is local_resolve(batch_world["context"], name_)
            sequential, _ = sequential_world["resolver"].resolve(
                sequential_world["client"], sequential_world["context"],
                name_, style)
            # The twin world resolves the same way (entity identity is
            # per-world; labels + definedness pin the correspondence).
            assert sequential is local_resolve(
                sequential_world["context"], name_)
            assert entity.is_defined() == sequential.is_defined()
            assert entity.label == sequential.label
            assert cost.steps - cost.cached_steps >= 0

    @pytest.mark.parametrize("style", STYLES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_warm_cache_stays_equivalent(self, style, policy):
        world = make_deployment(policy)
        for _round in range(3):  # later rounds hit the prefix cache
            results = world["resolver"].resolve_many(
                world["client"], world["context"], NAME_POOL, style)
            for name_, (entity, _cost) in zip(NAME_POOL, results):
                assert entity is local_resolve(world["context"], name_)

    def test_empty_batch(self):
        world = make_deployment()
        assert world["resolver"].resolve_many(
            world["client"], world["context"], []) == []

    def test_results_are_in_input_order(self):
        world = make_deployment()
        names = ["/a/b/c/leaf", "/zzz", "/a/b", "/a/b/c/leaf"]
        results = world["resolver"].resolve_many(
            world["client"], world["context"], names)
        assert results[0][0] is world["leaf"]
        assert not results[1][0].is_defined()
        assert results[3][0] is world["leaf"]


class TestBatchAmortization:
    def test_batch_dedupes_shared_prefix_messages(self):
        """The whole point: a hot batch pays ≥5× fewer messages."""
        names = ["/a/b/c/leaf"] * 10 + ["/a/b/f2"] * 10
        sequential_world = make_deployment(CachePolicy.NONE)
        sequential_costs = [
            sequential_world["resolver"].resolve(
                sequential_world["client"], sequential_world["context"],
                name_)[1]
            for name_ in names]
        batch_world = make_deployment(CachePolicy.NONE)
        batch_costs = [cost for _entity, cost in
                       batch_world["resolver"].resolve_many(
                           batch_world["client"], batch_world["context"],
                           names)]
        sequential_total = ResolutionCost.merge(sequential_costs)
        batch_total = sum(batch_costs)
        assert batch_total.messages * 5 <= sequential_total.messages
        assert batch_total.cached_steps > 0

    def test_prefix_cache_amortizes_across_calls(self):
        world = make_deployment(CachePolicy.TTL, ttl=1000.0)
        _, cold = world["resolver"].resolve(
            world["client"], world["context"], "/a/b/c/leaf")
        _, warm = world["resolver"].resolve(
            world["client"], world["context"], "/a/b/c/leaf")
        assert warm.messages < cold.messages
        assert warm.cached_steps == 4  # root, a, b, c all skipped
        assert world["resolver"].cache_stats()["hits"] == 1

    def test_policy_none_disables_the_prefix_cache(self):
        world = make_deployment(CachePolicy.NONE)
        _, cold = world["resolver"].resolve(
            world["client"], world["context"], "/a/b/c/leaf")
        _, again = world["resolver"].resolve(
            world["client"], world["context"], "/a/b/c/leaf")
        assert again.messages == cold.messages
        assert again.cached_steps == 0

    def test_cost_add_and_merge_agree(self):
        world = make_deployment()
        costs = [cost for _entity, cost in world["resolver"].resolve_many(
            world["client"], world["context"], NAME_POOL)]
        total_sum = sum(costs)
        total_merge = ResolutionCost.merge(costs)
        assert total_sum.messages == total_merge.messages
        assert total_sum.steps == total_merge.steps
        assert total_sum.latency == total_merge.latency
        assert total_sum.servers_touched == total_merge.servers_touched
        assert "cached=" in str(total_merge)


class TestRebindCoherence:
    @pytest.mark.parametrize("style", STYLES)
    def test_invalidate_rebind_mid_batch(self, style):
        """A rebind that fires *during* a batch (from the kernel's own
        event loop) invalidates cached prefixes; the next resolution
        is coherent immediately."""
        world = make_deployment(CachePolicy.INVALIDATE)
        resolver, simulator = world["resolver"], world["simulator"]
        resolver.resolve_many(world["client"], world["context"],
                              ["/a/b/c/leaf", "/a/b/f2"], style)  # warm
        simulator.schedule(
            1.5,
            lambda: resolver.rebind(world["tree"].directory("a/b"), "c",
                                    world["c_v2"]),
            note="mid-batch rebind")
        resolver.resolve_many(world["client"], world["context"],
                              NAME_POOL, style)  # pumps past the rebind
        assert resolver.invalidation_messages >= 1
        assert resolver.invalidation_latency > 0.0
        entity, _ = resolver.resolve(world["client"], world["context"],
                                     "/a/b/c/leaf", style)
        assert entity is world["leaf_v2"]
        assert check_semantics_preserved(resolver, world["client"],
                                         world["context"], "/a/b/c/leaf",
                                         style)

    def test_ttl_staleness_window_exact(self):
        """Under TTL a rebound prefix serves the old entity until — and
        only until — the entry's expiry instant."""
        world = make_deployment(CachePolicy.TTL, ttl=TTL)
        resolver, simulator = world["resolver"], world["simulator"]
        resolver.resolve(world["client"], world["context"], "/a/b/c/leaf")
        cache = resolver.prefix_cache_of(world["client"].machine)
        key = (id(world["context"]), True, (ROOT_NAME, "a", "b", "c"))
        entry = cache._entries[key]
        expires_at = entry.expires_at
        epoch = world["placement"].epoch
        assert expires_at == entry.cached_at + TTL
        resolver.rebind(world["tree"].directory("a/b"), "c",
                        world["c_v2"])
        # Inside the window: stale — the old leaf, not leaf-v2.
        entity, _ = resolver.resolve(world["client"], world["context"],
                                     "/a/b/c/leaf")
        assert entity is world["leaf"]
        assert entity is not local_resolve(world["context"], "/a/b/c/leaf")
        # The window boundary is exact: live strictly before the expiry
        # instant, dead at it.
        assert entry.live(expires_at - 1e-9, epoch)
        assert not entry.live(expires_at, epoch)
        # A resolution issued just inside the window still serves stale.
        simulator.schedule(expires_at - 0.5 - simulator.clock.now,
                           lambda: None)
        simulator.run()
        entity, _ = resolver.resolve(world["client"], world["context"],
                                     "/a/b/c/leaf")
        assert entity is world["leaf"]
        # That resolution's own hops carried the clock past the expiry
        # instant, so the very next one re-walks and is coherent.
        assert simulator.clock.now >= expires_at
        entity, _ = resolver.resolve(world["client"], world["context"],
                                     "/a/b/c/leaf")
        assert entity is world["leaf_v2"]
        assert resolver.cache_stats()["expirations"] >= 1
        assert check_semantics_preserved(resolver, world["client"],
                                         world["context"], "/a/b/c/leaf")

    def test_rebind_under_none_is_immediate(self):
        world = make_deployment(CachePolicy.NONE)
        resolver = world["resolver"]
        resolver.resolve(world["client"], world["context"], "/a/b/c/leaf")
        sent = resolver.rebind(world["tree"].directory("a/b"), "c",
                               world["c_v2"])
        assert sent == 0
        entity, _ = resolver.resolve(world["client"], world["context"],
                                     "/a/b/c/leaf")
        assert entity is world["leaf_v2"]

    def test_replacement_invalidates_cached_prefixes(self):
        """Re-placing a directory bumps the placement epoch; every
        prefix entry from the old epoch is dead (a cached walk must
        never land on the wrong server)."""
        world = make_deployment(CachePolicy.TTL, ttl=1000.0)
        resolver = world["resolver"]
        resolver.resolve(world["client"], world["context"], "/a/b/c/leaf")
        world["placement"].place(world["tree"].directory("a/b/c"),
                                 world["client"].machine)
        _, cost = resolver.resolve(world["client"], world["context"],
                                   "/a/b/c/leaf")
        assert cost.cached_steps == 0  # nothing served from cache
        assert check_semantics_preserved(resolver, world["client"],
                                         world["context"], "/a/b/c/leaf")


class TestLoadKeying:
    def test_servers_with_colliding_labels_keep_separate_counters(self):
        simulator = Simulator(seed=0)
        network = simulator.network("lan")
        # Two distinct machines that happen to share a label.
        m1 = simulator.machine(network, "twin")
        m2 = simulator.machine(network, "twin")
        m_client = simulator.machine(network, "client-m")
        tree = NamingTree("root", sigma=simulator.sigma,
                          parent_links=True)
        tree.mkdir("a/b")
        tree.mkfile("a/b/f")
        placement = DirectoryPlacement()
        placement.place(tree.root, m_client)
        placement.place(tree.directory("a"), m1)
        placement.place(tree.directory("a/b"), m2)
        client = simulator.spawn(m_client, "client")
        context = ProcessContext(tree.root)
        resolver = DistributedResolver(simulator, placement)
        resolver.resolve(client, context, "/a/b/f")
        server1 = resolver.server_for(m1)
        server2 = resolver.server_for(m2)
        assert resolver.load_of(server1) == 1
        assert resolver.load_of(server2) == 1
        # The label-keyed report merges the collision explicitly.
        assert resolver.load["dirserver@twin"] == 2
        resolver.reset_load()
        assert resolver.load == {}
        assert resolver.load_of(server1) == 0

    def test_hop_does_not_drain_unrelated_events(self):
        """The kernel fast path: a resolution hop pumps only to its own
        delivery, so far-future events stay queued."""
        world = make_deployment()
        simulator = world["simulator"]
        fired = []
        simulator.schedule(1_000.0, lambda: fired.append(True),
                           note="far future")
        world["resolver"].resolve(world["client"], world["context"],
                                  "/a/b/c/leaf")
        assert not fired
        assert len(simulator.queue) == 1
        assert simulator.clock.now < 1_000.0


class TestPrefixCacheUnit:
    def _cache(self):
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        return PrefixCache(machine)

    def test_deepest_live_prefix_wins(self):
        cache = self._cache()
        context = ProcessContext(context_object("r"))
        d1, d2 = context_object("d1"), context_object("d2")
        cache.fill(context, True, ("/", "a"), d1, (("d", 1, "a"),),
                   now=0.0, ttl=None, epoch=0)
        cache.fill(context, True, ("/", "a", "b"), d2,
                   (("d", 1, "a"), ("d", 2, "b")),
                   now=0.0, ttl=None, epoch=0)
        found = cache.lookup_longest(context, True,
                                     ["/", "a", "b", "leaf"],
                                     now=1.0, epoch=0)
        assert found is not None
        consumed, entry = found
        assert consumed == 3
        assert entry.directory is d2

    def test_expired_entry_falls_back_to_shallower(self):
        cache = self._cache()
        context = ProcessContext(context_object("r"))
        d1, d2 = context_object("d1"), context_object("d2")
        cache.fill(context, True, ("/", "a"), d1, (), now=0.0,
                   ttl=None, epoch=0)
        cache.fill(context, True, ("/", "a", "b"), d2, (), now=0.0,
                   ttl=5.0, epoch=0)
        consumed, entry = cache.lookup_longest(
            context, True, ["/", "a", "b", "leaf"], now=6.0, epoch=0)
        assert consumed == 2 and entry.directory is d1
        assert cache.expirations == 1

    def test_invalidate_through_drops_dependent_prefixes_only(self):
        cache = self._cache()
        context = ProcessContext(context_object("r"))
        d1, d2 = context_object("d1"), context_object("d2")
        dep = ("d", 7, "b")
        cache.fill(context, True, ("/", "a", "b"), d1, (dep,),
                   now=0.0, ttl=None, epoch=0)
        cache.fill(context, True, ("/", "x"), d2, (("d", 9, "x"),),
                   now=0.0, ttl=None, epoch=0)
        assert cache.invalidate_through(dep) == 1
        assert len(cache) == 1
        assert cache.lookup_longest(context, True, ["/", "x", "g"],
                                    now=0.0, epoch=0) is not None

    def test_epoch_mismatch_is_dead(self):
        cache = self._cache()
        context = ProcessContext(context_object("r"))
        cache.fill(context, True, ("/", "a"), context_object("d"), (),
                   now=0.0, ttl=None, epoch=3)
        assert cache.lookup_longest(context, True, ["/", "a", "f"],
                                    now=0.0, epoch=4) is None
