"""Tests for cached bindings and coherence-maintenance policies."""

from __future__ import annotations

import pytest

from repro.errors import SchemeError
from repro.model.context import context_object
from repro.model.entities import ObjectEntity
from repro.nameservice.cache import (
    BindingCache,
    CachePolicy,
    CachingDirectoryService,
)
from repro.nameservice.placement import DirectoryPlacement
from repro.sim.kernel import Simulator


@pytest.fixture
def deployment():
    """A registry directory hosted remotely from two client machines."""
    simulator = Simulator(seed=0)
    network = simulator.network("lan")
    server = simulator.machine(network, "server")
    clients = [simulator.machine(network, f"c{i}") for i in range(2)]
    directory = context_object("registry")
    simulator.sigma.add(directory)
    v1 = ObjectEntity("svc-v1")
    simulator.sigma.add(v1)
    directory.state.bind("svc", v1)
    placement = DirectoryPlacement()
    placement.place(directory, server)
    return simulator, server, clients, directory, v1, placement


def service_for(deployment, policy, ttl=10.0):
    simulator, _, _, _, _, placement = deployment
    return CachingDirectoryService(simulator, placement, policy=policy,
                                   ttl=ttl)


class TestBindingCache:
    def test_fill_and_lookup(self):
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        cache = BindingCache(machine)
        directory = context_object("d")
        entity = ObjectEntity("e")
        cache.fill(directory, "n", entity, now=0.0, ttl=5.0)
        assert cache.lookup(directory, "n", now=3.0) is entity
        assert cache.hits == 1

    def test_expiry(self):
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        cache = BindingCache(machine)
        directory = context_object("d")
        cache.fill(directory, "n", ObjectEntity("e"), now=0.0, ttl=5.0)
        assert cache.lookup(directory, "n", now=6.0) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_no_ttl_never_expires(self):
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        cache = BindingCache(machine)
        directory = context_object("d")
        entity = ObjectEntity("e")
        cache.fill(directory, "n", entity, now=0.0, ttl=None)
        assert cache.lookup(directory, "n", now=1e9) is entity

    def test_invalidate(self):
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        cache = BindingCache(machine)
        directory = context_object("d")
        cache.fill(directory, "n", ObjectEntity("e"), now=0.0, ttl=None)
        cache.invalidate(directory, "n")
        assert cache.lookup(directory, "n", now=0.0) is None
        assert cache.invalidations == 1
        cache.invalidate(directory, "n")  # idempotent
        assert cache.invalidations == 1


class TestNoCachePolicy:
    def test_every_remote_lookup_costs_a_round_trip(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.NONE)
        for _ in range(3):
            assert service.lookup(clients[0], directory, "svc") is v1
        assert service.remote_reads == 3

    def test_local_directory_reads_are_free(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.NONE)
        assert service.lookup(server, directory, "svc") is v1
        assert service.remote_reads == 0

    def test_rebind_is_immediately_visible(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.NONE)
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        assert service.lookup(clients[0], directory, "svc") is v2

    def test_unplaced_directory_read_directly(self, deployment):
        simulator, server, clients, *_ = deployment
        service = service_for(deployment, CachePolicy.NONE)
        loose = context_object("loose")
        entity = ObjectEntity("x")
        loose.state.bind("x", entity)
        assert service.lookup(clients[0], loose, "x") is entity
        assert service.remote_reads == 0

    def test_non_directory_rejected(self, deployment):
        simulator, server, clients, *_ = deployment
        service = service_for(deployment, CachePolicy.NONE)
        with pytest.raises(SchemeError):
            service.lookup(clients[0], ObjectEntity("file"), "x")


class TestTTLPolicy:
    def test_second_lookup_hits_cache(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.TTL, ttl=100.0)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[0], directory, "svc")
        assert service.remote_reads == 1
        assert service.stats()["hits"] == 1

    def test_stale_read_inside_window(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.TTL, ttl=100.0)
        service.lookup(clients[0], directory, "svc")
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        # Stale: the cached v1 is still served — incoherence.
        assert service.lookup(clients[0], directory, "svc") is v1

    def test_fresh_after_expiry(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.TTL, ttl=3.0)
        service.lookup(clients[0], directory, "svc")
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        assert service.lookup(clients[0], directory, "svc") is v2

    def test_caches_are_per_machine(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.TTL, ttl=100.0)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[1], directory, "svc")
        assert service.remote_reads == 2


class TestInvalidatePolicy:
    def test_never_stale_after_rebind(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[1], directory, "svc")
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        assert service.lookup(clients[0], directory, "svc") is v2
        assert service.lookup(clients[1], directory, "svc") is v2

    def test_invalidation_message_per_cached_copy(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[1], directory, "svc")
        service.rebind(directory, "svc", ObjectEntity("svc-v2"))
        assert service.invalidation_messages == 2

    def test_no_message_for_uncached_binding(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.rebind(directory, "svc", ObjectEntity("svc-v2"))
        assert service.invalidation_messages == 0

    def test_cache_refills_after_invalidation(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        service.lookup(clients[0], directory, "svc")   # refill
        reads_before = service.remote_reads
        assert service.lookup(clients[0], directory, "svc") is v2
        assert service.remote_reads == reads_before   # hit

    def test_invalidations_are_batched_and_latency_counted(self,
                                                           deployment):
        """The fan-out to N holders is sent as one batch and drained
        once: the rebind pays one latency unit of virtual time, not N,
        and the wait is accumulated in `invalidation_latency`."""
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[1], directory, "svc")
        assert service.stats()["invalidation_latency"] == 0.0
        before = simulator.clock.now
        service.rebind(directory, "svc", ObjectEntity("svc-v2"))
        elapsed = simulator.clock.now - before
        assert service.invalidation_messages == 2
        assert service.invalidation_latency == elapsed == 1.0

    def test_rebind_drain_leaves_unrelated_events_queued(self,
                                                         deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        fired = []
        simulator.schedule(1_000.0, lambda: fired.append(True))
        service.rebind(directory, "svc", ObjectEntity("svc-v2"))
        assert service.invalidation_messages == 1
        assert not fired
        assert len(simulator.queue) == 1

    def test_stats_aggregate(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[0], directory, "svc")
        stats = service.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["remote_reads"] == 1
