"""Tests for cached bindings and coherence-maintenance policies."""

from __future__ import annotations

import pytest

from repro.errors import SchemeError
from repro.model.context import context_object
from repro.model.entities import ObjectEntity
from repro.nameservice.cache import (
    BindingCache,
    CachePolicy,
    CachingDirectoryService,
    PrefixCache,
    binding_dep,
)
from repro.nameservice.placement import DirectoryPlacement
from repro.sim.kernel import Simulator


@pytest.fixture
def deployment():
    """A registry directory hosted remotely from two client machines."""
    simulator = Simulator(seed=0)
    network = simulator.network("lan")
    server = simulator.machine(network, "server")
    clients = [simulator.machine(network, f"c{i}") for i in range(2)]
    directory = context_object("registry")
    simulator.sigma.add(directory)
    v1 = ObjectEntity("svc-v1")
    simulator.sigma.add(v1)
    directory.state.bind("svc", v1)
    placement = DirectoryPlacement()
    placement.place(directory, server)
    return simulator, server, clients, directory, v1, placement


def service_for(deployment, policy, ttl=10.0):
    simulator, _, _, _, _, placement = deployment
    return CachingDirectoryService(simulator, placement, policy=policy,
                                   ttl=ttl)


class TestBindingCache:
    def test_fill_and_lookup(self):
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        cache = BindingCache(machine)
        directory = context_object("d")
        entity = ObjectEntity("e")
        cache.fill(directory, "n", entity, now=0.0, ttl=5.0)
        assert cache.lookup(directory, "n", now=3.0) is entity
        assert cache.hits == 1

    def test_expiry(self):
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        cache = BindingCache(machine)
        directory = context_object("d")
        cache.fill(directory, "n", ObjectEntity("e"), now=0.0, ttl=5.0)
        assert cache.lookup(directory, "n", now=6.0) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_no_ttl_never_expires(self):
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        cache = BindingCache(machine)
        directory = context_object("d")
        entity = ObjectEntity("e")
        cache.fill(directory, "n", entity, now=0.0, ttl=None)
        assert cache.lookup(directory, "n", now=1e9) is entity

    def test_invalidate(self):
        simulator = Simulator()
        machine = simulator.machine(simulator.network())
        cache = BindingCache(machine)
        directory = context_object("d")
        cache.fill(directory, "n", ObjectEntity("e"), now=0.0, ttl=None)
        cache.invalidate(directory, "n")
        assert cache.lookup(directory, "n", now=0.0) is None
        assert cache.invalidations == 1
        cache.invalidate(directory, "n")  # idempotent
        assert cache.invalidations == 1


class TestNoCachePolicy:
    def test_every_remote_lookup_costs_a_round_trip(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.NONE)
        for _ in range(3):
            assert service.lookup(clients[0], directory, "svc") is v1
        assert service.remote_reads == 3

    def test_local_directory_reads_are_free(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.NONE)
        assert service.lookup(server, directory, "svc") is v1
        assert service.remote_reads == 0

    def test_rebind_is_immediately_visible(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.NONE)
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        assert service.lookup(clients[0], directory, "svc") is v2

    def test_unplaced_directory_read_directly(self, deployment):
        simulator, server, clients, *_ = deployment
        service = service_for(deployment, CachePolicy.NONE)
        loose = context_object("loose")
        entity = ObjectEntity("x")
        loose.state.bind("x", entity)
        assert service.lookup(clients[0], loose, "x") is entity
        assert service.remote_reads == 0

    def test_non_directory_rejected(self, deployment):
        simulator, server, clients, *_ = deployment
        service = service_for(deployment, CachePolicy.NONE)
        with pytest.raises(SchemeError):
            service.lookup(clients[0], ObjectEntity("file"), "x")


class TestTTLPolicy:
    def test_second_lookup_hits_cache(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.TTL, ttl=100.0)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[0], directory, "svc")
        assert service.remote_reads == 1
        assert service.stats()["hits"] == 1

    def test_stale_read_inside_window(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.TTL, ttl=100.0)
        service.lookup(clients[0], directory, "svc")
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        # Stale: the cached v1 is still served — incoherence.
        assert service.lookup(clients[0], directory, "svc") is v1

    def test_fresh_after_expiry(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.TTL, ttl=3.0)
        service.lookup(clients[0], directory, "svc")
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        assert service.lookup(clients[0], directory, "svc") is v2

    def test_caches_are_per_machine(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.TTL, ttl=100.0)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[1], directory, "svc")
        assert service.remote_reads == 2


class TestInvalidatePolicy:
    def test_never_stale_after_rebind(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[1], directory, "svc")
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        assert service.lookup(clients[0], directory, "svc") is v2
        assert service.lookup(clients[1], directory, "svc") is v2

    def test_invalidation_message_per_cached_copy(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[1], directory, "svc")
        service.rebind(directory, "svc", ObjectEntity("svc-v2"))
        assert service.invalidation_messages == 2

    def test_no_message_for_uncached_binding(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.rebind(directory, "svc", ObjectEntity("svc-v2"))
        assert service.invalidation_messages == 0

    def test_cache_refills_after_invalidation(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        service.lookup(clients[0], directory, "svc")   # refill
        reads_before = service.remote_reads
        assert service.lookup(clients[0], directory, "svc") is v2
        assert service.remote_reads == reads_before   # hit

    def test_invalidations_are_batched_and_latency_counted(self,
                                                           deployment):
        """The fan-out to N holders is sent as one batch and drained
        once: the rebind pays one latency unit of virtual time, not N,
        and the wait is accumulated in `invalidation_latency`."""
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[1], directory, "svc")
        assert service.stats()["invalidation_latency"] == 0.0
        before = simulator.clock.now
        service.rebind(directory, "svc", ObjectEntity("svc-v2"))
        elapsed = simulator.clock.now - before
        assert service.invalidation_messages == 2
        assert service.invalidation_latency == elapsed == 1.0

    def test_rebind_drain_leaves_unrelated_events_queued(self,
                                                         deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        fired = []
        simulator.schedule(1_000.0, lambda: fired.append(True))
        service.rebind(directory, "svc", ObjectEntity("svc-v2"))
        assert service.invalidation_messages == 1
        assert not fired
        assert len(simulator.queue) == 1

    def test_stats_aggregate(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        service.lookup(clients[0], directory, "svc")
        stats = service.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["remote_reads"] == 1


class TestInvalidationLoss:
    """Regression: an invalidation the network drops used to vanish
    silently — the holder kept serving stale reads and nothing was
    counted.  A lost message must be counted in `invalidation_losses`
    and leave the holder registered for the next rebind's fan-out."""

    def _partitioned_world(self):
        simulator = Simulator(seed=0)
        lan = simulator.network("lan")
        srv = simulator.network("srv")
        server = simulator.machine(srv, "server")
        client = simulator.machine(lan, "c0")
        directory = context_object("registry")
        simulator.sigma.add(directory)
        v1 = ObjectEntity("svc-v1")
        simulator.sigma.add(v1)
        directory.state.bind("svc", v1)
        placement = DirectoryPlacement()
        placement.place(directory, server)
        service = CachingDirectoryService(
            simulator, placement, policy=CachePolicy.INVALIDATE)
        return simulator, lan, srv, client, directory, v1, service

    def test_lost_invalidation_is_counted_and_read_goes_stale(self):
        (simulator, lan, srv, client, directory, v1,
         service) = self._partitioned_world()
        assert service.lookup(client, directory, "svc") is v1
        simulator.partition(lan, srv)
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        assert service.invalidation_losses == 1
        assert service.stats()["invalidation_losses"] == 1
        # The message was paid for and lost — and the holder now
        # observably serves the stale binding (heal first: the cache,
        # not the partition, is what answers).
        simulator.heal(lan, srv)
        assert service.lookup(client, directory, "svc") is v1

    def test_lost_holder_is_reregistered_for_the_next_rebind(self):
        (simulator, lan, srv, client, directory, v1,
         service) = self._partitioned_world()
        service.lookup(client, directory, "svc")
        simulator.partition(lan, srv)
        service.rebind(directory, "svc", ObjectEntity("svc-v2"))
        simulator.heal(lan, srv)
        v3 = ObjectEntity("svc-v3")
        service.rebind(directory, "svc", v3)
        # The retried fan-out reaches the holder this time.
        assert service.invalidation_losses == 1
        assert service.lookup(client, directory, "svc") is v3

    def test_delivered_invalidations_count_no_losses(self, deployment):
        simulator, server, clients, directory, v1, _ = deployment
        service = service_for(deployment, CachePolicy.INVALIDATE)
        service.lookup(clients[0], directory, "svc")
        service.rebind(directory, "svc", ObjectEntity("svc-v2"))
        assert service.invalidation_losses == 0


class TestPrefixExpiryCounting:
    """Pin the `expires only once` discipline of PrefixCache's
    keep_expired / lookup_stale pair."""

    def _cache(self, keep_expired):
        simulator = Simulator(seed=0)
        machine = simulator.machine(simulator.network(), "c0")
        return PrefixCache(machine, keep_expired=keep_expired)

    def _fill(self, cache, ttl=5.0):
        root = context_object("root")
        directory = context_object("svc")
        dep = binding_dep(root, "svc")
        cache.fill(root.state, True, ("svc",), directory, (dep,),
                   now=0.0, ttl=ttl, epoch=0)
        return root.state, directory, dep

    def test_expiry_counted_once_despite_repeated_probes(self):
        cache = self._cache(keep_expired=True)
        context, directory, _dep = self._fill(cache)
        for _ in range(3):
            assert cache.lookup_longest(context, True,
                                        ["svc", "cfg"], now=9.0,
                                        epoch=0) is None
        assert cache.expirations == 1
        assert cache.misses == 3

    def test_repeated_stale_probes_serve_without_recounting_expiry(self):
        cache = self._cache(keep_expired=True)
        context, directory, _dep = self._fill(cache)
        cache.lookup_longest(context, True, ["svc", "cfg"], now=9.0,
                             epoch=0)
        for _ in range(3):
            entry = cache.lookup_stale(context, True, ("svc",))
            assert entry is not None and entry.directory is directory
        assert cache.expirations == 1
        assert cache.stale_hits == 3

    def test_without_keep_expired_entry_drops_on_first_expiry(self):
        cache = self._cache(keep_expired=False)
        context, _directory, _dep = self._fill(cache)
        assert cache.lookup_longest(context, True, ["svc", "cfg"],
                                    now=9.0, epoch=0) is None
        assert cache.expirations == 1 and len(cache) == 0
        # Later probes are plain misses on an absent entry.
        assert cache.lookup_longest(context, True, ["svc", "cfg"],
                                    now=10.0, epoch=0) is None
        assert cache.expirations == 1
        assert cache.lookup_stale(context, True, ("svc",)) is None

    def test_lookup_stale_never_resurrects_an_invalidated_prefix(self):
        cache = self._cache(keep_expired=True)
        context, _directory, dep = self._fill(cache, ttl=None)
        assert cache.invalidate_through(dep) == 1
        # An INVALIDATE drop is an observed write, not staleness.
        assert cache.lookup_stale(context, True, ("svc",)) is None

    def test_refill_rearms_the_expiry_counter(self):
        cache = self._cache(keep_expired=True)
        context, directory, dep = self._fill(cache)
        cache.lookup_longest(context, True, ["svc", "cfg"], now=9.0,
                             epoch=0)
        assert cache.expirations == 1
        cache.fill(context, True, ("svc",), directory, (dep,),
                   now=10.0, ttl=5.0, epoch=0)
        hit = cache.lookup_longest(context, True, ["svc", "cfg"],
                                   now=12.0, epoch=0)
        assert hit is not None and hit[0] == 1
        cache.lookup_longest(context, True, ["svc", "cfg"], now=20.0,
                             epoch=0)
        assert cache.expirations == 2
