"""Export-safety regression tests for lazy trace details (PR 8).

Three hazards the flight recorder depends on being fixed:

1. A formatter returning a non-string must be coerced *and cached* —
   otherwise it never matches the "already resolved" check and is
   re-invoked on every read, observable for formatters that close over
   mutable simulation state.
2. :meth:`TraceLog.to_dicts` / :meth:`TraceLog.window` must snapshot
   the entry store before resolving details: a formatter that records
   into the very log being exported (or triggers a ring-buffer
   eviction) would otherwise mutate the deque mid-iteration.
3. Exported dicts must stay stable after later evictions — the flight
   recorder hands them out long after the ring has moved on.
"""

from __future__ import annotations

from repro.sim.trace import TraceLog


class TestSingleResolution:
    def test_non_string_result_is_coerced_and_cached(self):
        state = {"epoch": 1}
        log = TraceLog()
        entry = log.record(1.0, "placement",
                           lambda: state["epoch"])  # returns an int
        first = entry.detail
        assert first == "1" and isinstance(first, str)
        # The formatter closed over live state; mutating it after the
        # first read must not change (or re-run) anything.
        state["epoch"] = 99
        assert entry.detail == "1"

    def test_formatter_runs_exactly_once_across_exports(self):
        calls = []
        log = TraceLog()
        log.record(1.0, "send", lambda: calls.append(1) or "m1 -> m2")
        log.to_dicts()
        log.window(0.0, 2.0)
        log.tail(5)[0].detail
        assert len(calls) == 1

    def test_tuple_formatter_with_non_string_result(self):
        log = TraceLog()
        entry = log.record(2.0, "queue", (len, [1, 2, 3]))
        assert entry.detail == "3"
        assert entry.detail == "3"
        assert entry._detail == "3"  # cached as the coerced string


class TestReentrantExport:
    def test_to_dicts_survives_a_formatter_that_records(self):
        log = TraceLog(max_entries=3)

        def noisy():
            # A pathological formatter: resolving it appends to the
            # log being exported, forcing an eviction mid-export.
            log.record(9.0, "side-effect", "from formatter")
            return "noisy"

        log.record(1.0, "a", "first")
        log.record(2.0, "b", noisy)
        log.record(3.0, "c", "third")
        dumped = log.to_dicts()
        # The snapshot was taken before resolution: all three entries
        # present exactly once, in order, despite the eviction.
        assert [d["kind"] for d in dumped] == ["a", "b", "c"]
        assert dumped[1]["detail"] == "noisy"
        assert log.evicted == 1

    def test_window_survives_a_formatter_that_records(self):
        log = TraceLog(max_entries=2)

        def noisy():
            log.record(8.0, "side-effect", "boom")
            return "ok"

        log.record(1.0, "a", noisy)
        log.record(2.0, "b", "plain")
        window = log.window(0.0, 5.0)
        assert [d["detail"] for d in window] == ["ok", "plain"]


class TestSnapshotStability:
    def test_window_dicts_outlive_ring_eviction(self):
        log = TraceLog(max_entries=4)
        for index in range(4):
            log.record(float(index), "probe",
                       (("entry %d").__mod__, index))
        window = log.window(0.0, 10.0)
        # Flood the ring: every original entry is evicted.
        for index in range(10, 20):
            log.record(float(index), "flood", "x")
        assert [d["detail"] for d in window] \
            == ["entry 0", "entry 1", "entry 2", "entry 3"]
        assert all(d["kind"] == "probe" for d in window)

    def test_window_bounds_are_inclusive(self):
        log = TraceLog()
        for time in (1.0, 2.0, 3.0, 4.0):
            log.record(time, "t", "x")
        assert [d["time"] for d in log.window(2.0, 3.0)] == [2.0, 3.0]
