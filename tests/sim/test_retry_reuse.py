"""RetryPolicy / CircuitBreaker reuse outside the resolver's hop path.

The lease callback fan-out (`repro.nameservice.leases.callback_fanout`)
drives the *same* RetryPolicy backoff schedule and CircuitBreaker
transition hooks the resolver's `_hop_retried` path uses — these tests
pin that the behaviour is identical for both callers."""

from __future__ import annotations

import random

from repro.nameservice.leases import Lease, callback_fanout
from repro.nameservice.retry import (
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
)

DEP = ("d", 1, "svc")


def _lease(machine_id=1):
    return Lease(dep=DEP, machine_id=machine_id, granted_at=0.0,
                 expires_at=10.0, epoch=0,
                 machine_label=f"c{machine_id}")


def _fanout(holders, deliver, *, policy, breaker=None, now=None):
    clock = {"now": 0.0}
    waits = []
    broken = []

    def wait(delay):
        waits.append(delay)
        clock["now"] += delay

    report = callback_fanout(
        holders,
        now=(now or (lambda: clock["now"])),
        rng=random.Random(0),
        deliver=deliver,
        wait=wait,
        retry_policy=policy,
        breaker_for=lambda lease: breaker,
        on_broken=broken.append)
    return report, waits, broken


class TestRetryPolicyReuse:
    def test_attempts_follow_the_policy_budget(self):
        policy = RetryPolicy(max_attempts=3, base_backoff=0.5,
                             max_backoff=2.0)
        report, waits, broken = _fanout(
            [_lease()], lambda lease, attempt: False, policy=policy)
        assert report.attempts == 3
        assert report.broken == 1 and report.notified == 0
        assert len(waits) == 2            # no backoff after the last try
        assert [lease.machine_id for lease in broken] == [1]

    def test_backoff_schedule_matches_the_resolver_arithmetic(self):
        policy = RetryPolicy(max_attempts=3, base_backoff=0.5,
                             max_backoff=2.0)
        _report, waits, _broken = _fanout(
            [_lease()], lambda lease, attempt: False, policy=policy)
        expected_rng = random.Random(0)
        expected = [policy.backoff(attempt, expected_rng)
                    for attempt in (1, 2)]
        assert waits == expected

    def test_success_stops_retrying(self):
        policy = RetryPolicy(max_attempts=4, base_backoff=0.5,
                             max_backoff=2.0)
        report, waits, broken = _fanout(
            [_lease()], lambda lease, attempt: attempt == 2,
            policy=policy)
        assert report.attempts == 2 and report.notified == 1
        assert not broken and len(waits) == 1

    def test_no_policy_means_single_attempt(self):
        report, waits, _broken = _fanout(
            [_lease()], lambda lease, attempt: False, policy=None)
        assert report.attempts == 1 and waits == []


class TestBreakerReuse:
    def test_fanout_failures_trip_the_breaker_like_hop_failures(self):
        """Feeding the same failure sequence through callback_fanout
        and through direct record_failure calls (the resolver's hop
        path) must leave two breakers in identical states."""
        policy = RetryPolicy(max_attempts=2, base_backoff=0.5,
                             max_backoff=1.0)
        via_fanout = CircuitBreaker(failure_threshold=2, cooldown=30.0)
        report, _waits, broken = _fanout(
            [_lease(1)], lambda lease, attempt: False, policy=policy,
            breaker=via_fanout)
        assert report.attempts == 2 and len(broken) == 1

        via_hops = CircuitBreaker(failure_threshold=2, cooldown=30.0)
        for _ in range(report.attempts):
            via_hops.record_failure(0.0)

        assert via_fanout.state is via_hops.state is BreakerState.OPEN
        assert via_fanout.transitions == via_hops.transitions
        assert (via_fanout.consecutive_failures
                == via_hops.consecutive_failures)

    def test_open_breaker_skips_holders_and_breaks_outright(self):
        policy = RetryPolicy(max_attempts=3, base_backoff=0.5,
                             max_backoff=1.0)
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0)
        breaker.record_failure(0.0)           # already open
        assert breaker.state is BreakerState.OPEN
        report, waits, broken = _fanout(
            [_lease(1), _lease(2)], lambda lease, attempt: False,
            policy=policy, breaker=breaker)
        # No delivery attempts at all: both holders skipped, both
        # leases broken — the escalation an exhausted budget produces.
        assert report.attempts == 0 and report.skipped == 2
        assert report.broken == 2 and len(broken) == 2
        assert waits == []

    def test_breaker_tripping_mid_holder_stops_the_attempt_loop(self):
        policy = RetryPolicy(max_attempts=5, base_backoff=0.5,
                             max_backoff=1.0)
        breaker = CircuitBreaker(failure_threshold=2, cooldown=30.0)
        report, _waits, broken = _fanout(
            [_lease(1)], lambda lease, attempt: False, policy=policy,
            breaker=breaker)
        # The budget allowed 5 attempts but the breaker opened after
        # failure 2 — the loop must not keep burning attempts.
        assert report.attempts == 2
        assert breaker.state is BreakerState.OPEN
        assert len(broken) == 1

    def test_delivery_success_resets_the_breaker(self):
        policy = RetryPolicy(max_attempts=3, base_backoff=0.5,
                             max_backoff=1.0)
        breaker = CircuitBreaker(failure_threshold=3, cooldown=30.0)
        report, _waits, broken = _fanout(
            [_lease(1)], lambda lease, attempt: attempt == 2,
            policy=policy, breaker=breaker)
        assert report.notified == 1 and not broken
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_probe_recovers_after_cooldown(self):
        """The cooldown → half-open → closed arc behaves exactly as it
        does for the resolver's per-server breakers."""
        policy = RetryPolicy(max_attempts=1, base_backoff=0.5,
                             max_backoff=1.0)
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0)
        clock = {"now": 0.0}
        report, _waits, broken = _fanout(
            [_lease(1)], lambda lease, attempt: False, policy=policy,
            breaker=breaker, now=lambda: clock["now"])
        assert breaker.state is BreakerState.OPEN and len(broken) == 1
        clock["now"] = 6.0                     # past the cooldown
        report, _waits, broken = _fanout(
            [_lease(2)], lambda lease, attempt: True, policy=policy,
            breaker=breaker, now=lambda: clock["now"])
        assert report.notified == 1 and not broken
        assert breaker.state is BreakerState.CLOSED
