"""Tests for the lease subsystem: grants, callbacks, grace mode and
the bounded-staleness guarantee."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.model.entities import ObjectEntity
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.cache import (
    CachePolicy,
    CachingDirectoryService,
)
from repro.nameservice.leases import (
    LeaseManager,
    LeaseState,
    LeaseTable,
)
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.resolver import DistributedResolver
from repro.nameservice.retry import RetryPolicy
from repro.sim.kernel import Simulator

DEP = ("d", 1, "svc")
DEP2 = ("d", 2, "app")


class TestLeaseTable:
    def test_grant_then_fresh_until_expiry(self):
        table = LeaseTable("c0")
        table.grant(DEP, now=0.0, term=10.0, epoch=0)
        assert table.fresh(DEP, now=9.9)
        assert not table.fresh(DEP, now=10.0)
        assert table.stats()["grants"] == 1

    def test_regrant_while_live_is_a_renewal(self):
        table = LeaseTable("c0")
        table.grant(DEP, now=0.0, term=10.0, epoch=0)
        table.grant(DEP, now=5.0, term=10.0, epoch=0)
        assert table.fresh(DEP, now=14.0)
        stats = table.stats()
        assert stats["grants"] == 1 and stats["renewals"] == 1

    def test_expiry_is_counted_once_per_grant(self):
        table = LeaseTable("c0")
        table.grant(DEP, now=0.0, term=5.0, epoch=0)
        for _ in range(3):
            assert not table.fresh(DEP, now=7.0)
        assert table.stats()["expirations"] == 1
        # A fresh grant re-arms the counter.
        table.grant(DEP, now=8.0, term=5.0, epoch=0)
        assert not table.fresh(DEP, now=20.0)
        assert table.stats()["expirations"] == 2

    def test_covers_all_counts_every_expired_dep(self):
        table = LeaseTable("c0")
        table.grant(DEP, now=0.0, term=5.0, epoch=0)
        table.grant(DEP2, now=0.0, term=5.0, epoch=0)
        # `all` must not short-circuit: both expiries are observed.
        assert not table.covers_all((DEP, DEP2), now=6.0)
        assert table.stats()["expirations"] == 2

    def test_revoked_grant_never_answers_again(self):
        table = LeaseTable("c0")
        table.grant(DEP, now=0.0, term=10.0, epoch=0)
        assert table.revoke(DEP, now=1.0)
        assert not table.fresh(DEP, now=2.0)
        assert not table.has_grant(DEP)
        assert not table.revoke(DEP, now=3.0)   # idempotent, unheld
        assert table.stats()["revocations"] == 1

    def test_fresh_stays_strict_in_grace(self):
        table = LeaseTable("c0")
        table.grant(DEP, now=0.0, term=5.0, epoch=0)
        table.enter_grace(now=6.0)
        # Grace never promotes an expired grant back to fresh; grace
        # answers go through the degraded path and are tagged weak.
        assert not table.fresh(DEP, now=6.0)
        assert table.has_grant(DEP)
        table.served_in_grace(now=6.0)
        assert table.stats()["grace_hits"] == 1

    def test_exit_grace_purges_expired_and_stale_epoch_grants(self):
        table = LeaseTable("c0")
        table.grant(DEP, now=0.0, term=5.0, epoch=0)      # will expire
        table.grant(DEP2, now=0.0, term=100.0, epoch=0)   # stale epoch
        live = ("d", 3, "cfg")
        table.grant(live, now=0.0, term=100.0, epoch=1)
        table.enter_grace(now=6.0)
        purged = table.exit_grace(now=6.0, epoch=1)
        assert purged == 2
        assert not table.in_grace
        assert not table.has_grant(DEP)
        assert not table.has_grant(DEP2)
        assert table.fresh(live, now=6.0)
        assert table.stats()["revalidations"] == 2

    def test_exit_grace_without_grace_is_a_noop(self):
        table = LeaseTable("c0")
        table.grant(DEP, now=0.0, term=1.0, epoch=0)
        assert table.exit_grace(now=5.0, epoch=0) == 0
        assert table.has_grant(DEP)


class TestLeaseManager:
    def test_grant_and_renew(self):
        manager = LeaseManager(term=10.0)
        lease = manager.grant(1, DEP, now=0.0, epoch=0,
                              machine_label="c0")
        again = manager.grant(1, DEP, now=5.0, epoch=0,
                              machine_label="c0")
        assert again is lease
        assert lease.expires_at == 15.0
        assert lease.renewals == 1
        assert manager.grants == 1 and manager.renewals == 1

    def test_holders_prune_expired_leases(self):
        manager = LeaseManager(term=10.0)
        lease = manager.grant(1, DEP, now=0.0, epoch=0)
        manager.grant(2, DEP, now=8.0, epoch=0)
        holders = manager.holders_of(DEP, now=12.0)
        assert [h.machine_id for h in holders] == [2]
        assert lease.state is LeaseState.EXPIRED
        assert manager.expirations == 1
        assert manager.held(1, DEP, now=12.0) is None

    def test_ack_releases_and_break_escalates(self):
        manager = LeaseManager(term=10.0)
        acked = manager.grant(1, DEP, now=0.0, epoch=0)
        broken = manager.grant(2, DEP, now=0.0, epoch=0)
        manager.record_ack(1, DEP, now=1.0)
        assert acked.state is LeaseState.RELEASED
        manager.break_lease(broken, now=2.0)
        assert broken.state is LeaseState.BROKEN
        assert manager.holders_of(DEP, now=3.0) == []
        assert manager.acks == 1 and manager.breaks == 1

    def test_term_must_be_positive(self):
        with pytest.raises(SimulationError):
            LeaseManager(term=0.0)

    def test_fanout_order_is_insertion_order(self):
        manager = LeaseManager(term=10.0)
        for machine_id in (7, 3, 5):
            manager.grant(machine_id, DEP, now=0.0, epoch=0)
        holders = manager.holders_of(DEP, now=1.0)
        assert [h.machine_id for h in holders] == [7, 3, 5]


def _service_world(seed=0, term=10.0, retry=None):
    """A remotely-hosted directory with one same-net and one
    partitionable client, under the LEASE policy."""
    simulator = Simulator(seed=seed)
    lan = simulator.network("lan")
    srv = simulator.network("srv")
    server = simulator.machine(srv, "server")
    near = simulator.machine(srv, "near")
    far = simulator.machine(lan, "far")
    from repro.model.context import context_object
    directory = context_object("registry")
    simulator.sigma.add(directory)
    v1 = ObjectEntity("svc-v1")
    simulator.sigma.add(v1)
    directory.state.bind("svc", v1)
    placement = DirectoryPlacement()
    placement.place(directory, server)
    service = CachingDirectoryService(
        simulator, placement, policy=CachePolicy.LEASE, ttl=term,
        retry_policy=retry)
    return simulator, lan, srv, server, near, far, directory, v1, service


class TestCachingServiceLease:
    def test_delivered_callback_revokes_immediately(self):
        (simulator, _lan, _srv, _server, near, _far, directory, v1,
         service) = _service_world()
        assert service.lookup(near, directory, "svc") is v1
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        assert service.lookup(near, directory, "svc") is v2
        stats = service.stats()
        assert stats["invalidation_losses"] == 0
        assert stats["lease_acks"] == 1
        assert service.lease_table_of(near).stats()["revocations"] == 1

    def test_lost_callback_breaks_lease_and_staleness_is_bounded(self):
        (simulator, lan, srv, _server, _near, far, directory, v1,
         service) = _service_world(term=10.0)
        assert service.lookup(far, directory, "svc") is v1
        granted = simulator.clock.now
        simulator.partition(lan, srv)
        v2 = ObjectEntity("svc-v2")
        service.rebind(directory, "svc", v2)
        stats = service.stats()
        assert stats["invalidation_losses"] == 1
        assert stats["lease_breaks"] == 1
        simulator.heal(lan, srv)
        # Inside the term the stale copy still answers (the bound).
        assert service.lookup(far, directory, "svc") is v1
        # One term after the grant the promise has run out: the entry
        # expires and the next read refetches coherently.
        simulator.run(until=granted + 10.0)
        assert service.lookup(far, directory, "svc") is v2
        assert service.lease_table_of(far).stats()["expirations"] == 1


def _resolver_world(seed=0, term=12.0):
    """A replicated two-level namespace under the LEASE policy, with
    a partitionable client — the resolver-level lease stack."""
    simulator = Simulator(seed=seed)
    lan = simulator.network("lan")
    srv = simulator.network("srv")
    client_machine = simulator.machine(lan, "client-m")
    primary = simulator.machine(srv, "m1")
    secondary = simulator.machine(srv, "m2")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("svc")
    old_dir = tree.mkdir("svc/app")
    old_leaf = tree.mkfile("svc/app/cfg")
    new_dir = tree.mkdir("spare")
    new_leaf = tree.mkfile("spare/cfg")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    svc = tree.directory("svc")
    for node in (svc, old_dir, new_dir):
        placement.place_replicated(node, primary, secondary)
    client = simulator.spawn(client_machine, "client")
    context = ProcessContext(tree.root)
    resolver = DistributedResolver(
        simulator, placement, cache_policy=CachePolicy.LEASE,
        cache_ttl=10_000.0,
        retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.5,
                                 max_backoff=1.0),
        breaker_threshold=5, breaker_cooldown=5.0, lease_term=term)
    return {"simulator": simulator, "lan": lan, "srv": srv,
            "client_machine": client_machine, "client": client,
            "context": context, "resolver": resolver, "svc": svc,
            "new_dir": new_dir, "old_leaf": old_leaf,
            "new_leaf": new_leaf}


def _probe(world):
    entity, cost = world["resolver"].resolve(
        world["client"], world["context"], "/svc/app/cfg")
    return entity, cost


class TestResolverLease:
    def test_connected_rebind_reaches_the_holder(self):
        world = _resolver_world()
        entity, cost = _probe(world)
        assert entity is world["old_leaf"] and not cost.weak
        world["resolver"].rebind(world["svc"], "app", world["new_dir"])
        entity, cost = _probe(world)
        assert entity is world["new_leaf"] and not cost.weak
        stats = world["resolver"].lease_stats()
        assert stats["revocations"] >= 1
        assert stats["server_acks"] >= 1
        assert world["resolver"].invalidation_losses == 0

    def test_lost_callback_staleness_bounded_by_term(self):
        world = _resolver_world(term=12.0)
        simulator = world["simulator"]
        _probe(world)                               # warm + lease
        simulator.run(until=4.0)
        simulator.partition(world["lan"], world["srv"])
        rebound_at = simulator.clock.now
        world["resolver"].rebind(world["svc"], "app", world["new_dir"])
        assert world["resolver"].invalidation_losses == 1
        assert world["resolver"].lease_stats()["server_breaks"] == 1
        simulator.heal(world["lan"], world["srv"])
        # While the (already broken, but undelivered) lease is live
        # the stale binding is still claimed coherent — the window the
        # lease term bounds.
        entity, cost = _probe(world)
        assert entity is world["old_leaf"] and not cost.weak
        # Past rebind + term + a delivery delay the claim must be gone.
        deadline = rebound_at + 12.0 + 6.0
        simulator.run(until=deadline)
        entity, cost = _probe(world)
        assert entity is world["new_leaf"] and not cost.weak

    def test_grace_answers_are_weak_and_never_memoized_fresh(self):
        world = _resolver_world(term=12.0)
        simulator = world["simulator"]
        _probe(world)
        simulator.run(until=4.0)
        simulator.partition(world["lan"], world["srv"])
        world["resolver"].rebind(world["svc"], "app", world["new_dir"])
        # Outlive the lease term inside the partition: grace mode.
        simulator.run(until=30.0)
        for _ in range(2):
            entity, cost = _probe(world)
            assert entity is world["old_leaf"]
            assert cost.weak and cost.stale_steps > 0
        table = world["resolver"].lease_table_of(world["client_machine"])
        assert table.in_grace
        assert table.stats()["grace_hits"] > 0
        # Heal: the next walk revalidates and answers coherently — the
        # grace answers were never promoted to fresh cache state.
        simulator.heal(world["lan"], world["srv"])
        simulator.run(until=60.0)
        entity, cost = _probe(world)
        assert entity is world["new_leaf"] and not cost.weak
        assert not table.in_grace
        assert table.stats()["revalidations"] > 0

    def test_runs_are_deterministic_per_seed(self):
        def run_once():
            world = _resolver_world(seed=7)
            simulator = world["simulator"]
            outcomes = []
            for start in (2.0, 6.0):
                simulator.run(until=start)
                entity, cost = _probe(world)
                outcomes.append((entity.label, cost.weak, cost.messages))
            simulator.partition(world["lan"], world["srv"])
            world["resolver"].rebind(world["svc"], "app",
                                     world["new_dir"])
            for start in (12.0, 30.0, 40.0):
                simulator.run(until=start)
                entity, cost = _probe(world)
                outcomes.append((entity.label, cost.weak, cost.messages))
            return outcomes, world["resolver"].lease_stats()

        assert run_once() == run_once()
