"""Tests for the asynchronous name-lookup protocol."""

from __future__ import annotations

import pytest

from repro.model.resolution import resolve
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree
from repro.nameservice.placement import DirectoryPlacement
from repro.nameservice.protocol import AsyncNameClient, NameLookupServer
from repro.nameservice.retry import RetryPolicy
from repro.obs import Instrumentation
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator


def make_world(timeout=5.0, max_retries=2, retry_policy=None,
               instrument=False):
    """The fixture deployment, with tunable client timing (and
    optional instrumentation) for the late-reply/backoff tests."""
    obs = Instrumentation() if instrument else None
    simulator = (Simulator(seed=0, obs=obs) if obs is not None
                 else Simulator(seed=0))
    network = simulator.network("lan")
    client_machine = simulator.machine(network, "client-m")
    server1 = simulator.machine(network, "server1")
    server2 = simulator.machine(network, "server2")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("a/b/c")
    leaf = tree.mkfile("a/b/c/leaf")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    placement.place(tree.directory("a"), client_machine)
    placement.place(tree.directory("a/b"), server1)
    placement.place(tree.directory("a/b/c"), server2)
    servers = {id(machine): NameLookupServer(simulator, machine)
               for machine in (client_machine, server1, server2)}
    client_process = simulator.spawn(client_machine, "client")
    client = AsyncNameClient(simulator, placement, servers,
                             client_process, timeout=timeout,
                             max_retries=max_retries,
                             retry_policy=retry_policy)
    context = ProcessContext(tree.root)
    return simulator, client, context, leaf, server1


@pytest.fixture
def world():
    """Client machine + two server machines hosting a directory chain:
    /a (client machine) /a/b (server1) /a/b/c (server2)."""
    simulator = Simulator(seed=0)
    network = simulator.network("lan")
    client_machine = simulator.machine(network, "client-m")
    server1 = simulator.machine(network, "server1")
    server2 = simulator.machine(network, "server2")
    tree = NamingTree("root", sigma=simulator.sigma, parent_links=True)
    tree.mkdir("a/b/c")
    leaf = tree.mkfile("a/b/c/leaf")
    placement = DirectoryPlacement()
    placement.place(tree.root, client_machine)
    placement.place(tree.directory("a"), client_machine)
    placement.place(tree.directory("a/b"), server1)
    placement.place(tree.directory("a/b/c"), server2)
    servers = {id(machine): NameLookupServer(simulator, machine)
               for machine in (client_machine, server1, server2)}
    client_process = simulator.spawn(client_machine, "client")
    client = AsyncNameClient(simulator, placement, servers,
                             client_process, timeout=5.0, max_retries=2)
    context = ProcessContext(tree.root)
    return simulator, client, context, tree, leaf, server1, network


def run_lookup(simulator, client, context, name_):
    outcomes = []
    client.resolve(context, name_, outcomes.append)
    simulator.run()
    assert len(outcomes) == 1
    return outcomes[0]


class TestHappyPath:
    def test_resolves_multi_server_chain(self, world):
        simulator, client, context, tree, leaf, *_ = world
        outcome = run_lookup(simulator, client, context, "/a/b/c/leaf")
        assert outcome.ok
        assert outcome.entity is leaf
        assert not outcome.failed

    def test_matches_local_semantics(self, world):
        simulator, client, context, tree, leaf, *_ = world
        for text in ("/a", "/a/b", "/a/b/c/leaf", "/a/zzz", "/zzz",
                     "a/b/c/leaf"):
            outcome = run_lookup(simulator, client, context, text)
            assert outcome.entity is resolve(context, text), text
            assert not outcome.failed

    def test_client_does_not_block_other_traffic(self, world):
        simulator, client, context, tree, leaf, *_ = world
        # Kick off a lookup and unrelated messages; one run drains all.
        outcomes = []
        client.resolve(context, "/a/b/c/leaf", outcomes.append)
        other = simulator.spawn(client.process.machine, "bystander")
        client.process.send(other, payload="hi")
        simulator.run()
        assert outcomes[0].entity is leaf
        assert other.receive().payload == "hi"

    def test_concurrent_lookups(self, world):
        simulator, client, context, tree, leaf, *_ = world
        outcomes = []
        client.resolve(context, "/a/b/c/leaf", outcomes.append)
        client.resolve(context, "/a/b", outcomes.append)
        client.resolve(context, "/missing", outcomes.append)
        assert client.outstanding() >= 1
        simulator.run()
        assert len(outcomes) == 3
        assert client.outstanding() == 0

    def test_steps_counted(self, world):
        simulator, client, context, tree, leaf, *_ = world
        outcome = run_lookup(simulator, client, context, "/a/b/c/leaf")
        assert outcome.steps == 5  # root + a + b + c + leaf


class TestResolveMany:
    def test_outcomes_in_input_order_one_completion(self, world):
        simulator, client, context, tree, leaf, *_ = world
        names = ["/a/b/c/leaf", "/missing", "/a/b", "a/b/c/leaf"]
        batches = []
        ids = client.resolve_many(context, names, batches.append)
        assert len(ids) == len(names)
        simulator.run()
        assert len(batches) == 1  # completion fired exactly once
        outcomes = batches[0]
        assert [str(o.name) for o in outcomes] == names
        assert outcomes[0].entity is leaf
        assert outcomes[3].entity is leaf
        assert not outcomes[1].entity.is_defined()
        for name_, outcome in zip(names, outcomes):
            assert outcome.entity is resolve(context, name_)

    def test_batch_interleaves_instead_of_serializing(self, world):
        simulator, client, context, tree, leaf, *_ = world
        single = []
        client.resolve(context, "/a/b/c/leaf", single.append)
        simulator.run()
        one_lookup_latency = simulator.clock.now
        batches = []
        started = simulator.clock.now
        client.resolve_many(context, ["/a/b/c/leaf"] * 4, batches.append)
        simulator.run()
        # Concurrent request/reply traffic: the 4-name batch costs
        # about one lookup's latency, not four.
        assert simulator.clock.now - started < 4 * one_lookup_latency
        assert all(o.entity is leaf for o in batches[0])

    def test_empty_batch_completes_immediately(self, world):
        simulator, client, context, *_ = world
        batches = []
        assert client.resolve_many(context, [], batches.append) == []
        assert batches == [[]]

    def test_partial_failure_still_completes(self, world):
        simulator, client, context, tree, leaf, server1, _ = world
        FailureInjector(simulator).crash_machine(server1)
        batches = []
        client.resolve_many(context, ["/a/b/c/leaf", "/a"],
                            batches.append)
        simulator.run()
        outcomes = batches[0]
        assert outcomes[0].failed and outcomes[0].reason == "timeout"
        assert outcomes[1].ok


class TestFailures:
    def test_crashed_server_times_out(self, world):
        simulator, client, context, tree, leaf, server1, _ = world
        FailureInjector(simulator).crash_machine(server1)
        outcome = run_lookup(simulator, client, context, "/a/b/c/leaf")
        assert outcome.failed
        assert outcome.reason == "timeout"
        assert outcome.retries >= 1

    def test_partition_times_out(self, world):
        simulator, client, context, tree, leaf, server1, network = world
        # Move server1's traffic behind a partitioned network.
        other_net = simulator.network("island")
        simulator.partition(network, other_net)
        # Simplest partition test: crash is covered above; partition a
        # same-network pair is impossible, so partition the whole
        # network against a new island hosting a fresh placement.
        # Instead: just verify timeouts do not corrupt other lookups.
        FailureInjector(simulator).crash_machine(server1)
        outcomes = []
        client.resolve(context, "/a/b/c/leaf", outcomes.append)
        client.resolve(context, "/a", outcomes.append)
        simulator.run()
        assert len(outcomes) == 2
        by_name = {str(o.name): o for o in outcomes}
        assert by_name["/a/b/c/leaf"].failed
        assert by_name["/a"].ok

    def test_restart_allows_success_after_failure(self, world):
        simulator, client, context, tree, leaf, server1, _ = world
        injector = FailureInjector(simulator)
        injector.crash_machine(server1)
        first = run_lookup(simulator, client, context, "/a/b/c/leaf")
        assert first.failed
        injector.restart_machine(server1)
        # The server process died with the machine; spawn a new one.
        fresh = NameLookupServer(simulator, server1)
        client.servers[id(server1)] = fresh
        second = run_lookup(simulator, client, context, "/a/b/c/leaf")
        assert second.ok and second.entity is leaf

    def test_no_wrong_entity_under_failure(self, world):
        # The transport never converts failure into incoherence.
        simulator, client, context, tree, leaf, server1, _ = world
        FailureInjector(simulator).crash_machine(server1)
        outcome = run_lookup(simulator, client, context, "/a/b/c/leaf")
        assert not outcome.entity.is_defined()


class TestLateReplies:
    """Satellite (c): replies racing their own retries are counted."""

    def test_late_replies_counted_not_silently_dropped(self):
        # timeout (1.5) < round trip (2.0): every attempt's reply
        # arrives after its retry superseded it, and the reply to the
        # final attempt lands after the lookup settled as failed.
        simulator, client, context, _leaf, _s1 = make_world(timeout=1.5)
        outcomes = []
        client.resolve(context, "/a/b/c/leaf", outcomes.append)
        simulator.run()
        outcome = outcomes[0]
        assert outcome.failed and outcome.reason == "timeout"
        assert outcome.retries == 3
        assert client.late_replies == 3  # 2 superseded + 1 settled

    def test_late_reply_metric_split_by_kind(self):
        simulator, client, context, *_ = make_world(timeout=1.5,
                                                    instrument=True)
        outcomes = []
        client.resolve(context, "/a/b/c/leaf", outcomes.append)
        simulator.run()
        metrics = simulator.obs.metrics
        assert metrics.value_of("async_late_replies_total",
                                {"kind": "superseded"}) == 2.0
        assert metrics.value_of("async_late_replies_total",
                                {"kind": "settled"}) == 1.0
        assert metrics.total_of("async_late_replies_total") == \
            client.late_replies

    def test_no_late_replies_when_timing_is_healthy(self):
        simulator, client, context, leaf, _s1 = make_world(timeout=5.0)
        outcomes = []
        client.resolve(context, "/a/b/c/leaf", outcomes.append)
        simulator.run()
        assert outcomes[0].entity is leaf
        assert client.late_replies == 0


class TestBackoffResend:
    def test_slow_reply_wins_the_race_against_its_resend(self):
        # With a 2.0 backoff the re-send is still pending when the
        # slow original reply (t=2.0) arrives; the reply is consumed
        # and the stale resend closure must then be a no-op.
        policy = RetryPolicy(max_attempts=3, base_backoff=2.0,
                             jitter=0.0)
        simulator, client, context, leaf, _s1 = make_world(
            timeout=1.5, retry_policy=policy)
        outcomes = []
        client.resolve(context, "/a/b/c/leaf", outcomes.append)
        simulator.run()
        outcome = outcomes[0]
        assert outcome.ok and outcome.entity is leaf
        assert outcome.retries >= 1  # timeouts fired, lookup still won
        assert client.late_replies == 0
        assert client.outstanding() == 0

    def test_backoff_resend_recovers_from_real_loss(self):
        # Crash the server, let the first attempt time out, revive the
        # server during the backoff window: the delayed resend lands
        # on the respawned server and the lookup completes.
        policy = RetryPolicy(max_attempts=3, base_backoff=4.0,
                             jitter=0.0)
        simulator, client, context, leaf, server1 = make_world(
            timeout=2.0, retry_policy=policy)
        injector = FailureInjector(simulator)
        server = client.servers[id(server1)]
        injector.on_restart(lambda _m: server.respawn(),
                            machine=server1)
        injector.schedule_timeline([(1.5, "crash", server1),
                                    (4.0, "restart", server1)])
        outcomes = []
        client.resolve(context, "/a/b/c/leaf", outcomes.append)
        simulator.run()
        assert outcomes[0].ok and outcomes[0].entity is leaf
        assert outcomes[0].retries >= 1


class TestServerRespawn:
    def test_respawn_revives_the_lookup_service(self):
        simulator, client, context, leaf, server1 = make_world()
        injector = FailureInjector(simulator)
        server = client.servers[id(server1)]
        injector.crash_machine(server1)
        first = run_lookup(simulator, client, context, "/a/b/c/leaf")
        assert first.failed
        injector.on_restart(lambda _m: server.respawn(),
                            machine=server1)
        injector.restart_machine(server1)
        assert server.process.alive
        second = run_lookup(simulator, client, context, "/a/b/c/leaf")
        assert second.ok and second.entity is leaf

    def test_respawn_is_idempotent(self):
        simulator, client, context, _leaf, server1 = make_world()
        injector = FailureInjector(simulator)
        server = client.servers[id(server1)]
        assert not server.respawn()  # alive: left alone
        injector.crash_machine(server1)
        assert not server.respawn()  # machine still down
        injector.restart_machine(server1)
        assert server.respawn()
        assert not server.respawn()  # fresh process already installed


class TestServer:
    def test_server_counts_requests(self, world):
        simulator, client, context, tree, leaf, server1, _ = world
        run_lookup(simulator, client, context, "/a/b/c/leaf")
        served = [s for s in client.servers.values()
                  if s.machine is server1][0]
        assert served.requests_served >= 1

    def test_server_ignores_foreign_payloads(self, world):
        simulator, client, context, tree, leaf, server1, _ = world
        server = [s for s in client.servers.values()
                  if s.machine is server1][0]
        client.process.send(server.process, payload="junk")
        simulator.run()
        assert server.requests_served == 0
