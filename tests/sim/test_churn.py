"""Robustness under churn: crashes, partitions, renumbering mixed
into live workloads."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pqid.mapping import qualify, resolve_pid
from repro.pqid.transport import PidPolicy, exchange_outcome, send_pid
from repro.sim.failures import FailureInjector
from repro.workloads.scenarios import build_pqid_population


class TestCrashSemantics:
    def test_messages_to_crashed_machine_drop_forever(self):
        population = build_pqid_population(seed=1)
        simulator = population.simulator
        injector = FailureInjector(simulator)
        victim_machine = population.machines[-1]
        victim = victim_machine.processes()[0]
        sender = population.machines[0].processes()[0]
        injector.crash_machine(victim_machine)
        sender.send(victim)
        simulator.run()
        assert simulator.messages_dropped == 1
        assert victim.receive() is None

    def test_restart_accepts_new_traffic(self):
        population = build_pqid_population(seed=1)
        simulator = population.simulator
        injector = FailureInjector(simulator)
        machine = population.machines[-1]
        injector.crash_machine(machine)
        injector.restart_machine(machine)
        fresh = simulator.spawn(machine, "fresh")
        sender = population.machines[0].processes()[0]
        sender.send(fresh, payload="hello")
        simulator.run()
        assert fresh.receive().payload == "hello"

    def test_dead_processes_unresolvable_by_pid(self):
        population = build_pqid_population(seed=1)
        injector = FailureInjector(population.simulator)
        victim_machine = population.machines[0]
        holder = population.machines[1].processes()[0]
        target = victim_machine.processes()[0]
        pid = qualify(target, holder)
        assert resolve_pid(pid, holder) is target
        injector.crash_machine(victim_machine)
        assert resolve_pid(pid, holder) is None


class TestPartitionChurn:
    def test_exchange_through_heal(self):
        population = build_pqid_population(seed=2)
        simulator = population.simulator
        net1, net2 = population.networks
        sender = net1.machines()[0].processes()[0]
        receiver = net2.machines()[0].processes()[0]
        target = sender.machine.processes()[1]
        simulator.partition(net1, net2)
        lost = send_pid(sender, receiver, target, PidPolicy.MAPPED)
        simulator.run()
        assert lost.message.dropped
        simulator.heal(net1, net2)
        retried = send_pid(sender, receiver, target, PidPolicy.MAPPED)
        simulator.run()
        assert not retried.message.dropped
        assert exchange_outcome(retried) == "coherent"

    def test_intra_network_unaffected_by_partition(self):
        population = build_pqid_population(seed=2)
        simulator = population.simulator
        net1, net2 = population.networks
        simulator.partition(net1, net2)
        a, b = net1.machines()[0].processes()[0], \
            net1.machines()[1].processes()[0]
        a.send(b, payload="local")
        simulator.run()
        assert b.receive().payload == "local"


class TestChurnProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.lists(st.integers(0, 3),
                                            min_size=1, max_size=8))
    def test_mapped_exchange_between_live_reachable_parties_is_always_coherent(
            self, seed, churn_ops):
        """Whatever renumbering happens, a MAPPED pid exchange between
        live, connected processes resolves to the intended target."""
        population = build_pqid_population(seed=seed % 997,
                                           n_networks=2,
                                           machines_per_network=2,
                                           processes_per_machine=2)
        simulator = population.simulator
        injector = FailureInjector(simulator)
        rng = random.Random(seed)
        next_addr = 100
        for op in churn_ops:
            next_addr += 1
            if op in (0, 1):
                injector.renumber_machine(
                    rng.choice(population.machines), next_addr)
            else:
                injector.renumber_network(
                    rng.choice(population.networks), next_addr)
        for _ in range(5):
            sender, receiver = population.random_pair(rng)
            target = rng.choice(population.processes)
            exchange = send_pid(sender, receiver, target,
                                PidPolicy.MAPPED)
            simulator.run()
            assert exchange_outcome(exchange) == "coherent"
