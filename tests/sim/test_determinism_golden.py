"""Determinism regression goldens for the optimized kernel.

The PR-6 hot-path optimization (slotted events/messages, tuple-ordered
heap, batched same-instant dispatch, lazy trace formatting) must be
*observationally invisible*: for a fixed seed the kernel has to
produce a byte-identical trace log and identical experiment outputs.
These tests pin sha256 digests captured on the pre-optimization seed
kernel; any event reordering, trace rewording, or RNG-draw shuffle
shows up as a digest mismatch.

Regenerate (only when a change is *intended* to alter observable
behaviour)::

    PYTHONPATH=src python tests/sim/test_determinism_golden.py
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.sim.kernel import Simulator

SEEDS = (0, 1, 7, 42)

#: sha256 of the canonical kernel scenario's formatted trace log.
TRACE_GOLDENS = {
    0: "051e0bcaf40c092a3f9fd526a08a36acc2179d1fa27bb3519610561bfa86ffb8",
    1: "f5b4bb57bc9041e65ee12397907b5254270b8b31dd427c488dbdffafaca71765",
    7: "fab31dd8c828be5d6d7b77e3e6bd895ed5fa4df1c9da642994dda20518a8b379",
    42: "2f514fd5c30e29b22cbb4e80cbd14bcdaee2e3617269a61471e260834b81ae73",
}

#: sha256 of each experiment's full ``ExperimentResult.to_dict()``.
EXPERIMENT_GOLDENS = {
    ("A7", 0): "60e749c48835a2f66d92fc7a43698fc10acf5b21e9e37b33d7e209d355af5cea",
    ("A7", 1): "e4a3c306a173232c91ab9ebcf51cdc303c975a6931b6cda036ea482451013f81",
    ("A7", 7): "0ad512b67ccbadb2b2b7f5ee23b51c80023342a275da45b72fba1f04ab1fd372",
    ("A7", 42): "4e878e88dd08f551ec13fd6395cea3aee26efe1f040e23489ed6b7a340990238",
    ("A8", 0): "61ce5c50f5efed76453a1cfbe104fac0748fbfe67c27833218e667227131a220",
    ("A8", 1): "89699668fbc442a9830c92e02fb42bf752c36fa5d50a80b37fae930c4228ed56",
    ("A8", 7): "b0b05851b64a654d4fffabba0ba9e7510216fa1efa9b22f635f65743cacb1fff",
    ("A8", 42): "d5065d5581ed3606716b539c30eee9aeaa2ace13dfd74bc0df842272f24cfd5d",
    ("A9", 0): "1deaf23655f65d74e49c9d9896ebbf9cb006c459a7a473476660facaf2b4a9dc",
    ("A9", 1): "98adc6f3f114d68f8e22d03775782aa5c2feaf9035ce318cbafc1e54520433e7",
    ("A9", 7): "ef34d2cb44e0b4a563be563850f4d1dc6f914f57dd47cb01dbade395d743ba75",
    ("A9", 42): "9ce6d2ad6dc27bac9531af8de584e34b3a7d4cbdbbcd764eb714f56a9c3bb1f9",
}


def run_canonical_scenario(seed: int) -> Simulator:
    """A fixed kernel workload touching every trace-producing path:
    topology, spawns, same-instant bursts, flaky links (seeded drops
    and latency spikes), partitions with healing, timers and
    cancellations, and a crashed machine."""
    simulator = Simulator(seed=seed, default_latency=1.0)
    lan = simulator.network("lan")
    wan = simulator.network("wan")
    m1 = simulator.machine(lan, label="m1")
    m2 = simulator.machine(lan, label="m2")
    m3 = simulator.machine(wan, label="m3")
    processes = [simulator.spawn(machine, label=f"p{index}")
                 for index, machine in enumerate(
                     (m1, m1, m2, m2, m3, m3))]
    child = processes[0].spawn_child(label="child")
    simulator.set_flaky_link(lan, wan, drop_prob=0.3, extra_latency=0.75)

    # Same-instant burst across both networks (flaky draws included).
    for index in range(60):
        sender = processes[index % 6]
        receiver = processes[(index + 2) % 6]
        sender.send(receiver, payload=index)
    child.send(processes[4], payload="hello")

    # Timers, half cancelled, one of them re-arming.
    ticks = []
    timers = [simulator.schedule(2.0 + 0.5 * index,
                                 lambda i=index: ticks.append(i),
                                 note=f"tick{index}")
              for index in range(10)]
    for index, timer in enumerate(timers):
        if index % 2:
            timer.cancel()

    # Mid-run partition + heal, a crash, and traffic through both.
    simulator.schedule(3.0, lambda: simulator.partition(lan, wan))
    simulator.schedule(3.5, lambda: processes[0].send(processes[5],
                                                      payload="blocked"))
    simulator.schedule(6.0, lambda: simulator.heal(lan, wan))
    simulator.schedule(6.5, lambda: processes[1].send(processes[4],
                                                      payload="after-heal"))

    def crash_m2() -> None:
        m2.alive = False
        processes[0].send(processes[2], payload="to-downed")

    simulator.schedule(7.0, crash_m2)
    simulator.run()
    return simulator


def trace_digest(simulator: Simulator) -> str:
    lines = [f"{entry.time:g}|{entry.kind}|{entry.detail}"
             for entry in simulator.trace]
    lines.append(f"sent={simulator.messages_sent}"
                 f"|delivered={simulator.messages_delivered}"
                 f"|dropped={simulator.messages_dropped}"
                 f"|t={simulator.clock.now:g}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def experiment_digest(result) -> str:
    payload = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _experiment_runners():
    from repro.bench.experiments_availability import run_a8_availability
    from repro.bench.experiments_batch import run_a7_batch_resolution
    from repro.bench.experiments_leases import run_a9_leases
    return {"A7": run_a7_batch_resolution,
            "A8": run_a8_availability,
            "A9": run_a9_leases}


class TestTraceGoldens:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_trace_log_matches_pinned_digest(self, seed):
        assert trace_digest(run_canonical_scenario(seed)) == \
            TRACE_GOLDENS[seed]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_repeated_runs_are_bit_identical(self, seed):
        first = run_canonical_scenario(seed)
        second = run_canonical_scenario(seed)
        assert [entry.detail for entry in first.trace] == \
            [entry.detail for entry in second.trace]
        assert trace_digest(first) == trace_digest(second)


class TestExperimentGoldens:
    @pytest.mark.parametrize("exp_id,seed",
                             sorted(EXPERIMENT_GOLDENS))
    def test_experiment_rows_match_pinned_digest(self, exp_id, seed):
        runner = _experiment_runners()[exp_id]
        result = runner(seed=seed)
        assert result.all_checks_pass(), result.failed_checks()
        assert experiment_digest(result) == \
            EXPERIMENT_GOLDENS[(exp_id, seed)]


def _regenerate() -> None:  # pragma: no cover - maintenance helper
    print("TRACE_GOLDENS = {")
    for seed in SEEDS:
        print(f'    {seed}: "{trace_digest(run_canonical_scenario(seed))}",')
    print("}")
    print("EXPERIMENT_GOLDENS = {")
    for exp_id, runner in _experiment_runners().items():
        for seed in SEEDS:
            digest = experiment_digest(runner(seed=seed))
            print(f'    ("{exp_id}", {seed}): "{digest}",')
    print("}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
