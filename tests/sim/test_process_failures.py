"""Tests for processes, traces, and failure injection."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@pytest.fixture
def simulator():
    return Simulator(seed=0)


class TestProcessLifecycle:
    def test_spawn_child_links_parent(self, simulator):
        machine = simulator.machine(simulator.network())
        parent = simulator.spawn(machine, "parent")
        child = parent.spawn_child(label="child")
        assert child.parent is parent
        assert child in parent.children
        assert child.machine is machine

    def test_spawn_child_on_other_machine(self, simulator):
        network = simulator.network()
        m1, m2 = simulator.machine(network), simulator.machine(network)
        parent = simulator.spawn(m1, "parent")
        child = parent.spawn_child(machine=m2, label="remote-child")
        assert child.machine is m2

    def test_exit_frees_nothing_but_marks_dead(self, simulator):
        machine = simulator.machine(simulator.network())
        process = simulator.spawn(machine)
        laddr = process.laddr
        process.exit()
        assert not process.alive
        assert machine.by_laddr(laddr) is None
        # Addresses are not reused.
        successor = simulator.spawn(machine)
        assert successor.laddr > laddr

    def test_full_address(self, simulator):
        network = simulator.network()
        machine = simulator.machine(network)
        process = simulator.spawn(machine)
        assert process.full_address == (network.naddr, machine.maddr,
                                        process.laddr)

    def test_same_machine_network_predicates(self, simulator):
        net1, net2 = simulator.network(), simulator.network()
        m1 = simulator.machine(net1)
        a, b = simulator.spawn(m1), simulator.spawn(m1)
        c = simulator.spawn(simulator.machine(net1))
        d = simulator.spawn(simulator.machine(net2))
        assert a.same_machine(b)
        assert not a.same_machine(c)
        assert a.same_network(c)
        assert not a.same_network(d)

    def test_receive_empty_mailbox(self, simulator):
        process = simulator.spawn(simulator.machine(simulator.network()))
        assert process.receive() is None

    def test_repr_shows_dead(self, simulator):
        process = simulator.spawn(simulator.machine(simulator.network()))
        process.exit()
        assert "dead" in repr(process)


class TestFailureInjector:
    def test_crash_kills_processes(self, simulator):
        machine = simulator.machine(simulator.network())
        process = simulator.spawn(machine)
        FailureInjector(simulator).crash_machine(machine)
        assert not machine.alive
        assert not process.alive

    def test_crash_twice_rejected(self, simulator):
        machine = simulator.machine(simulator.network())
        injector = FailureInjector(simulator)
        injector.crash_machine(machine)
        with pytest.raises(SimulationError):
            injector.crash_machine(machine)

    def test_restart_allows_new_spawns(self, simulator):
        machine = simulator.machine(simulator.network())
        injector = FailureInjector(simulator)
        injector.crash_machine(machine)
        injector.restart_machine(machine)
        fresh = simulator.spawn(machine)
        assert fresh.alive

    def test_renumber_machine_traced(self, simulator):
        machine = simulator.machine(simulator.network())
        FailureInjector(simulator).renumber_machine(machine, 33)
        assert machine.maddr == 33
        assert any("renumber" == e.kind for e in simulator.trace)

    def test_renumber_network(self, simulator):
        network = simulator.network()
        FailureInjector(simulator).renumber_network(network, 44)
        assert network.naddr == 44

    def test_partition_delegation(self, simulator):
        net1, net2 = simulator.network(), simulator.network()
        injector = FailureInjector(simulator)
        injector.partition(net1, net2)
        assert simulator.partitioned(net1, net2)
        injector.heal(net1, net2)
        assert not simulator.partitioned(net1, net2)


class TestTraceLog:
    def test_record_and_filter(self):
        log = TraceLog()
        log.record(0.0, "send", "a → b")
        log.record(1.0, "deliver", "b got it")
        log.record(2.0, "send", "b → a")
        assert len(log) == 3
        assert [e.detail for e in log.of_kind("send")] == \
            ["a → b", "b → a"]

    def test_tail(self):
        log = TraceLog()
        for index in range(20):
            log.record(float(index), "tick", str(index))
        assert [e.detail for e in log.tail(3)] == ["17", "18", "19"]

    def test_entry_repr(self):
        log = TraceLog()
        entry = log.record(1.5, "send", "hello")
        assert "t=1.5" in repr(entry) and "hello" in repr(entry)

    def test_kernel_traces_lifecycle(self):
        simulator = Simulator()
        network = simulator.network("lan")
        machine = simulator.machine(network, "box")
        sender = simulator.spawn(machine, "p")
        receiver = simulator.spawn(machine, "q")
        sender.send(receiver)
        simulator.run()
        kinds = [entry.kind for entry in simulator.trace]
        assert kinds.count("topology") == 2
        assert "spawn" in kinds and "send" in kinds and "deliver" in kinds
