"""Tests for processes, traces, and failure injection."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@pytest.fixture
def simulator():
    return Simulator(seed=0)


class TestProcessLifecycle:
    def test_spawn_child_links_parent(self, simulator):
        machine = simulator.machine(simulator.network())
        parent = simulator.spawn(machine, "parent")
        child = parent.spawn_child(label="child")
        assert child.parent is parent
        assert child in parent.children
        assert child.machine is machine

    def test_spawn_child_on_other_machine(self, simulator):
        network = simulator.network()
        m1, m2 = simulator.machine(network), simulator.machine(network)
        parent = simulator.spawn(m1, "parent")
        child = parent.spawn_child(machine=m2, label="remote-child")
        assert child.machine is m2

    def test_exit_frees_nothing_but_marks_dead(self, simulator):
        machine = simulator.machine(simulator.network())
        process = simulator.spawn(machine)
        laddr = process.laddr
        process.exit()
        assert not process.alive
        assert machine.by_laddr(laddr) is None
        # Addresses are not reused.
        successor = simulator.spawn(machine)
        assert successor.laddr > laddr

    def test_full_address(self, simulator):
        network = simulator.network()
        machine = simulator.machine(network)
        process = simulator.spawn(machine)
        assert process.full_address == (network.naddr, machine.maddr,
                                        process.laddr)

    def test_same_machine_network_predicates(self, simulator):
        net1, net2 = simulator.network(), simulator.network()
        m1 = simulator.machine(net1)
        a, b = simulator.spawn(m1), simulator.spawn(m1)
        c = simulator.spawn(simulator.machine(net1))
        d = simulator.spawn(simulator.machine(net2))
        assert a.same_machine(b)
        assert not a.same_machine(c)
        assert a.same_network(c)
        assert not a.same_network(d)

    def test_receive_empty_mailbox(self, simulator):
        process = simulator.spawn(simulator.machine(simulator.network()))
        assert process.receive() is None

    def test_repr_shows_dead(self, simulator):
        process = simulator.spawn(simulator.machine(simulator.network()))
        process.exit()
        assert "dead" in repr(process)


class TestFailureInjector:
    def test_crash_kills_processes(self, simulator):
        machine = simulator.machine(simulator.network())
        process = simulator.spawn(machine)
        FailureInjector(simulator).crash_machine(machine)
        assert not machine.alive
        assert not process.alive

    def test_crash_twice_rejected(self, simulator):
        machine = simulator.machine(simulator.network())
        injector = FailureInjector(simulator)
        injector.crash_machine(machine)
        with pytest.raises(SimulationError):
            injector.crash_machine(machine)

    def test_restart_allows_new_spawns(self, simulator):
        machine = simulator.machine(simulator.network())
        injector = FailureInjector(simulator)
        injector.crash_machine(machine)
        injector.restart_machine(machine)
        fresh = simulator.spawn(machine)
        assert fresh.alive

    def test_renumber_machine_traced(self, simulator):
        machine = simulator.machine(simulator.network())
        FailureInjector(simulator).renumber_machine(machine, 33)
        assert machine.maddr == 33
        assert any("renumber" == e.kind for e in simulator.trace)

    def test_renumber_network(self, simulator):
        network = simulator.network()
        FailureInjector(simulator).renumber_network(network, 44)
        assert network.naddr == 44

    def test_partition_delegation(self, simulator):
        net1, net2 = simulator.network(), simulator.network()
        injector = FailureInjector(simulator)
        injector.partition(net1, net2)
        assert simulator.partitioned(net1, net2)
        injector.heal(net1, net2)
        assert not simulator.partitioned(net1, net2)

    def test_partition_and_heal_are_idempotent(self, simulator):
        net1, net2 = simulator.network(), simulator.network()
        injector = FailureInjector(simulator)
        assert injector.partition(net1, net2)
        assert not injector.partition(net1, net2)  # no-op, nothing new
        assert simulator.partitioned(net1, net2)
        assert injector.heal(net1, net2)
        assert not injector.heal(net1, net2)

    def test_restart_is_idempotent(self, simulator):
        machine = simulator.machine(simulator.network())
        injector = FailureInjector(simulator)
        fired = []
        injector.on_restart(fired.append)
        injector.restart_machine(machine)  # already alive: no hooks
        assert fired == []
        injector.crash_machine(machine)
        injector.restart_machine(machine)
        assert fired == [machine]

    def test_restart_hooks_scoped_and_ordered(self, simulator):
        network = simulator.network()
        mine = simulator.machine(network, "mine")
        other = simulator.machine(network, "other")
        injector = FailureInjector(simulator)
        fired = []
        injector.on_restart(lambda m: fired.append(("any", m.label)))
        injector.on_restart(lambda m: fired.append(("other", m.label)),
                            machine=other)
        injector.on_restart(lambda m: fired.append(("mine", m.label)),
                            machine=mine)
        injector.crash_machine(mine)
        injector.restart_machine(mine)
        assert fired == [("any", "mine"), ("mine", "mine")]


class TestFlakyLinks:
    def make_pair(self, simulator):
        lan, wan = simulator.network("lan"), simulator.network("wan")
        a = simulator.spawn(simulator.machine(lan, "a-m"), "a")
        b = simulator.spawn(simulator.machine(wan, "b-m"), "b")
        return lan, wan, a, b

    def test_lossy_link_drops_with_reason(self):
        simulator = Simulator(seed=0)
        lan, wan, a, b = self.make_pair(simulator)
        FailureInjector(simulator).flaky_link(lan, wan, drop_prob=1.0)
        message = a.send(b, payload="ping")
        simulator.run()
        assert message.dropped
        assert message.drop_reason == "flaky link"

    def test_steady_link_restores_delivery(self):
        simulator = Simulator(seed=0)
        lan, wan, a, b = self.make_pair(simulator)
        injector = FailureInjector(simulator)
        injector.flaky_link(lan, wan, drop_prob=1.0)
        assert injector.steady_link(lan, wan)
        assert not injector.steady_link(lan, wan)  # idempotent
        message = a.send(b, payload="ping")
        simulator.run()
        assert message.delivered

    def test_latency_spike_delays_delivery(self):
        simulator = Simulator(seed=0)
        lan, wan, a, b = self.make_pair(simulator)
        FailureInjector(simulator).flaky_link(lan, wan, drop_prob=0.0,
                                              extra_latency=5.0)
        message = a.send(b, payload="ping", latency=1.0)
        simulator.run()
        assert message.delivered
        assert 1.0 < simulator.clock.now <= 6.0

    def test_flakiness_reported_and_validated(self):
        simulator = Simulator(seed=0)
        lan, wan, *_ = self.make_pair(simulator)
        simulator.set_flaky_link(lan, wan, 0.3, 1.5)
        assert simulator.link_flakiness(lan, wan) == (0.3, 1.5)
        assert simulator.link_flakiness(wan, lan) == (0.3, 1.5)
        simulator.clear_flaky_link(lan, wan)
        assert simulator.link_flakiness(lan, wan) == (0.0, 0.0)
        with pytest.raises(SimulationError):
            simulator.set_flaky_link(lan, wan, 1.5)
        with pytest.raises(SimulationError):
            simulator.set_flaky_link(lan, wan, 0.5, -1.0)

    def test_drops_are_deterministic_per_seed(self):
        def outcomes(seed):
            simulator = Simulator(seed=seed)
            lan, wan, a, b = self.make_pair(simulator)
            FailureInjector(simulator).flaky_link(lan, wan,
                                                  drop_prob=0.5)
            dropped = []
            for _ in range(12):
                message = a.send(b, payload="ping")
                simulator.run()
                dropped.append(message.dropped)
            return dropped

        assert outcomes(5) == outcomes(5)
        assert True in outcomes(5) and False in outcomes(5)


class TestScriptedTimelines:
    def test_schedule_validates_kind_and_time(self):
        simulator = Simulator(seed=0)
        machine = simulator.machine(simulator.network())
        injector = FailureInjector(simulator)
        with pytest.raises(SimulationError):
            injector.schedule(5.0, "meteor", machine)
        simulator.run(until=10.0)
        with pytest.raises(SimulationError):
            injector.schedule(5.0, "crash", machine)  # in the past

    def test_timeline_fires_in_order(self):
        simulator = Simulator(seed=0)
        lan, wan = simulator.network("lan"), simulator.network("wan")
        machine = simulator.machine(lan, "m")
        injector = FailureInjector(simulator)
        booked = injector.schedule_timeline([
            (5.0, "crash", machine),
            (15.0, "restart", machine),
            (20.0, "partition", lan, wan),
            (30.0, "heal", lan, wan),
            (35.0, "flaky_link", lan, wan, 0.4, 1.0),
            (45.0, "steady_link", lan, wan),
        ])
        assert booked == 6
        simulator.run(until=10.0)
        assert not machine.alive
        simulator.run(until=25.0)
        assert machine.alive
        assert simulator.partitioned(lan, wan)
        simulator.run(until=40.0)
        assert not simulator.partitioned(lan, wan)
        assert simulator.link_flakiness(lan, wan) == (0.4, 1.0)
        simulator.run(until=50.0)
        assert simulator.link_flakiness(lan, wan) == (0.0, 0.0)

    def test_timeline_restart_runs_hooks(self):
        simulator = Simulator(seed=0)
        machine = simulator.machine(simulator.network(), "m")
        injector = FailureInjector(simulator)
        revived = []
        injector.on_restart(lambda m: revived.append(m.label))
        injector.schedule_timeline([(2.0, "crash", machine),
                                    (4.0, "restart", machine)])
        simulator.run(until=5.0)
        assert revived == ["m"]


class TestTraceLog:
    def test_record_and_filter(self):
        log = TraceLog()
        log.record(0.0, "send", "a → b")
        log.record(1.0, "deliver", "b got it")
        log.record(2.0, "send", "b → a")
        assert len(log) == 3
        assert [e.detail for e in log.of_kind("send")] == \
            ["a → b", "b → a"]

    def test_tail(self):
        log = TraceLog()
        for index in range(20):
            log.record(float(index), "tick", str(index))
        assert [e.detail for e in log.tail(3)] == ["17", "18", "19"]

    def test_entry_repr(self):
        log = TraceLog()
        entry = log.record(1.5, "send", "hello")
        assert "t=1.5" in repr(entry) and "hello" in repr(entry)

    def test_kernel_traces_lifecycle(self):
        simulator = Simulator()
        network = simulator.network("lan")
        machine = simulator.machine(network, "box")
        sender = simulator.spawn(machine, "p")
        receiver = simulator.spawn(machine, "q")
        sender.send(receiver)
        simulator.run()
        kinds = [entry.kind for entry in simulator.trace]
        assert kinds.count("topology") == 2
        assert "spawn" in kinds and "send" in kinds and "deliver" in kinds
