"""Tests for ProcessContext and the NamingScheme base."""

from __future__ import annotations

import pytest

from repro.errors import SchemeError
from repro.model.context import context_object
from repro.model.entities import Activity, ObjectEntity, UNDEFINED_ENTITY
from repro.model.names import ROOT_NAME
from repro.model.resolution import resolve
from repro.namespaces.base import CWD_NAME, NamingScheme, ProcessContext
from repro.namespaces.tree import NamingTree


@pytest.fixture
def tree():
    tree = NamingTree("root", parent_links=True)
    tree.mkfile("etc/passwd")
    tree.mkfile("home/alice/notes")
    return tree


class TestProcessContext:
    def test_two_bindings(self, tree):
        context = ProcessContext(tree.root)
        assert context.root_dir is tree.root
        assert context.cwd is tree.root
        assert set(context.names()) == {ROOT_NAME, CWD_NAME}

    def test_rooted_resolution(self, tree):
        context = ProcessContext(tree.root)
        assert resolve(context, "/etc/passwd").label == "passwd"

    def test_relative_resolution_via_cwd(self, tree):
        home = tree.directory("home/alice")
        context = ProcessContext(tree.root, cwd=home)
        assert resolve(context, "notes").label == "notes"
        assert resolve(context, "/etc/passwd").label == "passwd"

    def test_unbound_relative_without_directory_cwd(self):
        # A process context whose cwd binding was clobbered to a
        # non-directory degrades to undefined lookups, not errors.
        directory = context_object("d")
        context = ProcessContext(directory)
        context._bindings[CWD_NAME] = ObjectEntity("file")
        assert context("x") is UNDEFINED_ENTITY

    def test_set_root_requires_directory(self, tree):
        context = ProcessContext(tree.root)
        with pytest.raises(SchemeError):
            context.set_root(ObjectEntity("file"))
        with pytest.raises(SchemeError):
            context.set_cwd(ObjectEntity("file"))

    def test_copy_is_fork_semantics(self, tree):
        parent = ProcessContext(tree.root)
        child = parent.copy()
        assert child == parent
        child.set_cwd(tree.directory("home"))
        assert child != parent
        assert parent.cwd is tree.root

    def test_extensional_equality(self, tree):
        first = ProcessContext(tree.root)
        second = ProcessContext(tree.root)
        assert first == second
        third = ProcessContext(tree.root, cwd=tree.directory("home"))
        assert first != third


class TestNamingScheme:
    def test_adopt_and_groups(self, tree):
        scheme = NamingScheme()
        a = scheme.new_activity("a", ProcessContext(tree.root), group="g1")
        b = scheme.new_activity("b", ProcessContext(tree.root), group="g2")
        assert scheme.activities() == [a, b]
        assert scheme.groups() == {"g1": [a], "g2": [b]}
        assert a in scheme.sigma

    def test_adopt_existing_activity(self, tree):
        scheme = NamingScheme()
        activity = Activity("existing")
        adopted = scheme.adopt_activity(activity,
                                        ProcessContext(tree.root))
        assert adopted is activity

    def test_resolve_for(self, tree):
        scheme = NamingScheme()
        a = scheme.new_activity("a", ProcessContext(tree.root))
        assert scheme.resolve_for(a, "/etc/passwd").label == "passwd"

    def test_measure_uses_defaults(self, tree):
        scheme = NamingScheme()
        scheme.new_activity("a", ProcessContext(tree.root))
        scheme.new_activity("b", ProcessContext(tree.root))
        degree = scheme.measure(probes=["/etc/passwd", "/missing"])
        assert degree.coherent_fraction == 0.5

    def test_default_probe_names_empty(self):
        assert NamingScheme().probe_names() == []

    def test_repr(self, tree):
        scheme = NamingScheme()
        assert "0 activities" in repr(scheme)
