"""Tests for the naming-tree substrate."""

from __future__ import annotations

import pytest

from repro.errors import SchemeError
from repro.model.entities import ObjectEntity
from repro.model.names import PARENT, CompoundName
from repro.model.state import GlobalState
from repro.namespaces.tree import NamingTree


@pytest.fixture
def tree():
    return NamingTree("root", parent_links=True)


class TestBuilding:
    def test_mkdir_creates_chain(self, tree):
        node = tree.mkdir("a/b/c")
        assert node.is_context_object()
        assert tree.lookup("a/b/c") is node

    def test_mkdir_is_idempotent(self, tree):
        first = tree.mkdir("a/b")
        second = tree.mkdir("a/b")
        assert first is second

    def test_mkdir_through_file_rejected(self, tree):
        tree.mkfile("a/file")
        with pytest.raises(SchemeError):
            tree.mkdir("a/file/deeper")

    def test_mkfile(self, tree):
        leaf = tree.mkfile("etc/passwd")
        assert not leaf.is_context_object()
        assert tree.lookup("etc/passwd") is leaf
        assert leaf.label == "passwd"

    def test_mkfile_duplicate_rejected(self, tree):
        tree.mkfile("etc/passwd")
        with pytest.raises(SchemeError):
            tree.mkfile("etc/passwd")

    def test_add_binds_existing_entity(self, tree):
        entity = ObjectEntity("external")
        tree.add("place/external", entity)
        assert tree.lookup("place/external") is entity

    def test_sigma_registration(self):
        sigma = GlobalState()
        tree = NamingTree("root", sigma=sigma)
        leaf = tree.mkfile("a/b")
        assert leaf in sigma
        assert tree.root in sigma


class TestParentLinks:
    def test_directories_have_parent_binding(self, tree):
        child = tree.mkdir("a/b")
        a = tree.directory("a")
        assert child.state(PARENT) is a
        assert a.state(PARENT) is tree.root

    def test_root_is_own_parent(self, tree):
        assert tree.root.state(PARENT) is tree.root

    def test_no_parent_links_mode(self):
        plain = NamingTree("root", parent_links=False)
        child = plain.mkdir("a")
        assert not child.state.binds(PARENT)

    def test_dotdot_resolution(self, tree):
        tree.mkfile("a/x")
        tree.mkdir("b")
        assert tree.lookup("b/../a/x").is_defined()


class TestLookup:
    def test_empty_path_is_root(self, tree):
        assert tree.lookup("") is tree.root
        assert tree.lookup(CompoundName()) is tree.root

    def test_rooted_path_treated_as_tree_relative(self, tree):
        leaf = tree.mkfile("etc/passwd")
        assert tree.lookup("/etc/passwd") is leaf

    def test_missing_path(self, tree):
        assert not tree.lookup("no/such").is_defined()
        assert not tree.exists("no/such")

    def test_directory_accessor_requires_directory(self, tree):
        tree.mkfile("f")
        with pytest.raises(SchemeError):
            tree.directory("f")
        with pytest.raises(SchemeError):
            tree.directory("missing")

    def test_entries_sorted_without_parent(self, tree):
        tree.mkfile("dir/zebra")
        tree.mkfile("dir/apple")
        assert tree.entries("dir") == ["apple", "zebra"]


class TestAttachDetach:
    def test_attach_other_tree(self, tree):
        other = NamingTree("other", parent_links=True)
        other.mkfile("data/results")
        tree.attach("mnt/other", other.root)
        assert tree.lookup("mnt/other/data/results").is_defined()

    def test_attach_rebinds_parent(self, tree):
        other = NamingTree("other", parent_links=True)
        tree.attach("mnt/o", other.root)
        assert other.root.state(PARENT) is tree.directory("mnt")

    def test_attach_without_parent_rebinding(self, tree):
        other = NamingTree("other", parent_links=True)
        original_parent = other.root.state(PARENT)
        tree.attach("mnt/o", other.root, set_parent=False)
        assert other.root.state(PARENT) is original_parent

    def test_detach(self, tree):
        leaf = tree.mkfile("a/f")
        detached = tree.detach("a/f")
        assert detached is leaf
        assert not tree.exists("a/f")

    def test_detach_missing_rejected(self, tree):
        with pytest.raises(SchemeError):
            tree.detach("no/thing")


class TestTraversal:
    def test_walk_yields_all_paths(self, tree):
        tree.mkfile("a/x")
        tree.mkfile("b/y")
        paths = {str(p) for p, _ in tree.walk()}
        assert paths == {"a", "a/x", "b", "b/y"}

    def test_walk_is_deterministic(self, tree):
        tree.mkfile("b/y")
        tree.mkfile("a/x")
        assert tree.all_paths() == [p for p, _ in tree.walk()]
        assert [str(p) for p in tree.all_paths()] == \
            ["a", "b", "a/x", "b/y"]

    def test_walk_skips_parent_edges(self, tree):
        tree.mkdir("a")
        assert all(PARENT not in p.parts for p in tree.all_paths())

    def test_leaf_paths(self, tree):
        tree.mkfile("a/x")
        tree.mkdir("b")
        assert [str(p) for p in tree.leaf_paths()] == ["a/x"]

    def test_path_of(self, tree):
        leaf = tree.mkfile("a/b/c")
        assert str(tree.path_of(leaf)) == "a/b/c"
        assert tree.path_of(ObjectEntity("ghost")) is None

    def test_shared_node_yields_multiple_paths(self, tree):
        leaf = tree.mkfile("a/f")
        tree.add("b/link", leaf)
        paths = {str(p) for p, e in tree.walk() if e is leaf}
        assert paths == {"a/f", "b/link"}


class TestCopySubtree:
    def test_copy_shares_leaves_by_default(self, tree):
        leaf = tree.mkfile("src/data")
        copy = tree.copy_subtree(tree.directory("src"))
        assert copy is not tree.directory("src")
        assert copy.state("data") is leaf

    def test_copy_clones_with_copy_leaf(self, tree):
        leaf = tree.mkfile("src/data")
        leaf.state = "payload"

        def clone(obj):
            fresh = ObjectEntity(obj.label)
            fresh.state = obj.state
            return fresh

        copy = tree.copy_subtree(tree.directory("src"), copy_leaf=clone)
        cloned = copy.state("data")
        assert cloned is not leaf
        assert cloned.state == "payload"

    def test_copy_rebuilds_internal_parents(self, tree):
        tree.mkdir("src/sub")
        copy = tree.copy_subtree(tree.directory("src"))
        sub_copy = copy.state("sub")
        assert sub_copy.state(PARENT) is copy

    def test_copy_of_leaf_rejected(self, tree):
        leaf = tree.mkfile("f")
        with pytest.raises(SchemeError):
            tree.copy_subtree(leaf)

    def test_copy_is_deep_for_directories(self, tree):
        tree.mkfile("src/sub/deep")
        copy = tree.copy_subtree(tree.directory("src"))
        original_sub = tree.directory("src/sub")
        assert copy.state("sub") is not original_sub
