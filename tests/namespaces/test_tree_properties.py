"""Property-based invariants of the naming-tree substrate and the
Figure-6 scope resolution."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedded.documents import flatten
from repro.embedded.objects import StructuredContent, structured_object
from repro.embedded.relocate import move_subtree
from repro.embedded.scoping import scope_rule
from repro.model.entities import Activity
from repro.model.names import CompoundName
from repro.model.resolution import resolve
from repro.model.state import GlobalState
from repro.namespaces.base import ProcessContext
from repro.namespaces.tree import NamingTree

atoms = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4)
paths = st.lists(atoms, min_size=1, max_size=4).map(CompoundName)


class TestTreeResolutionCorrespondence:
    @settings(max_examples=60)
    @given(st.lists(paths, min_size=1, max_size=8, unique_by=str))
    def test_walk_paths_resolve_to_their_entities(self, file_paths):
        tree = NamingTree("root", parent_links=True)
        for path in file_paths:
            if not tree.exists(path):
                try:
                    tree.mkfile(path)
                except Exception:
                    # A prefix of this path is already a file; the
                    # generator may produce such collisions — skip.
                    continue
        context = ProcessContext(tree.root)
        for path, entity in tree.walk():
            assert tree.lookup(path) is entity
            assert resolve(context, path.as_rooted()) is entity

    @settings(max_examples=60)
    @given(st.lists(paths, min_size=1, max_size=8, unique_by=str))
    def test_all_paths_deterministic(self, file_paths):
        def build():
            tree = NamingTree("root", parent_links=True)
            for path in file_paths:
                try:
                    if not tree.exists(path):
                        tree.mkfile(path)
                except Exception:
                    continue
            return [str(p) for p in tree.all_paths()]

        assert build() == build()

    @settings(max_examples=40)
    @given(st.lists(paths, min_size=1, max_size=6, unique_by=str),
           st.data())
    def test_detach_removes_exactly_the_subtree(self, file_paths, data):
        tree = NamingTree("root", parent_links=True)
        created = []
        for path in file_paths:
            try:
                if not tree.exists(path):
                    tree.mkfile(path)
                    created.append(path)
            except Exception:
                continue
        if not created:
            return
        victim = data.draw(st.sampled_from(created))
        top = CompoundName(victim.parts[:1])
        tree.detach(top)
        assert not tree.exists(victim)
        for other in created:
            if not other.starts_with(top):
                assert tree.exists(other)


class TestScopeInvarianceProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(atoms, min_size=1, max_size=3),
           st.lists(st.lists(atoms, min_size=1, max_size=2),
                    min_size=1, max_size=3))
    def test_meaning_invariant_under_random_relocations(
            self, binding_dir, destinations):
        """Figure-6 resolution survives any sequence of subtree moves."""
        sigma = GlobalState()
        tree = NamingTree("root", sigma=sigma, parent_links=True)
        # Subtree `pkg` with an internal binding and a document.
        target_path = CompoundName(["pkg"] + binding_dir).child("part")
        part = tree.mkfile(target_path)
        part.state = "DATA"
        embedded = CompoundName(binding_dir).child("part")
        document = tree.add("pkg/doc", structured_object(
            "doc", StructuredContent().include(embedded), sigma=sigma))
        reader = Activity("reader")
        sigma.add(reader)
        rule = scope_rule(sigma)
        assert flatten(document, reader, rule) == "DATA"

        location = CompoundName(["pkg"])
        for index, destination in enumerate(destinations):
            new_location = CompoundName(
                [f"hop{index}"] + destination).child("pkg")
            move_subtree(tree, location, new_location)
            location = new_location
            assert flatten(document, reader, rule) == "DATA"
