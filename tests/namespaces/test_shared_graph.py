"""Tests for the shared naming graph approach (§5.2, Figure 4)."""

from __future__ import annotations

import pytest

from repro.coherence.definitions import coherent, is_global_name
from repro.errors import SchemeError
from repro.namespaces.shared_graph import SharedGraphSystem
from repro.replication.weak import replica_equivalence


@pytest.fixture
def andrew():
    system = SharedGraphSystem()
    system.shared.mkfile("usr/alice/thesis")
    system.shared.mkfile("project/plan")
    for label in ("ws1", "ws2"):
        client = system.add_client(label)
        client.tree.mkfile("tmp/scratch")
    return system


class TestStructure:
    def test_clients_mount_shared_tree(self, andrew):
        for client in andrew.clients():
            mounted = client.tree.lookup("vice")
            assert mounted is andrew.shared.root

    def test_duplicate_client_rejected(self, andrew):
        with pytest.raises(SchemeError):
            andrew.add_client("ws1")

    def test_unknown_client_rejected(self, andrew):
        with pytest.raises(SchemeError):
            andrew.client("ws9")

    def test_custom_shared_prefix(self):
        system = SharedGraphSystem(shared_prefix="afs")
        system.shared.mkfile("f")
        client = system.add_client("c")
        process = client.spawn("p")
        assert system.resolve_for(process, "/afs/f").is_defined()


class TestCoherence:
    def test_shared_names_globally_coherent(self, andrew):
        processes = [andrew.client(c).spawn(f"{c}-p")
                     for c in ("ws1", "ws2")]
        assert is_global_name("/vice/usr/alice/thesis", processes,
                              andrew.registry)

    def test_local_names_coherent_within_client_only(self, andrew):
        a1 = andrew.client("ws1").spawn("a1")
        a2 = andrew.client("ws1").spawn("a2")
        b1 = andrew.client("ws2").spawn("b1")
        assert coherent("/tmp/scratch", [a1, a2], andrew.registry)
        assert not coherent("/tmp/scratch", [a1, b1], andrew.registry)

    def test_client_cannot_reach_other_clients_local_graph(self, andrew):
        process = andrew.client("ws1").spawn("p")
        # There is no name from ws1's root to ws2's local files.
        from repro.model.graph import NamingGraph

        ws2_scratch = andrew.client("ws2").tree.lookup("tmp/scratch")
        graph = NamingGraph(andrew.sigma)
        root = andrew.registry.context_of(process).root_dir  # type: ignore
        assert ws2_scratch not in graph.reachable_from(root)


class TestReplication:
    def test_replicate_command_binds_everywhere(self, andrew):
        andrew.replicate_command("bin/ls")
        p1 = andrew.client("ws1").spawn("p1")
        p2 = andrew.client("ws2").spawn("p2")
        first = andrew.resolve_for(p1, "/bin/ls")
        second = andrew.resolve_for(p2, "/bin/ls")
        assert first.is_defined() and second.is_defined()
        assert first is not second

    def test_replicated_names_weakly_coherent(self, andrew):
        andrew.replicate_command("bin/ls")
        processes = [andrew.client(c).spawn(f"{c}-p")
                     for c in ("ws1", "ws2")]
        assert not coherent("/bin/ls", processes, andrew.registry)
        assert coherent("/bin/ls", processes, andrew.registry,
                        equivalence=replica_equivalence(andrew.replicas))

    def test_replicate_before_clients_rejected(self):
        system = SharedGraphSystem()
        with pytest.raises(SchemeError):
            system.replicate_command("bin/ls")

    def test_replica_states_stay_equal(self, andrew):
        set_id = andrew.replicate_command("bin/cc", content="cc-v1")
        members = andrew.replicas.members(set_id)
        andrew.replicas.write(members[0], "cc-v2")
        assert all(m.state == "cc-v2" for m in members)
        assert andrew.replicas.check_invariant()


class TestArgumentPassing:
    def test_passable_predicate(self, andrew):
        assert andrew.passable("/vice/project/plan")
        assert not andrew.passable("/tmp/scratch")
        assert not andrew.passable("vice/project/plan")  # not rooted

    def test_remote_spawn_runs_in_target_client(self, andrew):
        parent = andrew.client("ws1").spawn("parent")
        child = andrew.remote_spawn(parent, "ws2", "child")
        assert coherent("/vice/project/plan", [parent, child],
                        andrew.registry)
        assert not coherent("/tmp/scratch", [parent, child],
                            andrew.registry)


class TestProbes:
    def test_probe_partition(self, andrew):
        shared = {str(p) for p in andrew.shared_probe_names()}
        local = {str(p) for p in andrew.local_probe_names()}
        assert "/vice/usr/alice/thesis" in shared
        assert "/tmp/scratch" in local
        assert not shared & local

    def test_local_probes_exclude_shared_mount(self, andrew):
        assert all(not p.starts_with("/vice")
                   for p in andrew.local_probe_names())
