"""Tests for DCE cells and federated cross-links (§5.2, §5.3)."""

from __future__ import annotations

import pytest

from repro.coherence.definitions import coherent, is_global_name
from repro.errors import SchemeError
from repro.model.names import CompoundName
from repro.namespaces.crosslink import FederatedSystems
from repro.namespaces.dce import DCESystem


@pytest.fixture
def dce():
    system = DCESystem()
    for cell in ("research", "sales"):
        tree = system.add_cell(cell)
        tree.mkfile("services/login")
        tree.mkfile(f"services/{cell}-db")
    return system


class TestDCEStructure:
    def test_machine_needs_known_cell(self, dce):
        with pytest.raises(SchemeError):
            dce.add_machine("ws", cell="nonexistent")

    def test_duplicate_cell_rejected(self, dce):
        with pytest.raises(SchemeError):
            dce.add_cell("research")

    def test_duplicate_machine_rejected(self, dce):
        dce.add_machine("ws1", "research")
        with pytest.raises(SchemeError):
            dce.add_machine("ws1", "sales")

    def test_name_forms(self, dce):
        assert str(dce.global_name("research", "services/login")) == \
            "/.../research/services/login"
        assert str(dce.cell_relative_name("services/login")) == \
            "/.:/services/login"


class TestDCECoherence:
    def test_global_names_work_from_any_cell(self, dce):
        p1 = dce.add_machine("ws1", "research").spawn("p1")
        p2 = dce.add_machine("ws2", "sales").spawn("p2")
        name_ = dce.global_name("research", "services/research-db")
        assert is_global_name(name_, [p1, p2], dce.registry)

    def test_cell_relative_names_equal_global_form_locally(self, dce):
        p = dce.add_machine("ws1", "research").spawn("p")
        via_cell = dce.resolve_for(p, "/.:/services/login")
        via_global = dce.resolve_for(p, "/.../research/services/login")
        assert via_cell is via_global

    def test_cell_relative_incoherent_across_cells(self, dce):
        p1 = dce.add_machine("ws1", "research").spawn("p1")
        p2 = dce.add_machine("ws2", "sales").spawn("p2")
        assert not coherent("/.:/services/login", [p1, p2], dce.registry)

    def test_cell_relative_coherent_within_cell(self, dce):
        p1 = dce.add_machine("ws1", "research").spawn("p1")
        p2 = dce.add_machine("ws2", "research").spawn("p2")
        assert coherent("/.:/services/login", [p1, p2], dce.registry)

    def test_groups_are_cells(self, dce):
        dce.add_machine("ws1", "research").spawn("p1")
        dce.add_machine("ws2", "sales").spawn("p2")
        assert set(dce.groups()) == {"cell:research", "cell:sales"}


@pytest.fixture
def federation():
    fed = FederatedSystems()
    sys1 = fed.add_system("sys1")
    sys2 = fed.add_system("sys2")
    sys1.mkfile("users/amy/todo")
    sys2.mkfile("projects/apollo/plan")
    return fed


class TestCrossLinks:
    def test_link_extends_naming_graph(self, federation):
        federation.add_link("sys1", "org2", "sys2")
        process = federation.spawn("sys1", "p")
        assert federation.resolve_for(
            process, "/org2/projects/apollo/plan").is_defined()

    def test_link_to_subtree(self, federation):
        federation.add_link("sys1", "apollo", "sys2", "projects/apollo")
        process = federation.spawn("sys1", "p")
        assert federation.resolve_for(process,
                                      "/apollo/plan").is_defined()

    def test_link_to_missing_target_rejected(self, federation):
        with pytest.raises(SchemeError):
            federation.add_link("sys1", "x", "sys2", "no/such")

    def test_links_are_recorded(self, federation):
        link = federation.add_link("sys1", "org2", "sys2")
        assert federation.links() == [link]
        assert link.from_system == "sys1"
        assert link.path == CompoundName.parse("org2")

    def test_context_still_based_on_local_system(self, federation):
        federation.add_link("sys1", "org2", "sys2")
        process = federation.spawn("sys1", "p")
        assert federation.resolve_for(process,
                                      "/users/amy/todo").is_defined()
        assert not federation.resolve_for(
            process, "/projects/apollo/plan").is_defined()

    def test_accessibility_is_directional(self, federation):
        federation.add_link("sys1", "org2", "sys2")
        p1 = federation.spawn("sys1", "p1")
        p2 = federation.spawn("sys2", "p2")
        remote = federation.resolve_for(p2, "/projects/apollo/plan")
        local = federation.resolve_for(p1, "/users/amy/todo")
        assert federation.accessible(p1, remote)
        assert not federation.accessible(p2, local)

    def test_no_global_names_without_coincidence(self, federation):
        federation.add_link("sys1", "org2", "sys2")
        federation.spawn("sys1", "p1")
        federation.spawn("sys2", "p2")
        assert federation.coincidental_global_names() == []

    def test_coincidental_global_name(self, federation):
        shared = federation.tree("sys1").mkfile("well-known/spec")
        federation.tree("sys2").add("well-known/spec", shared)
        federation.spawn("sys1", "p1")
        federation.spawn("sys2", "p2")
        assert federation.coincidental_global_names() == [
            CompoundName.parse("/well-known/spec")]

    def test_unknown_system_rejected(self, federation):
        with pytest.raises(SchemeError):
            federation.spawn("sys9", "p")
        with pytest.raises(SchemeError):
            federation.add_system("sys1")


class TestDCEMultipleLocalContexts:
    """The paper's criticism, addressed by the extension: machines can
    attach several local contexts — at a measurable coherence cost."""

    def test_extra_local_context_resolves(self, dce):
        dce.add_cell("divisionX")
        dce.cell_tree("divisionX").mkfile("projects/apollo")
        machine = dce.add_machine("ws1", "research")
        machine.add_local_context("div", "divisionX")
        process = machine.spawn("p")
        assert dce.resolve_for(process,
                               "/div/projects/apollo").is_defined()

    def test_extra_context_of_subtree(self, dce):
        dce.add_cell("divisionX")
        dce.cell_tree("divisionX").mkfile("projects/apollo/plan")
        machine = dce.add_machine("ws1", "research")
        machine.add_local_context("proj", "divisionX",
                                  "projects/apollo")
        process = machine.spawn("p")
        assert dce.resolve_for(process, "/proj/plan").is_defined()

    def test_extra_contexts_add_incoherence(self, dce):
        from repro.coherence.definitions import coherent

        dce.add_cell("divisionX")
        dce.cell_tree("divisionX").mkfile("projects/apollo")
        m1 = dce.add_machine("ws1", "research")
        m2 = dce.add_machine("ws2", "research")
        m1.add_local_context("div", "divisionX")
        p1, p2 = m1.spawn("p1"), m2.spawn("p2")
        # /div works on ws1 only: more non-global names, as predicted.
        assert dce.resolve_for(p1, "/div/projects/apollo").is_defined()
        assert not coherent("/div/projects/apollo", [p1, p2],
                            dce.registry)
        # The global form remains coherent.
        assert coherent("/.../divisionX/projects/apollo", [p1, p2],
                        dce.registry)
