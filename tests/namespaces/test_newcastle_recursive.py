"""Tests for the recursive extension of the Newcastle Connection
(§5.3: "can be extended recursively")."""

from __future__ import annotations

import pytest

from repro.coherence.definitions import coherent
from repro.errors import SchemeError
from repro.model.graph import NamingGraph
from repro.model.state import GlobalState
from repro.namespaces.newcastle import NewcastleSystem


@pytest.fixture
def two_sites():
    """Two independent Newcastle systems sharing one σ, joined under
    site-a's super-root."""
    sigma = GlobalState()
    site_a = NewcastleSystem("site-a", sigma=sigma)
    site_b = NewcastleSystem("site-b", sigma=sigma)
    site_a.add_machine("a1").mkfile("usr/a1-data")
    site_a.add_machine("a2").mkfile("usr/a2-data")
    site_b.add_machine("b1").mkfile("usr/b1-data")
    return sigma, site_a, site_b


class TestConnectSystem:
    def test_remote_system_reachable_via_dotdot(self, two_sites):
        sigma, site_a, site_b = two_sites
        site_a.connect_system(site_b, "siteB")
        process = site_a.spawn("a1", "p")
        remote = site_a.resolve_for(
            process, "/../siteB/b1/usr/b1-data")
        assert remote is site_b.machine_tree("b1").lookup("usr/b1-data")

    def test_other_system_can_climb_back(self, two_sites):
        sigma, site_a, site_b = two_sites
        site_a.connect_system(site_b, "siteB")
        process = site_b.spawn("b1", "q")
        # b1's root → site-b super-root → site-a super-root → a1.
        local = site_a.machine_tree("a1").lookup("usr/a1-data")
        assert site_b.resolve_for(
            process, "/../../a1/usr/a1-data") is local

    def test_duplicate_label_rejected(self, two_sites):
        sigma, site_a, site_b = two_sites
        site_a.connect_system(site_b, "siteB")
        with pytest.raises(SchemeError):
            site_a.connect_system(site_b, "siteB")

    def test_combined_graph_is_still_a_tree(self, two_sites):
        sigma, site_a, site_b = two_sites
        site_a.connect_system(site_b, "siteB")
        graph = NamingGraph(sigma)
        assert graph.is_tree(site_a.super_root)

    def test_recursive_depth_two(self, two_sites):
        sigma, site_a, site_b = two_sites
        site_c = NewcastleSystem("site-c", sigma=sigma)
        site_c.add_machine("c1").mkfile("usr/c1-data")
        site_b.connect_system(site_c, "siteC")
        site_a.connect_system(site_b, "siteB")
        process = site_a.spawn("a1", "p")
        deep = site_a.resolve_for(
            process, "/../siteB/siteC/c1/usr/c1-data")
        assert deep is site_c.machine_tree("c1").lookup("usr/c1-data")


class TestAbsorb:
    def test_absorbed_population_measured_jointly(self, two_sites):
        sigma, site_a, site_b = two_sites
        p_a = site_a.spawn("a1", "pa")
        p_b = site_b.spawn("b1", "pb")
        site_a.absorb(site_b, "siteB")
        assert p_b in site_a.activities()
        # Cross-system rooted names are still incoherent — connection
        # extends access, not coherence (as with cross-links).
        assert not coherent("/usr/a1-data", [p_a, p_b],
                            site_a.registry)
        groups = site_a.groups()
        assert "siteB/b1" in groups

    def test_absorbed_machine_trees_rekeyed(self, two_sites):
        sigma, site_a, site_b = two_sites
        site_a.absorb(site_b, "siteB")
        assert site_a.machine_tree("siteB/b1") is \
            site_b.machine_tree("b1")

    def test_mapping_rule_extends_to_absorbed_machines(self, two_sites):
        sigma, site_a, site_b = two_sites
        p_b = site_b.spawn("b1", "pb")
        site_a.absorb(site_b, "siteB")
        site_a.spawn("a1", "pa")
        # After absorption, map_name between native and absorbed
        # machines still preserves denotation *within site-a's tree*,
        # because the combined structure is a single tree... but the
        # absorbed machine's root's `..` now points to site-b's
        # super-root, so the simple one-level rule does NOT apply
        # across the site boundary — incoherence remains, matching
        # §5.3's observation for federated extension.
        mapped = site_a.map_name("/usr/a1-data", "a1", "siteB/b1")
        resolved = site_a.resolve_for(p_b, mapped)
        assert not resolved.is_defined()
