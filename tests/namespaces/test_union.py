"""Tests for union directories (Plan 9-style, §6-II extension)."""

from __future__ import annotations

import pytest

from repro.coherence.definitions import coherent
from repro.errors import SchemeError
from repro.model.context import context_object
from repro.model.entities import ObjectEntity, UNDEFINED_ENTITY
from repro.model.resolution import resolve
from repro.namespaces.perprocess import PerProcessSystem
from repro.namespaces.union import UnionContext, union_directory


@pytest.fixture
def bins():
    """Two bin directories with one shadowing collision."""
    local_bin = context_object("local-bin")
    shared_bin = context_object("shared-bin")
    local_ls = ObjectEntity("ls@local")
    shared_ls = ObjectEntity("ls@shared")
    shared_cc = ObjectEntity("cc@shared")
    local_bin.state.bind("ls", local_ls)
    shared_bin.state.bind("ls", shared_ls)
    shared_bin.state.bind("cc", shared_cc)
    return local_bin, shared_bin, local_ls, shared_ls, shared_cc


class TestUnionContext:
    def test_first_match_wins(self, bins):
        local_bin, shared_bin, local_ls, shared_ls, _ = bins
        union = UnionContext([local_bin, shared_bin])
        assert union("ls") is local_ls

    def test_later_members_fill_gaps(self, bins):
        local_bin, shared_bin, *_, shared_cc = bins
        union = UnionContext([local_bin, shared_bin])
        assert union("cc") is shared_cc

    def test_member_order_matters(self, bins):
        local_bin, shared_bin, local_ls, shared_ls, _ = bins
        assert UnionContext([shared_bin, local_bin])("ls") is shared_ls

    def test_prepend_member(self, bins):
        local_bin, shared_bin, local_ls, shared_ls, _ = bins
        union = UnionContext([shared_bin])
        union.add_member(local_bin, first=True)
        assert union("ls") is local_ls

    def test_remove_member(self, bins):
        local_bin, shared_bin, local_ls, shared_ls, _ = bins
        union = UnionContext([local_bin, shared_bin])
        union.remove_member(local_bin)
        assert union("ls") is shared_ls

    def test_explicit_bindings_shadow_members(self, bins):
        local_bin, shared_bin, *_ = bins
        union = UnionContext([local_bin, shared_bin])
        override = ObjectEntity("ls@override")
        union.bind("ls", override)
        assert union("ls") is override

    def test_unbound_everywhere(self, bins):
        local_bin, shared_bin, *_ = bins
        union = UnionContext([local_bin, shared_bin])
        assert union("nope") is UNDEFINED_ENTITY

    def test_parent_not_inherited_from_members(self, bins):
        local_bin, shared_bin, *_ = bins
        root = context_object("root")
        local_bin.state.bind("..", root)
        union = UnionContext([local_bin])
        assert union("..") is UNDEFINED_ENTITY

    def test_names_merges_members(self, bins):
        local_bin, shared_bin, *_ = bins
        union = UnionContext([local_bin, shared_bin])
        assert union.names() == ["cc", "ls"]
        assert list(union) == ["cc", "ls"]

    def test_member_must_be_directory(self):
        with pytest.raises(SchemeError):
            UnionContext([ObjectEntity("file")])  # type: ignore

    def test_equality_by_members_and_bindings(self, bins):
        local_bin, shared_bin, *_ = bins
        first = UnionContext([local_bin, shared_bin])
        second = UnionContext([local_bin, shared_bin])
        third = UnionContext([shared_bin, local_bin])
        assert first == second
        assert first != third

    def test_resolution_recursion_through_unions(self, bins):
        # Compound names walk through union directories unchanged.
        local_bin, shared_bin, *_, shared_cc = bins
        union_obj = union_directory("bin", [local_bin, shared_bin])
        root = context_object("root")
        root.state.bind("bin", union_obj)
        assert resolve(root.state, "bin/cc") is shared_cc


class TestUnionInPerProcessNamespaces:
    @pytest.fixture
    def port(self):
        system = PerProcessSystem()
        for machine in ("ws", "fs"):
            system.add_machine(machine)
        system.machine_tree("ws").mkfile("bin/ls")
        system.machine_tree("fs").mkfile("bin/ls")
        system.machine_tree("fs").mkfile("bin/cc")
        return system

    def test_union_bin(self, port):
        process = port.spawn("ws", "p")
        port.attach_union(process, "bin",
                          [("ws", "bin"), ("fs", "bin")])
        ls = port.resolve_for(process, "/bin/ls")
        cc = port.resolve_for(process, "/bin/cc")
        assert ls is port.machine_tree("ws").lookup("bin/ls")
        assert cc is port.machine_tree("fs").lookup("bin/cc")

    def test_same_union_recipe_is_coherent(self, port):
        recipe = [("ws", "bin"), ("fs", "bin")]
        first = port.spawn("ws", "p1")
        second = port.spawn("fs", "p2")
        port.attach_union(first, "bin", recipe)
        port.attach_union(second, "bin", recipe)
        assert coherent("/bin/ls", [first, second], port.registry)
        assert coherent("/bin/cc", [first, second], port.registry)

    def test_different_order_diverges_on_collisions(self, port):
        first = port.spawn("ws", "p1")
        second = port.spawn("ws", "p2")
        port.attach_union(first, "bin", [("ws", "bin"), ("fs", "bin")])
        port.attach_union(second, "bin", [("fs", "bin"), ("ws", "bin")])
        assert not coherent("/bin/ls", [first, second], port.registry)
        assert coherent("/bin/cc", [first, second], port.registry)

    def test_union_source_must_be_directory(self, port):
        process = port.spawn("ws", "p")
        with pytest.raises(SchemeError):
            port.attach_union(process, "bin", [("ws", "bin/ls")])


class TestUnionCopy:
    def test_copy_preserves_members_and_bindings(self, bins):
        local_bin, shared_bin, local_ls, *_ = bins
        union = UnionContext([local_bin, shared_bin])
        override = ObjectEntity("override")
        union.bind("x", override)
        clone = union.copy()
        assert clone == union
        assert clone("ls") is local_ls
        assert clone("x") is override
        # Independence: mutating the clone leaves the original alone.
        clone.remove_member(local_bin)
        assert union("ls") is local_ls
