"""Tests for the Newcastle Connection (§5.1, Figure 3)."""

from __future__ import annotations

import pytest

from repro.coherence.definitions import coherent, is_global_name
from repro.errors import SchemeError
from repro.model.graph import NamingGraph
from repro.model.names import CompoundName
from repro.namespaces.newcastle import NewcastleSystem, RemoteRootPolicy


@pytest.fixture
def newcastle():
    system = NewcastleSystem()
    for machine in ("unix1", "unix2", "unix3"):
        tree = system.add_machine(machine)
        tree.mkfile("usr/spool/mail")
        tree.mkfile(f"usr/{machine}-only")
    return system


class TestStructure:
    def test_three_machines_under_super_root(self, newcastle):
        assert newcastle.machines() == ["unix1", "unix2", "unix3"]
        for machine in newcastle.machines():
            bound = newcastle.super_root.state(machine)
            assert bound is newcastle.machine_tree(machine).root

    def test_single_tree_formed(self, newcastle):
        sigma = newcastle.sigma
        graph = NamingGraph(sigma)
        assert graph.is_tree(newcastle.super_root)

    def test_machine_parent_is_super_root(self, newcastle):
        tree = newcastle.machine_tree("unix1")
        assert tree.root.state("..") is newcastle.super_root

    def test_duplicate_machine_rejected(self, newcastle):
        with pytest.raises(SchemeError):
            newcastle.add_machine("unix1")

    def test_unknown_machine_rejected(self, newcastle):
        with pytest.raises(SchemeError):
            newcastle.machine_tree("vax")


class TestRootBindings:
    def test_typical_binding_is_own_machine_root(self, newcastle):
        process = newcastle.spawn("unix2", "p")
        assert newcastle.machine_of(process) == "unix2"
        assert newcastle.resolve_for(
            process, "/usr/unix2-only").is_defined()

    def test_dotdot_reaches_other_machines(self, newcastle):
        process = newcastle.spawn("unix1", "p")
        remote = newcastle.resolve_for(process, "../unix2/usr/unix2-only")
        assert remote.is_defined()
        assert remote is newcastle.machine_tree("unix2").lookup(
            "usr/unix2-only")

    def test_rooted_dotdot_notation(self, newcastle):
        # "/.." climbs above the machine root (rooted form).
        process = newcastle.spawn("unix1", "p")
        assert newcastle.resolve_for(
            process, "/../unix3/usr/unix3-only").is_defined()


class TestCoherence:
    def test_same_machine_processes_coherent(self, newcastle):
        first = newcastle.spawn("unix1", "a")
        second = newcastle.spawn("unix1", "b")
        assert coherent("/usr/spool/mail", [first, second],
                        newcastle.registry)

    def test_cross_machine_incoherent(self, newcastle):
        first = newcastle.spawn("unix1", "a")
        other = newcastle.spawn("unix2", "b")
        assert not coherent("/usr/spool/mail", [first, other],
                            newcastle.registry)

    def test_shared_tree_does_not_imply_global_names(self, newcastle):
        processes = [newcastle.spawn(m, f"{m}-p")
                     for m in newcastle.machines()]
        assert not is_global_name("/usr/spool/mail", processes,
                                  newcastle.registry)


class TestNameMapping:
    def test_map_name_preserves_denotation(self, newcastle):
        p1 = newcastle.spawn("unix1", "p1")
        p2 = newcastle.spawn("unix2", "p2")
        original = CompoundName.parse("/usr/unix1-only")
        mapped = newcastle.map_name(original, "unix1", "unix2")
        assert newcastle.resolve_for(p2, mapped) is \
            newcastle.resolve_for(p1, original)

    def test_map_name_same_machine_is_identity(self, newcastle):
        name_ = CompoundName.parse("/usr/spool")
        assert newcastle.map_name(name_, "unix1", "unix1") == name_

    def test_map_name_relative_untouched(self, newcastle):
        name_ = CompoundName.parse("spool/mail")
        assert newcastle.map_name(name_, "unix1", "unix2") == name_

    def test_map_name_unknown_machine_rejected(self, newcastle):
        with pytest.raises(SchemeError):
            newcastle.map_name("/x", "vax", "unix1")
        with pytest.raises(SchemeError):
            newcastle.map_name("/x", "unix1", "vax")


class TestRemoteExecution:
    def test_invoker_policy_keeps_parent_root(self, newcastle):
        parent = newcastle.spawn("unix1", "parent")
        child = newcastle.remote_spawn(parent, "unix2", "child",
                                       RemoteRootPolicy.INVOKER)
        assert coherent("/usr/unix1-only", [parent, child],
                        newcastle.registry)
        # But the child cannot see the remote machine's local files
        # by their local names.
        assert not newcastle.resolve_for(
            child, "/usr/unix2-only").is_defined()

    def test_target_policy_gives_local_access(self, newcastle):
        parent = newcastle.spawn("unix1", "parent")
        child = newcastle.remote_spawn(parent, "unix2", "child",
                                       RemoteRootPolicy.TARGET)
        assert newcastle.resolve_for(
            child, "/usr/unix2-only").is_defined()
        assert not coherent("/usr/unix1-only", [parent, child],
                            newcastle.registry)

    def test_default_policy_is_target(self, newcastle):
        parent = newcastle.spawn("unix1", "parent")
        child = newcastle.remote_spawn(parent, "unix2", "child")
        assert newcastle.machine_of(child) == "unix2"


class TestProbes:
    def test_probe_names_deduplicate_homonyms(self, newcastle):
        probes = [str(p) for p in newcastle.probe_names()]
        assert probes.count("/usr/spool/mail") == 1
        assert "/usr/unix2-only" in probes

    def test_measure_shows_per_machine_groups(self, newcastle):
        for machine in newcastle.machines():
            newcastle.spawn(machine, f"{machine}-x")
            newcastle.spawn(machine, f"{machine}-y")
        degree = newcastle.measure()
        # Nothing is coherent across ALL machines...
        assert degree.coherent_fraction == 0.0
        # ...but within a machine, locally-defined names agree (the
        # groups report is per-machine).
        assert set(degree.per_group) == {"unix1", "unix2", "unix3"}
