"""Stateful (rule-based) hypothesis test for the naming tree.

Random interleavings of mkdir/mkfile/add/detach must preserve the
substrate's invariants: every walked path resolves to its entity, the
structure stays a tree, and parent links stay consistent.
"""

from __future__ import annotations

import string

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.errors import SchemeError
from repro.model.graph import NamingGraph
from repro.model.names import PARENT, CompoundName
from repro.model.state import GlobalState
from repro.namespaces.tree import NamingTree

atoms = st.sampled_from([c for c in string.ascii_lowercase[:6]])
paths = st.lists(atoms, min_size=1, max_size=3).map(CompoundName)


class NamingTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sigma = GlobalState()
        self.tree = NamingTree("root", sigma=self.sigma,
                               parent_links=True)
        self.detached_anything = False

    @rule(path=paths)
    def mkdir(self, path):
        try:
            node = self.tree.mkdir(path)
        except SchemeError:
            return  # a file blocked the path — legal refusal
        assert node.is_context_object()
        assert self.tree.lookup(path) is node

    @rule(path=paths)
    def mkfile(self, path):
        try:
            leaf = self.tree.mkfile(path)
        except SchemeError:
            return  # occupied or blocked — legal refusal
        assert self.tree.lookup(path) is leaf

    @rule(path=paths)
    def detach(self, path):
        existed = self.tree.exists(path)
        try:
            self.tree.detach(path)
        except SchemeError:
            assert not existed or len(path) == 0
            return
        assert existed
        assert not self.tree.exists(path)
        self.detached_anything = True

    @invariant()
    def walk_paths_resolve(self):
        for path, entity in self.tree.walk(max_depth=16):
            assert self.tree.lookup(path) is entity

    @invariant()
    def structure_is_a_tree(self):
        graph = NamingGraph(self.sigma)
        assert graph.is_tree(self.tree.root)

    @invariant()
    def parent_links_consistent(self):
        for path, entity in self.tree.walk(max_depth=16):
            if entity.is_context_object():
                parent = entity.state(PARENT)
                # Reachable directories always carry a parent link
                # pointing at a directory.
                assert parent.is_defined()
                assert parent.is_context_object()


NamingTreeMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestNamingTreeStateful = NamingTreeMachine.TestCase
