"""Tests for the per-process view of naming (§6-II)."""

from __future__ import annotations

import pytest

from repro.coherence.definitions import coherent, is_global_name
from repro.errors import SchemeError
from repro.namespaces.perprocess import PerProcessSystem


@pytest.fixture
def port():
    system = PerProcessSystem()
    for machine in ("m1", "m2", "fs"):
        system.add_machine(machine)
    system.machine_tree("m1").mkfile("src/prog.c")
    system.machine_tree("m2").mkfile("data/results")
    system.machine_tree("fs").mkfile("lib/libc")
    return system


class TestNamespaces:
    def test_individual_root_per_process(self, port):
        first = port.spawn("m1", "a", mounts=[("home", "m1")])
        second = port.spawn("m1", "b")
        ns_a = port.namespace_of(first)
        ns_b = port.namespace_of(second)
        assert ns_a.root is not ns_b.root
        assert port.resolve_for(first, "/home/src/prog.c").is_defined()
        assert not port.resolve_for(second, "/home/src/prog.c").is_defined()

    def test_attach_later(self, port):
        process = port.spawn("m1", "p")
        port.attach(process, "libs", "fs")
        assert port.resolve_for(process, "/libs/lib/libc").is_defined()

    def test_nested_mount_paths(self, port):
        process = port.spawn("m1", "p",
                             mounts=[("n/deep/home", "m1")])
        assert port.resolve_for(process,
                                "/n/deep/home/src/prog.c").is_defined()

    def test_attach_through_mounted_subsystem_rejected(self, port):
        process = port.spawn("m1", "p", mounts=[("home", "m1")])
        with pytest.raises(SchemeError):
            port.namespace_of(process).attach("home/extra",
                                              port.machine_tree("fs").root)

    def test_detach(self, port):
        process = port.spawn("m1", "p", mounts=[("home", "m1")])
        namespace = port.namespace_of(process)
        namespace.detach("home")
        assert not port.resolve_for(process, "/home/src/prog.c").is_defined()
        assert namespace.attachments() == []

    def test_detach_missing_rejected(self, port):
        process = port.spawn("m1", "p")
        with pytest.raises(SchemeError):
            port.namespace_of(process).detach("nothing")

    def test_namespace_of_unknown_process(self, port):
        from repro.model.entities import Activity

        with pytest.raises(SchemeError):
            port.namespace_of(Activity("stranger"))


class TestDecoupling:
    def test_process_may_use_another_subsystems_context(self, port):
        # A process executing on m2 can attach and use m1's tree.
        process = port.spawn("m2", "visitor", mounts=[("home", "m1")])
        assert port.resolve_for(process, "/home/src/prog.c").is_defined()

    def test_fork_copies_mount_table(self, port):
        parent = port.spawn("m1", "parent", mounts=[("home", "m1")])
        child = port.fork(parent, "child")
        assert coherent("/home/src/prog.c", [parent, child],
                        port.registry)
        # Later attaches stay private.
        port.attach(child, "libs", "fs")
        assert not port.resolve_for(parent, "/libs/lib/libc").is_defined()
        assert port.resolve_for(child, "/libs/lib/libc").is_defined()


class TestRemoteExecution:
    def test_import_gives_parameter_coherence(self, port):
        parent = port.spawn("m1", "parent", mounts=[("home", "m1")])
        child = port.remote_spawn(parent, "m2", "child")
        assert coherent("/home/src/prog.c", [parent, child],
                        port.registry)

    def test_child_reaches_both_machines(self, port):
        parent = port.spawn("m1", "parent", mounts=[("home", "m1")])
        child = port.remote_spawn(parent, "m2", "child")
        assert port.resolve_for(child, "/home/src/prog.c").is_defined()
        assert port.resolve_for(child, "/local/data/results").is_defined()

    def test_no_import_variant(self, port):
        parent = port.spawn("m1", "parent", mounts=[("home", "m1")])
        child = port.remote_spawn(parent, "m2", "bare",
                                  import_namespace=False)
        assert not port.resolve_for(child, "/home/src/prog.c").is_defined()
        assert port.resolve_for(child, "/local/data/results").is_defined()

    def test_no_local_mount_variant(self, port):
        parent = port.spawn("m1", "parent", mounts=[("home", "m1")])
        child = port.remote_spawn(parent, "m2", "pure",
                                  local_mount=None)
        assert port.resolve_for(child, "/home/src/prog.c").is_defined()
        assert not port.resolve_for(child, "/local/data/results").is_defined()

    def test_coherence_without_global_names(self, port):
        parent = port.spawn("m1", "parent", mounts=[("home", "m1")])
        child = port.remote_spawn(parent, "m2", "child")
        bystander = port.spawn("fs", "bystander")
        assert coherent("/home/src/prog.c", [parent, child],
                        port.registry)
        assert not is_global_name("/home/src/prog.c", port.activities(),
                                  port.registry)

    def test_unknown_target_machine_rejected(self, port):
        parent = port.spawn("m1", "parent")
        with pytest.raises(SchemeError):
            port.remote_spawn(parent, "mars", "child")


class TestProbes:
    def test_probe_names_cover_mounts(self, port):
        port.spawn("m1", "p", mounts=[("home", "m1")])
        probes = {str(p) for p in port.probe_names()}
        assert "/home" in probes
        assert "/home/src/prog.c" in probes

    def test_namespace_repr(self, port):
        process = port.spawn("m1", "p", mounts=[("home", "m1")])
        assert "1 mounts" in repr(port.namespace_of(process))
