"""Tests for the Unix scheme (§5.1): the paper's claims, executable."""

from __future__ import annotations

import pytest

from repro.coherence.definitions import coherent, is_global_name
from repro.errors import SchemeError


class TestSpawnAndResolve:
    def test_default_root_is_tree_root(self, unix_system):
        process = unix_system.spawn("p")
        assert unix_system.resolve_for(process,
                                       "/etc/passwd").label == "passwd"

    def test_cwd_path_at_spawn(self, unix_system):
        process = unix_system.spawn("p", cwd="home/alice")
        assert unix_system.resolve_for(process, "notes").label == "notes"

    def test_spawn_with_bad_cwd_rejected(self, unix_system):
        with pytest.raises(SchemeError):
            unix_system.spawn("p", cwd="etc/passwd")

    def test_adopting_external_activity(self, unix_system):
        from repro.model.entities import Activity

        external = Activity("sim-process")
        adopted = unix_system.spawn("ignored", activity=external)
        assert adopted is external


class TestRootedCoherence:
    def test_rooted_names_coherent_across_processes(self, unix_system):
        processes = [unix_system.spawn(f"p{i}") for i in range(3)]
        for probe in ("/etc/passwd", "/usr/bin/cc", "/home/alice/notes"):
            assert is_global_name(probe, processes, unix_system.registry)

    def test_relative_names_diverge_with_cwd(self, unix_system):
        at_root = unix_system.spawn("at-root")
        in_home = unix_system.spawn("in-home", cwd="home/alice")
        assert not coherent("notes", [at_root, in_home],
                            unix_system.registry)


class TestForkInheritance:
    def test_child_inherits_everything(self, unix_system):
        parent = unix_system.spawn("parent", cwd="home/alice")
        child = unix_system.fork(parent, "child")
        # Coherence for ALL names: rooted and relative.
        assert coherent("/etc/passwd", [parent, child],
                        unix_system.registry)
        assert coherent("notes", [parent, child], unix_system.registry)

    def test_coherence_until_context_modified(self, unix_system):
        parent = unix_system.spawn("parent", cwd="home/alice")
        child = unix_system.fork(parent, "child")
        unix_system.chdir(child, "/home/bob")
        assert not coherent("notes", [parent, child],
                            unix_system.registry)
        # Rooted names still agree (same root binding).
        assert coherent("/home/alice/notes", [parent, child],
                        unix_system.registry)

    def test_parent_can_pass_any_file_name(self, unix_system):
        from repro.remote.execution import evaluate_remote_exec

        parent = unix_system.spawn("parent", cwd="home/alice")
        child = unix_system.fork(parent, "child")
        report = evaluate_remote_exec(
            unix_system.registry, parent, child,
            ["/etc/passwd", "notes", "/home/bob/todo"])
        assert report.coherence_rate == 1.0

    def test_fork_of_non_process_rejected(self, unix_system):
        from repro.model.context import Context
        from repro.model.entities import Activity

        stranger = Activity("stranger")
        unix_system.adopt_activity(stranger, Context())
        with pytest.raises(SchemeError):
            unix_system.fork(stranger, "child")


class TestChdirChroot:
    def test_chdir_moves_cwd(self, unix_system):
        process = unix_system.spawn("p")
        unix_system.chdir(process, "/home/alice")
        assert unix_system.resolve_for(process, "notes").label == "notes"

    def test_chdir_relative(self, unix_system):
        process = unix_system.spawn("p")
        unix_system.chdir(process, "home")
        unix_system.chdir(process, "alice")
        assert unix_system.resolve_for(process, "notes").label == "notes"

    def test_chdir_to_file_rejected(self, unix_system):
        process = unix_system.spawn("p")
        with pytest.raises(SchemeError):
            unix_system.chdir(process, "/etc/passwd")

    def test_chroot_restricts_view(self, unix_system):
        process = unix_system.spawn("p")
        unix_system.chroot(process, "/home")
        assert unix_system.resolve_for(process,
                                       "/alice/notes").label == "notes"
        assert not unix_system.resolve_for(process,
                                           "/etc/passwd").is_defined()

    def test_chroot_breaks_coherence(self, unix_system):
        normal = unix_system.spawn("normal")
        jailed = unix_system.spawn("jailed")
        unix_system.chroot(jailed, "/home")
        assert not coherent("/etc/passwd", [normal, jailed],
                            unix_system.registry)

    def test_same_chroot_restores_coherence(self, unix_system):
        # "coherence only among processes that have the same binding
        # for the root directory" — including non-default bindings.
        first, second = unix_system.spawn("j1"), unix_system.spawn("j2")
        unix_system.chroot(first, "/home")
        unix_system.chroot(second, "/home")
        assert coherent("/alice/notes", [first, second],
                        unix_system.registry)


class TestProbeNames:
    def test_probe_names_are_rooted_tree_paths(self, unix_system):
        probes = unix_system.probe_names()
        assert all(p.rooted for p in probes)
        texts = {str(p) for p in probes}
        assert "/etc/passwd" in texts and "/home/alice" in texts

    def test_measure_full_coherence_without_chroot(self, unix_system):
        for index in range(3):
            unix_system.spawn(f"p{index}")
        degree = unix_system.measure()
        assert degree.coherent_fraction == 1.0
        assert degree.global_fraction == 1.0
