"""Tests for the single global tree (Locus / V, §5.1)."""

from __future__ import annotations

import pytest

from repro.coherence.definitions import is_global_name
from repro.errors import SchemeError
from repro.namespaces.single_tree import SingleTreeSystem


@pytest.fixture
def locus():
    system = SingleTreeSystem()
    for machine in ("vax1", "vax2"):
        system.add_machine(machine)
        system.machine_tree(machine).mkfile("tmp/scratch")
    return system


class TestStructure:
    def test_machines_mounted_under_root(self, locus):
        assert locus.machines() == ["vax1", "vax2"]
        assert locus.tree.lookup("vax1") is \
            locus.machine_tree("vax1").root

    def test_custom_mount_point(self):
        system = SingleTreeSystem()
        system.add_machine("vax1", mount_at="machines/vax1")
        assert system.tree.lookup("machines/vax1").is_defined()

    def test_duplicate_machine_rejected(self, locus):
        with pytest.raises(SchemeError):
            locus.add_machine("vax1")

    def test_unknown_machine_rejected(self, locus):
        with pytest.raises(SchemeError):
            locus.machine_tree("vax9")
        with pytest.raises(SchemeError):
            locus.spawn("vax9", "p")


class TestGlobalCoherence:
    def test_all_roots_are_the_global_root(self, locus):
        p1 = locus.spawn("vax1", "p1")
        p2 = locus.spawn("vax2", "p2")
        c1 = locus.registry.context_of(p1)
        c2 = locus.registry.context_of(p2)
        assert c1.root_dir is c2.root_dir is locus.tree.root

    def test_every_rooted_name_is_global(self, locus):
        processes = [locus.spawn("vax1", "a"), locus.spawn("vax2", "b")]
        for probe in locus.probe_names():
            assert is_global_name(probe, processes, locus.registry)

    def test_high_degree_of_coherence(self, locus):
        for machine in locus.machines():
            locus.spawn(machine, f"{machine}-p")
        degree = locus.measure()
        assert degree.coherent_fraction == 1.0
        assert degree.global_fraction == 1.0

    def test_machine_locality_is_visible_in_names(self, locus):
        # Each machine's /tmp gets a distinct global path — locality
        # moved into the name, which is why a single tree scales badly.
        p = locus.spawn("vax1", "p")
        first = locus.resolve_for(p, "/vax1/tmp/scratch")
        second = locus.resolve_for(p, "/vax2/tmp/scratch")
        assert first.is_defined() and second.is_defined()
        assert first is not second
