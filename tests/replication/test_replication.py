"""Tests for replicated objects and weak coherence (§5)."""

from __future__ import annotations

import pytest

from repro.closure.meta import ContextRegistry
from repro.errors import EntityError
from repro.model.context import Context, context_object
from repro.model.entities import Activity, ObjectEntity
from repro.model.names import CompoundName
from repro.replication.replica import ReplicaRegistry
from repro.replication.weak import (
    classify_names,
    replica_equivalence,
    weakly_coherent_name,
)


class TestReplicaRegistry:
    def test_create_set_synchronises_state(self):
        registry = ReplicaRegistry()
        a, b = ObjectEntity("ls@1"), ObjectEntity("ls@2")
        set_id = registry.create_set([a, b], content="v1")
        assert a.state == b.state == "v1"
        assert registry.set_of(a) == registry.set_of(b) == set_id

    def test_empty_set_rejected(self):
        with pytest.raises(EntityError):
            ReplicaRegistry().create_set([])

    def test_directory_member_rejected(self):
        with pytest.raises(EntityError):
            ReplicaRegistry().create_set([context_object("dir")])

    def test_double_membership_rejected(self):
        registry = ReplicaRegistry()
        obj = ObjectEntity("x")
        registry.create_set([obj])
        with pytest.raises(EntityError):
            registry.create_set([obj])

    def test_non_object_rejected(self):
        with pytest.raises(EntityError):
            ReplicaRegistry().create_set([Activity("p")])  # type: ignore

    def test_add_replica(self):
        registry = ReplicaRegistry()
        a = ObjectEntity("a")
        set_id = registry.create_set([a], content="v1")
        b = ObjectEntity("b")
        registry.add_replica(set_id, b)
        assert b.state == "v1"
        assert registry.equivalent(a, b)

    def test_add_replica_to_unknown_set(self):
        with pytest.raises(EntityError):
            ReplicaRegistry().add_replica(99, ObjectEntity("x"))

    def test_write_through(self):
        registry = ReplicaRegistry()
        a, b = ObjectEntity("a"), ObjectEntity("b")
        registry.create_set([a, b], content="v1")
        registry.write(b, "v2")
        assert a.state == "v2"
        assert registry.check_invariant()

    def test_write_to_unreplicated_object(self):
        registry = ReplicaRegistry()
        loner = ObjectEntity("loner")
        registry.write(loner, "solo")
        assert loner.state == "solo"

    def test_invariant_detects_drift(self):
        registry = ReplicaRegistry()
        a, b = ObjectEntity("a"), ObjectEntity("b")
        registry.create_set([a, b], content="v1")
        b.state = "drifted"   # bypassing write() — the forbidden move
        assert not registry.check_invariant()

    def test_equivalence(self):
        registry = ReplicaRegistry()
        a, b = ObjectEntity("a"), ObjectEntity("b")
        c = ObjectEntity("c")
        registry.create_set([a, b])
        registry.create_set([c])
        assert registry.equivalent(a, b)
        assert registry.equivalent(a, a)
        assert not registry.equivalent(a, c)
        assert not registry.equivalent(a, ObjectEntity("outsider"))

    def test_members_listing(self):
        registry = ReplicaRegistry()
        a, b = ObjectEntity("a"), ObjectEntity("b")
        set_id = registry.create_set([a, b])
        assert registry.members(set_id) == [a, b]
        with pytest.raises(EntityError):
            registry.members(123)
        assert len(registry) == 1


class TestWeakCoherence:
    @pytest.fixture
    def setting(self):
        """Two activities whose '/bin/ls'-style name binds different
        replicas; 'doc' binds genuinely different objects."""
        replicas = ReplicaRegistry()
        ls1, ls2 = ObjectEntity("ls@1"), ObjectEntity("ls@2")
        replicas.create_set([ls1, ls2], content="ls-binary")
        doc1, doc2 = ObjectEntity("doc@1"), ObjectEntity("doc@2")
        shared = ObjectEntity("shared")
        contexts = ContextRegistry()
        a, b = Activity("a"), Activity("b")
        contexts.register(a, Context({"ls": ls1, "doc": doc1,
                                      "shared": shared}))
        contexts.register(b, Context({"ls": ls2, "doc": doc2,
                                      "shared": shared}))
        return replicas, contexts, (a, b)

    def test_weakly_coherent_name(self, setting):
        replicas, contexts, (a, b) = setting
        assert weakly_coherent_name("ls", [a, b], contexts, replicas)
        assert not weakly_coherent_name("doc", [a, b], contexts, replicas)

    def test_equivalence_adapter(self, setting):
        replicas, contexts, (a, b) = setting
        equivalence = replica_equivalence(replicas)
        ls1 = contexts.context_of(a)("ls")
        ls2 = contexts.context_of(b)("ls")
        assert equivalence(ls1, ls2)

    def test_classify_names(self, setting):
        replicas, contexts, (a, b) = setting
        classes = classify_names(["shared", "ls", "doc", "missing"],
                                 [a, b], contexts, replicas)
        assert classes["strong"] == {CompoundName(["shared"])}
        assert classes["weak"] == {CompoundName(["ls"])}
        assert classes["incoherent"] == {CompoundName(["doc"]),
                                         CompoundName(["missing"])}
