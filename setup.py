"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 660 editable installs (which build a wheel) are unavailable.  This
shim lets ``pip install -e . --no-use-pep517`` fall back to
``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
